"""Benchmark fixtures.

Scale is environment-tunable: REPRO_BENCH_SCALE (default 50 customers)
for the per-statement benchmarks, REPRO_BENCH_REPS for repetitions.
Wall-clock time measured by pytest-benchmark is the simulator's own
execution cost; every benchmark also records the *virtual* response
time (the paper's metric) in ``extra_info``.
"""

from __future__ import annotations

import itertools
import os

import pytest

from repro.bench.tpcw_lab import TpcwLab
from repro.tpcw import TpcwDataGenerator

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "50"))
REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
SEED = 171001792


@pytest.fixture(scope="session")
def lab() -> TpcwLab:
    return TpcwLab(num_customers=SCALE, repetitions=REPS, seed=SEED)


@pytest.fixture(scope="session")
def gen() -> TpcwDataGenerator:
    return TpcwDataGenerator(SCALE, seed=SEED)


@pytest.fixture(scope="session")
def systems(lab):
    """The five systems, built and populated once for the whole session."""
    out = {}
    for name in ("VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline"):
        system = lab.build_system(name)
        lab.populate(system)
        out[name] = system
    return out


@pytest.fixture()
def rep_counter():
    """Monotonic rep index so repeated write rounds never collide."""
    return itertools.count(100)
