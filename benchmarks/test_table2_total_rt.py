"""Table II — sum of response times of all TPC-W statements.

Paper (1M customers): Synergy 33.7s < MVCC-A 77.4s < MVCC-UA 132.4s <
Baseline 173.4s; Synergy's best-case improvement is 80.5%. VoltDB is
excluded (it cannot run all queries)."""

import pytest

from repro.tpcw.queries import JOIN_QUERIES
from repro.tpcw.writes import WRITE_STATEMENTS

SYSTEMS = ("Synergy", "MVCC-A", "MVCC-UA", "Baseline")


def total_rt(system, lab, rep: int) -> float:
    total = 0.0
    for qid in JOIN_QUERIES:
        _, ms = system.timed_id(qid, lab.generator.params_for_query(qid, rep))
        total += ms
    for wid in WRITE_STATEMENTS:
        _, ms = system.timed_id(wid, lab.generator.params_for_write(wid, rep))
        total += ms
    return total


@pytest.mark.parametrize("name", SYSTEMS)
def test_table2_total_rt(benchmark, systems, lab, rep_counter, name):
    system = systems[name]

    def run():
        return total_rt(system, lab, next(rep_counter))

    virtual_ms = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["virtual_total_s"] = round(virtual_ms / 1000.0, 3)


def test_table2_ordering(systems, lab, rep_counter, benchmark):
    def run():
        return {n: total_rt(systems[n], lab, next(rep_counter)) for n in SYSTEMS}

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals["Synergy"] < totals["MVCC-A"]
    assert totals["Synergy"] < totals["MVCC-UA"]
    assert totals["Synergy"] < totals["Baseline"]
    improvement = 100 * (1 - totals["Synergy"] / totals["Baseline"])
    benchmark.extra_info["improvement_vs_baseline_pct"] = round(improvement, 1)
    assert improvement > 50  # paper: 80.5%
