"""Fig. 11 — two-phase row-locking overhead vs number of locks.

Paper anchors: 342 / 571 / 2182 ms for 10 / 100 / 1000 locks. The
sub-linear start (fixed client setup) and near-linear tail both emerge
from the cost model.
"""

import pytest

from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.sim.clock import Simulation
from repro.synergy.locks import LockBatch


@pytest.mark.parametrize("num_locks", [10, 100, 1000])
def test_fig11_lock_overhead(benchmark, num_locks):
    def run():
        sim = Simulation(seed=7)
        client = HBaseClient(HBaseCluster(sim))
        return LockBatch(client).run(num_locks)

    overhead_ms = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["virtual_overhead_ms"] = round(overhead_ms, 1)
    paper = {10: 342, 100: 571, 1000: 2182}
    benchmark.extra_info["paper_ms"] = paper[num_locks]


def test_fig11_shape():
    """Sub-linear growth from 10 to 100 (setup-dominated), then roughly
    linear from 100 to 1000 (per-lock round trips dominate)."""
    overheads = {}
    for n in (10, 100, 1000):
        sim = Simulation(seed=7)
        client = HBaseClient(HBaseCluster(sim))
        overheads[n] = LockBatch(client).run(n)
    assert overheads[10] < overheads[100] < overheads[1000]
    growth_low = overheads[100] / overheads[10]
    growth_high = overheads[1000] / overheads[100]
    assert growth_low < 10  # far sub-linear: fixed setup dominates
    assert growth_high > growth_low  # marginal cost takes over
