"""Table III — database sizes across the evaluated systems.

Paper (1M customers): VoltDB 31.8 GB < Baseline 43.8 < MVCC-UA 45.73 <
MVCC-A 91.8 ~= Synergy 92 GB. The ordering (VoltDB < Baseline < MVCC-UA
< MVCC-A ~= Synergy) is the reproduced shape; Synergy trades the extra
disk for join performance."""

import pytest

SYSTEMS = ("VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline")


@pytest.mark.parametrize("name", SYSTEMS)
def test_table3_db_size(benchmark, systems, name):
    system = systems[name]

    def run():
        return system.db_size_bytes()

    size = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["db_size_mb"] = round(size / 1e6, 2)


def test_table3_ordering(systems, benchmark):
    def run():
        return {n: systems[n].db_size_bytes() for n in SYSTEMS}

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sizes["VoltDB"] < sizes["Baseline"]
    assert sizes["Baseline"] < sizes["MVCC-UA"]
    assert sizes["MVCC-UA"] < sizes["MVCC-A"]
    assert abs(sizes["Synergy"] - sizes["MVCC-A"]) / sizes["Synergy"] < 0.05
    benchmark.extra_info["synergy_vs_baseline"] = round(
        sizes["Synergy"] / sizes["Baseline"], 2
    )
