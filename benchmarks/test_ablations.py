"""Ablation benches for the design choices DESIGN.md calls out.

1. single hierarchical lock vs per-row locks (Sec. III-2)
2. view-indexes on vs off for filtered view queries (Sec. VI-C)
3. workload-aware vs uniform heuristic in candidate generation (Sec. V)
4. write-path cost of views: Synergy write vs Baseline-without-MVCC
"""

import pytest

from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.sim.clock import Simulation
from repro.synergy.heuristics import JoinOverlapHeuristic, UniformHeuristic
from repro.synergy.graph import build_schema_graph
from repro.synergy.locks import LockBatch
from repro.synergy.trees import generate_rooted_trees
from repro.relational.company import COMPANY_ROOTS, company_schema, company_workload


def test_ablation_single_vs_many_locks(benchmark):
    """The Synergy design holds ONE lock per transaction; a row-level
    design would hold one per touched view row. At 100 rows the paper
    measures the many-lock overhead alone at 1.3x its most expensive
    write transaction."""

    def run():
        sim = Simulation(seed=3)
        client = HBaseClient(HBaseCluster(sim))
        batch = LockBatch(client)
        single = batch.run(1)
        many = batch.run(100)
        return single, many

    single, many = benchmark.pedantic(run, rounds=2, iterations=1)
    assert many > single
    benchmark.extra_info["single_lock_ms"] = round(single, 1)
    benchmark.extra_info["hundred_locks_ms"] = round(many, 1)


def test_ablation_view_index_on_off(benchmark, systems, lab):
    """Q2 filters the Customer-Orders view on c_uname; without the
    ix_c_uname view-index the whole view must be scanned (Sec. VI-C).

    The assertion compares mean simulated latencies with a jitter-aware
    margin: at small scales (REPRO_BENCH_SCALE <= 20) the index-vs-scan
    gap shrinks below the simulated 2% jitter, and a raw ``a < b`` on
    single samples flips randomly. The margin asserts "the indexed path
    is not slower beyond jitter noise", which is stable at every scale
    and still catches a real regression of the index path."""
    synergy = systems["Synergy"].system
    reps = 5

    def run():
        with_samples, no_samples = [], []
        for rep in range(reps):
            params = lab.generator.params_for_query("Q2", 5 + rep)
            _, ms = synergy.timed(synergy.statements["Q2"], params)
            with_samples.append(ms)
            # simulate "no index": full view scan emulated by filtering
            # on a non-indexed attribute of the same view
            _, ms = synergy.timed(
                "SELECT * FROM MV_Customer__Orders WHERE c_fname = ? "
                "ORDER BY o_date DESC, o_id DESC LIMIT 1",
                (params[0].replace("uname", "Cf"),),
            )
            no_samples.append(ms)
        return sum(with_samples) / reps, sum(no_samples) / reps

    with_index, no_index = benchmark.pedantic(run, rounds=2, iterations=1)
    # ~3 sigma of the mean of `reps` measurements whose per-measurement
    # noise is bounded by the simulation's multiplicative jitter
    margin = 3.0 * lab.jitter_fraction * max(with_index, no_index) / reps ** 0.5
    if lab.num_customers < 50:
        # below figure scale the view is only a handful of rows, so the
        # indexed plan's *fixed* extra work (index lookup round trip +
        # probe seek) can genuinely exceed the full-scan cost — e.g. at
        # scale 12 the indexed path measures ~0.7 ms slower, beyond the
        # jitter margin alone. That constant is architecture, not noise:
        # allow it, and only it, in the "not slower" direction.
        margin += 2.0 * lab.cost.rpc_base_ms + lab.cost.seek_ms
    assert no_index > with_index - margin, (
        f"indexed Q2 ({with_index:.2f}ms) slower than full view scan "
        f"({no_index:.2f}ms) beyond jitter margin {margin:.2f}ms"
    )
    if lab.num_customers >= 50:
        # below figure scale the view is small enough that a full scan
        # costs about the same as the index path (measured: ~0 gap at
        # scale 40), so the strict gate only holds from 50 up: there a
        # regression that silently stops using ix_c_uname must fail
        assert no_index > with_index + margin, (
            f"view-index gave no benefit at scale {lab.num_customers}: "
            f"indexed {with_index:.2f}ms vs scan {no_index:.2f}ms "
            f"(margin {margin:.2f}ms)"
        )
    benchmark.extra_info["speedup"] = round(no_index / with_index, 1)
    benchmark.extra_info["jitter_margin_ms"] = round(margin, 2)


def test_ablation_heuristic_choice(benchmark):
    """Workload-aware edge weighting keeps the (AID, EHome_AID) edge the
    Company workload joins on; the uniform heuristic may keep the dead
    office edge instead, losing the W1 materialization."""

    def run():
        schema = company_schema()
        workload = company_workload()
        graph = build_schema_graph(schema)
        aware_trees, _ = generate_rooted_trees(
            graph, COMPANY_ROOTS, JoinOverlapHeuristic(schema, workload)
        )
        uniform_trees, _ = generate_rooted_trees(
            graph, COMPANY_ROOTS, UniformHeuristic()
        )
        aware_edge = aware_trees["Address"].parent_edges["Employee"].fk_attrs
        uniform_edge = uniform_trees["Address"].parent_edges["Employee"].fk_attrs
        return aware_edge, uniform_edge

    aware_edge, _uniform_edge = benchmark.pedantic(run, rounds=2, iterations=1)
    assert aware_edge == ("EHome_AID",)


def test_ablation_write_cost_of_views(benchmark, systems, lab, rep_counter):
    """W3 (insert Order_line) maintains two views in Synergy; W6
    maintains none. The delta is the per-write price of materialization."""
    synergy = systems["Synergy"]

    def run():
        rep = next(rep_counter)
        _, w3 = synergy.timed_id("W3", lab.generator.params_for_write("W3", rep))
        _, w6 = synergy.timed_id("W6", lab.generator.params_for_write("W6", rep))
        return w3, w6

    w3, w6 = benchmark.pedantic(run, rounds=2, iterations=1)
    assert w3 > w6
    benchmark.extra_info["view_maintenance_overhead_ms"] = round(w3 - w6, 2)
