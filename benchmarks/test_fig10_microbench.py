"""Fig. 10 — micro-benchmark: view scan vs join algorithm.

Paper anchors at 50k customers: view scan 6x (Q1) / 11.7x (Q2) faster.
"""

import os

import pytest

from repro.synergy.system import SynergySystem
from repro.tpcw.microbench import (
    MICRO_Q1_BASE,
    MICRO_Q1_VIEW,
    MICRO_Q2_BASE,
    MICRO_Q2_VIEW,
    MICRO_ROOTS,
    MicrobenchDataGenerator,
    micro_schema,
    micro_workload,
)

MICRO_SCALE = int(os.environ.get("REPRO_MICRO_SCALE", "100"))


@pytest.fixture(scope="module")
def micro_system():
    system = SynergySystem(micro_schema(), micro_workload(), MICRO_ROOTS)
    for relation, row in MicrobenchDataGenerator(MICRO_SCALE, seed=1).all_rows():
        system.load_row(relation, row)
    system.finish_load()
    return system


CASES = [
    ("Q1-view-scan", MICRO_Q1_VIEW),
    ("Q1-join-algorithm", MICRO_Q1_BASE),
    ("Q2-view-scan", MICRO_Q2_VIEW),
    ("Q2-join-algorithm", MICRO_Q2_BASE),
]


@pytest.mark.parametrize("label,sql", CASES, ids=[c[0] for c in CASES])
def test_fig10(benchmark, micro_system, label, sql):
    def run():
        _, virtual_ms = micro_system.timed(sql)
        return virtual_ms

    virtual_ms = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["virtual_ms"] = round(virtual_ms, 2)
    benchmark.extra_info["scale_customers"] = MICRO_SCALE


def test_fig10_view_scan_wins(micro_system):
    _, q1_view = micro_system.timed(MICRO_Q1_VIEW)
    _, q1_join = micro_system.timed(MICRO_Q1_BASE)
    _, q2_view = micro_system.timed(MICRO_Q2_VIEW)
    _, q2_join = micro_system.timed(MICRO_Q2_BASE)
    assert q1_view < q1_join
    assert q2_view < q2_join
