"""Fig. 12 — TPC-W join queries across the evaluated systems.

Each benchmark runs one query on one system; ``extra_info`` carries the
virtual response time (the paper's tau). Queries marked X for VoltDB
are skipped exactly as in the figure.
"""

import pytest

from repro.tpcw.queries import JOIN_QUERIES, VOLTDB_UNSUPPORTED

SYSTEMS = ("VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline")

PARAMS = [
    pytest.param(name, qid, id=f"{qid}-{name}")
    for qid in JOIN_QUERIES
    for name in SYSTEMS
]


@pytest.mark.parametrize("name,qid", PARAMS)
def test_fig12_join_query(benchmark, systems, lab, name, qid):
    system = systems[name]
    if name == "VoltDB" and qid in VOLTDB_UNSUPPORTED:
        pytest.skip("unsupported under every VoltDB partitioning scheme (X)")
    params = lab.generator.params_for_query(qid, 0)

    def run():
        _, virtual_ms = system.timed_id(qid, params)
        return virtual_ms

    virtual_ms = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["virtual_ms"] = round(virtual_ms, 2)


@pytest.mark.parametrize("qid", list(JOIN_QUERIES))
def test_fig12_synergy_not_slower_than_baseline(systems, lab, qid, benchmark):
    """Shape assertion: Synergy joins are never slower than Baseline
    (the paper reports 28.2x faster on average)."""
    params = lab.generator.params_for_query(qid, 1)

    def run():
        _, synergy = systems["Synergy"].timed_id(qid, params)
        _, baseline = systems["Baseline"].timed_id(qid, params)
        return synergy, baseline

    synergy, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    assert synergy <= baseline * 1.05
    benchmark.extra_info["speedup"] = round(baseline / synergy, 2)
