"""Fig. 14 — TPC-W write statements across the evaluated systems.

Shape anchors: Synergy writes are ~9x cheaper than the MVCC systems
(hierarchical single lock vs begin/commit round trips), W6/W11 are the
cheapest Synergy writes (Shopping_cart participates in no view), and
VoltDB remains cheapest overall.
"""

import pytest

from repro.tpcw.writes import WRITE_STATEMENTS

SYSTEMS = ("VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline")

PARAMS = [
    pytest.param(name, wid, id=f"{wid}-{name}")
    for wid in WRITE_STATEMENTS
    for name in SYSTEMS
]


@pytest.mark.parametrize("name,wid", PARAMS)
def test_fig14_write_statement(benchmark, systems, lab, rep_counter, name, wid):
    system = systems[name]

    def run():
        rep = next(rep_counter)
        params = lab.generator.params_for_write(wid, rep)
        _, virtual_ms = system.timed_id(wid, params)
        return virtual_ms

    virtual_ms = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["virtual_ms"] = round(virtual_ms, 2)


def test_fig14_synergy_beats_mvcc_on_writes(systems, lab, rep_counter, benchmark):
    def run():
        out = {}
        for name in ("Synergy", "Baseline", "MVCC-A"):
            rep = next(rep_counter)
            params = lab.generator.params_for_write("W1", rep)
            _, ms = systems[name].timed_id("W1", params)
            out[name] = ms
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    assert times["Synergy"] * 3 < times["Baseline"]
    assert times["Synergy"] * 3 < times["MVCC-A"]
    benchmark.extra_info["speedup_vs_baseline"] = round(
        times["Baseline"] / times["Synergy"], 1
    )


def test_fig14_viewless_writes_cheapest(systems, lab, rep_counter, benchmark):
    """W6 (Shopping_cart, no views, no lock) is cheaper than W13
    (Customer, mid-path of Customer-Orders, 6-step marked update)."""
    synergy = systems["Synergy"]

    def run():
        rep = next(rep_counter)
        _, w6 = synergy.timed_id("W6", lab.generator.params_for_write("W6", rep))
        _, w13 = synergy.timed_id("W13", lab.generator.params_for_write("W13", rep))
        return w6, w13

    w6, w13 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert w6 < w13
