"""Fail when simulated-latency anchors drift from a committed baseline.

Usage::

    python tools/check_anchors.py CURRENT.json BASELINE.json [--json PATH]

Compares the Fig. 10-14 and Table II simulated-latency statistics of a
freshly emitted ``repro.bench`` trajectory against the committed
baseline (``BENCH_PR1.json``). Every (experiment, series, x) point
present in *both* files must match bit-for-bit: these numbers are pure
virtual time derived from seeded draws, so any difference means an
engine change altered the simulated cost model, not noise. Points only
one side measured (e.g. a reduced ``--micro-scales`` sweep) are skipped
but counted, so the job log shows the coverage.

Every drifted anchor is reported (one ``DRIFT:`` line each, with the
exact fields that moved) before the nonzero exit, so a single CI run
shows the full blast radius of a cost-model change instead of only its
first casualty.

``--json PATH`` additionally writes a machine-readable drift report —
``{"checked", "skipped", "drifted", "failures": [{"experiment",
"series", "x", "detail"}, ...], "ok"}`` — which CI uploads as an
artifact so downstream tooling can consume the verdict without
scraping the log.
"""

import json
import sys

ANCHOR_EXPERIMENTS = ("Fig10a", "Fig10b", "Fig11", "Fig12", "Fig14", "TableII")


def _describe_drift(stat, base_stat) -> str:
    """Name exactly which statistic fields moved, field by field; falls
    back to the raw repr for non-dict (malformed) entries."""
    if not isinstance(stat, dict) or not isinstance(base_stat, dict):
        return f"{stat!r} != {base_stat!r}"
    parts = []
    for key in sorted(set(stat) | set(base_stat)):
        ours, theirs = stat.get(key), base_stat.get(key)
        if ours != theirs:
            parts.append(f"{key}: {ours!r} != baseline {theirs!r}")
    return "; ".join(parts) if parts else f"{stat!r} != {base_stat!r}"


def compare(current: dict, baseline: dict) -> tuple[int, dict]:
    """Returns ``(exit_code, report)`` where ``report`` is the
    machine-readable drift summary ``--json`` emits."""
    checked = skipped = 0
    failures = []
    for experiment in ANCHOR_EXPERIMENTS:
        cur = current.get("experiments", {}).get(experiment)
        base = baseline.get("experiments", {}).get(experiment)
        if cur is None or base is None:
            skipped += 1
            continue
        for label, points in cur["series"].items():
            base_points = base["series"].get(label, {})
            for x, stat in points.items():
                base_stat = base_points.get(x)
                if base_stat is None:
                    skipped += 1
                    continue
                checked += 1
                if stat != base_stat:
                    failures.append(
                        {
                            "experiment": experiment,
                            "series": label,
                            "x": x,
                            "detail": _describe_drift(stat, base_stat),
                        }
                    )
    print(f"anchors checked: {checked}, skipped (not in both runs): {skipped}")
    report = {
        "checked": checked,
        "skipped": skipped,
        "drifted": len(failures),
        "failures": failures,
        "ok": bool(checked) and not failures,
    }
    if not checked:
        print("error: no overlapping anchor points found", file=sys.stderr)
        return 2, report
    for failure in failures:
        print(
            f"DRIFT: {failure['experiment']}/{failure['series']}/"
            f"{failure['x']}: {failure['detail']}",
            file=sys.stderr,
        )
    if failures:
        print(f"error: {len(failures)} anchor value(s) drifted", file=sys.stderr)
        return 1, report
    print("all overlapping anchor values are bit-identical")
    return 0, report


def main(argv: list[str]) -> int:
    json_out = None
    if "--json" in argv:
        i = argv.index("--json")
        if i + 1 >= len(argv):
            print(__doc__, file=sys.stderr)
            return 2
        json_out = argv[i + 1]
        argv = argv[:i] + argv[i + 2 :]
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[0]) as f:
        current = json.load(f)
    with open(argv[1]) as f:
        baseline = json.load(f)
    code, report = compare(current, baseline)
    if json_out is not None:
        with open(json_out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
