"""Deterministic, scalable TPC-W data generator.

Scaling rules follow the paper (Sec. IX-D1): ``NUM_ITEMS = 10 x
NUM_CUST`` and a Customer:Orders cardinality of 1:10. Everything is
seeded, so two generators with the same scale and seed produce
byte-identical databases — the five evaluated systems are populated
from the same stream.

Rows are yielded relation by relation in foreign-key (topological)
order, so loaders can construct view tuples as they go.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.sim.rng import derive_rng

SUBJECTS = (
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH", "TRAVEL",
)

SHIP_TYPES = ("AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL")
CARD_TYPES = ("VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS")
STATUSES = ("PROCESSING", "SHIPPED", "PENDING", "DENIED")
BACKINGS = ("HARDBACK", "PAPERBACK", "USED", "AUDIO", "LIMITED-EDITION")

NUM_COUNTRIES = 92
BASE_DATE = 730_000  # a fixed date ordinal, so runs are reproducible


class TpcwDataGenerator:
    """Generates the TPC-W database at a given customer scale."""

    def __init__(self, num_customers: int, seed: int = 0) -> None:
        if num_customers < 10:
            raise ValueError("num_customers must be >= 10")
        self.num_customers = num_customers
        self.num_items = 10 * num_customers
        self.num_authors = max(self.num_items // 4, 1)
        self.num_addresses = 2 * num_customers
        self.num_orders = 10 * num_customers  # paper: 1:10 cardinality
        self.num_carts = max(num_customers // 5, 1)
        self.seed = seed
        self._rng = derive_rng(seed, f"tpcw-{num_customers}")
        self.order_line_count = 0

    # -- helpers ------------------------------------------------------------------
    def _string(self, prefix: str, ident: int, length: int) -> str:
        body = f"{prefix}{ident}"
        return (body * (length // len(body) + 1))[:length]

    def relation_order(self) -> tuple[str, ...]:
        return (
            "Country",
            "Address",
            "Author",
            "Customer",
            "Item",
            "Orders",
            "Order_line",
            "CC_Xacts",
            "Shopping_cart",
            "Shopping_cart_line",
        )

    def rows_for(self, relation: str) -> Iterator[dict[str, Any]]:
        return getattr(self, f"gen_{relation.lower()}")()

    def all_rows(self) -> Iterator[tuple[str, dict[str, Any]]]:
        for relation in self.relation_order():
            for row in self.rows_for(relation):
                yield relation, row

    # -- relations ------------------------------------------------------------------
    def gen_country(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "country")
        for co_id in range(1, NUM_COUNTRIES + 1):
            yield {
                "co_id": co_id,
                "co_name": self._string("Country", co_id, 16),
                "co_exchange": round(float(rng.uniform(0.1, 10.0)), 4),
                "co_currency": self._string("CUR", co_id, 8),
            }

    def gen_address(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "address")
        for addr_id in range(1, self.num_addresses + 1):
            yield {
                "addr_id": addr_id,
                "addr_street1": self._string("Street", addr_id, 24),
                "addr_street2": self._string("Apt", addr_id, 12),
                "addr_city": self._string("City", addr_id % 997, 14),
                "addr_state": self._string("ST", addr_id % 51, 6),
                "addr_zip": f"{addr_id % 100000:05d}",
                "addr_co_id": int(rng.integers(1, NUM_COUNTRIES + 1)),
            }

    def gen_author(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "author")
        for a_id in range(1, self.num_authors + 1):
            yield {
                "a_id": a_id,
                "a_fname": self._string("First", a_id, 12),
                "a_lname": self._string("Last", a_id, 12),
                "a_mname": self._string("M", a_id, 6),
                "a_dob": BASE_DATE - int(rng.integers(8_000, 30_000)),
                "a_bio": self._string("Bio", a_id, 200),
            }

    def gen_customer(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "customer")
        for c_id in range(1, self.num_customers + 1):
            since = BASE_DATE - int(rng.integers(0, 2_000))
            yield {
                "c_id": c_id,
                "c_uname": self.customer_uname(c_id),
                "c_passwd": self._string("pw", c_id, 10),
                "c_fname": self._string("Cf", c_id, 10),
                "c_lname": self._string("Cl", c_id, 10),
                "c_addr_id": 1 + (c_id - 1) % self.num_addresses,
                "c_phone": f"+1-{c_id % 1000:03d}-{c_id % 10000:04d}",
                "c_email": f"c{c_id}@example.com",
                "c_since": since,
                "c_last_login": since + int(rng.integers(0, 500)),
                "c_login": round(float(rng.uniform(0, 7200)), 2),
                "c_expiration": round(float(rng.uniform(0, 7200)), 2),
                "c_discount": round(float(rng.uniform(0, 0.5)), 2),
                "c_balance": round(float(rng.uniform(-100, 1000)), 2),
                "c_ytd_pmt": round(float(rng.uniform(0, 10000)), 2),
                "c_birthdate": BASE_DATE - int(rng.integers(6_000, 30_000)),
                "c_data": self._string("Data", c_id, 250),
            }

    def gen_item(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "item")
        for i_id in range(1, self.num_items + 1):
            related = rng.integers(1, self.num_items + 1, size=5)
            srp = round(float(rng.uniform(1, 300)), 2)
            yield {
                "i_id": i_id,
                "i_title": self._string("Title", i_id, 30),
                "i_a_id": 1 + (i_id - 1) % self.num_authors,
                "i_pub_date": BASE_DATE - int(rng.integers(0, 5_000)),
                "i_publisher": self._string("Pub", i_id % 997, 20),
                "i_subject": SUBJECTS[i_id % len(SUBJECTS)],
                "i_desc": self._string("Desc", i_id, 250),
                "i_related1": int(related[0]),
                "i_related2": int(related[1]),
                "i_related3": int(related[2]),
                "i_related4": int(related[3]),
                "i_related5": int(related[4]),
                "i_thumbnail": f"img/t{i_id}.gif",
                "i_image": f"img/i{i_id}.gif",
                "i_srp": srp,
                "i_cost": round(srp * float(rng.uniform(0.5, 1.0)), 2),
                "i_avail": BASE_DATE + int(rng.integers(0, 30)),
                "i_stock": int(rng.integers(10, 30)),
                "i_isbn": self._string("ISBN", i_id, 13),
                "i_page": int(rng.integers(20, 9999)),
                "i_backing": BACKINGS[i_id % len(BACKINGS)],
                "i_dimensions": "20x15x2",
            }

    def gen_orders(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "orders")
        for o_id in range(1, self.num_orders + 1):
            sub = round(float(rng.uniform(10, 1000)), 2)
            yield {
                "o_id": o_id,
                "o_c_id": 1 + (o_id - 1) % self.num_customers,
                "o_date": BASE_DATE + int(rng.integers(0, 366)),
                "o_sub_total": sub,
                "o_tax": round(sub * 0.0825, 2),
                "o_total": round(sub * 1.0825, 2),
                "o_ship_type": SHIP_TYPES[o_id % len(SHIP_TYPES)],
                "o_ship_date": BASE_DATE + int(rng.integers(0, 380)),
                "o_bill_addr_id": 1 + int(rng.integers(0, self.num_addresses)),
                "o_ship_addr_id": 1 + int(rng.integers(0, self.num_addresses)),
                "o_status": STATUSES[o_id % len(STATUSES)],
            }

    def gen_order_line(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "order_line")
        count = 0
        for o_id in range(1, self.num_orders + 1):
            lines = int(rng.integers(1, 6))  # avg 3 lines per order
            for ol_id in range(1, lines + 1):
                count += 1
                yield {
                    "ol_o_id": o_id,
                    "ol_id": ol_id,
                    "ol_i_id": 1 + int(rng.integers(0, self.num_items)),
                    "ol_qty": int(rng.integers(1, 10)),
                    "ol_discount": round(float(rng.uniform(0, 0.5)), 2),
                    "ol_comments": self._string("Com", count, 40),
                }
        self.order_line_count = count

    def gen_cc_xacts(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "cc_xacts")
        for o_id in range(1, self.num_orders + 1):
            yield {
                "cx_o_id": o_id,
                "cx_type": CARD_TYPES[o_id % len(CARD_TYPES)],
                "cx_num": f"{int(rng.integers(10**15, 10**16 - 1))}",
                "cx_name": self._string("Card", o_id, 20),
                "cx_expire": BASE_DATE + int(rng.integers(300, 1500)),
                "cx_auth_id": self._string("AUTH", o_id, 15),
                "cx_xact_amt": round(float(rng.uniform(10, 1100)), 2),
                "cx_xact_date": BASE_DATE + int(rng.integers(0, 366)),
                "cx_co_id": int(rng.integers(1, NUM_COUNTRIES + 1)),
            }

    def gen_shopping_cart(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "cart")
        for sc_id in range(1, self.num_carts + 1):
            yield {
                "sc_id": sc_id,
                "sc_time": round(float(rng.uniform(0, 10**6)), 2),
            }

    def gen_shopping_cart_line(self) -> Iterator[dict[str, Any]]:
        rng = derive_rng(self.seed, "cart_line")
        for sc_id in range(1, self.num_carts + 1):
            lines = int(rng.integers(1, 6))
            items = rng.choice(self.num_items, size=lines, replace=False)
            for i in items:
                yield {
                    "scl_sc_id": sc_id,
                    "scl_i_id": int(i) + 1,
                    "scl_qty": int(rng.integers(1, 10)),
                }

    # -- parameter provider (for running workload statements) -----------------------
    def customer_uname(self, c_id: int) -> str:
        return f"uname{c_id:09d}"

    def params_for_query(self, query_id: str, rep: int = 0) -> tuple[Any, ...]:
        """Deterministic, valid parameters for each Fig. 15 query."""
        rng = derive_rng(self.seed, f"params-{query_id}-{rep}")
        c_id = int(rng.integers(1, self.num_customers + 1))
        i_id = int(rng.integers(1, self.num_items + 1))
        o_id = int(rng.integers(1, self.num_orders + 1))
        sc_id = int(rng.integers(1, self.num_carts + 1))
        subject = SUBJECTS[int(rng.integers(0, len(SUBJECTS)))]
        return {
            "Q1": (o_id,),
            "Q2": (self.customer_uname(c_id),),
            "Q3": (self.customer_uname(c_id),),
            "Q4": (subject,),
            "Q5": (subject,),
            "Q6": (i_id,),
            "Q7": (o_id,),
            "Q8": (sc_id,),
            "Q9": (i_id,),
            "Q10": (subject,),
            "Q11": (i_id,),
        }[query_id]

    def params_for_write(self, write_id: str, rep: int = 0) -> tuple[Any, ...]:
        """Deterministic parameters for each Fig. 16 write statement.

        Inserts use fresh ids above the populated range (offset by rep)
        so repetitions do not collide. The id draws are shared across
        write ids at the same rep, so W8 deletes exactly the line W7
        inserted and W12 updates a line that exists."""
        rng = derive_rng(self.seed, f"wparams-{rep}")
        new_o_id = self.num_orders + 1 + rep
        new_c_id = self.num_customers + 1 + rep
        new_addr_id = self.num_addresses + 1 + rep
        new_sc_id = self.num_carts + 1 + rep
        c_id = int(rng.integers(1, self.num_customers + 1))
        i_id = int(rng.integers(1, self.num_items + 1))
        o_id = int(rng.integers(1, self.num_orders + 1))
        sc_id = int(rng.integers(1, self.num_carts + 1))
        return {
            "W1": (
                new_o_id, c_id, BASE_DATE + 400, 100.0, 8.25, 108.25,
                "AIR", BASE_DATE + 402, 1 + (c_id % self.num_addresses),
                1 + (c_id % self.num_addresses), "PENDING",
            ),
            "W2": (
                new_o_id, "VISA", "4000111122223333", "CARDHOLDER",
                BASE_DATE + 900, "AUTH12345", 108.25, BASE_DATE + 400, 1,
            ),
            "W3": (o_id, 90 + rep, i_id, 2, 0.1, "bench order line"),
            "W4": (
                new_c_id, self.customer_uname(new_c_id), "pw", "F", "L",
                1 + (new_c_id % self.num_addresses), "+1-000-0000",
                f"c{new_c_id}@example.com", BASE_DATE, BASE_DATE, 0.0,
                7200.0, 0.1, 0.0, 0.0, BASE_DATE - 9000, "data",
            ),
            "W5": (
                new_addr_id, "1 Bench St", "", "BenchCity", "TN", "37201",
                1 + (new_addr_id % NUM_COUNTRIES),
            ),
            "W6": (new_sc_id, 1000.0 + rep),
            "W7": (sc_id, 1 + ((i_id + 7 * (rep + 1)) % self.num_items), 3),
            "W8": (sc_id, 1 + ((i_id + 7 * (rep + 1)) % self.num_items)),
            "W9": (42 + rep, i_id),
            "W10": (19.99, BASE_DATE + 10, "img/new.gif", "img/newt.gif", i_id),
            "W11": (2000.0 + rep, sc_id),
            "W12": (5 + rep, *self.existing_cart_line(sc_id)),
            "W13": (123.45, 678.9, 3600.0, c_id),
        }[write_id]

    def existing_cart_line(self, sc_id: int) -> tuple[int, int]:
        """(scl_sc_id, scl_i_id) of a line that exists for this cart
        (replays gen_shopping_cart_line's draw sequence exactly)."""
        rng = derive_rng(self.seed, "cart_line")
        for cur_sc in range(1, self.num_carts + 1):
            lines = int(rng.integers(1, 6))
            items = rng.choice(self.num_items, size=lines, replace=False)
            if cur_sc == sc_id:
                return sc_id, int(items[0]) + 1
            for _ in range(lines):  # the per-line qty draws
                rng.integers(1, 10)
        raise ValueError(f"no cart {sc_id}")  # pragma: no cover
