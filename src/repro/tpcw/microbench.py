"""The TPC-W micro-benchmark (paper Sec. IX-B, Figs. 8-10).

Three relations — Customer, Orders, Order_line — with 1:10 cardinality
ratios, and two foreign-key equi-join queries Q1 (Customer x Orders) and
Q2 (Customer x Orders x Order_line). Each join can be answered by the
join algorithm over base tables or by scanning the corresponding
materialized view; Fig. 10 compares the two."""

from __future__ import annotations

from typing import Any, Iterator

from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, Index, Relation, Schema
from repro.relational.workload import Workload
from repro.sim.rng import derive_rng

INT = DataType.INT
FLOAT = DataType.FLOAT
VARCHAR = DataType.VARCHAR

MICRO_ROOTS = ("Customer",)

#: Fig. 9 — queries written against base tables and against the views.
MICRO_Q1_BASE = (
    "SELECT * FROM Customer as c, Orders as o WHERE c.c_id = o.o_c_id"
)
MICRO_Q2_BASE = (
    "SELECT * FROM Customer as c, Orders as o, Order_line as ol "
    "WHERE c.c_id = o.o_c_id and o.o_id = ol.ol_o_id"
)
MICRO_Q1_VIEW = "SELECT * FROM MV_Customer__Orders"
MICRO_Q2_VIEW = "SELECT * FROM MV_Customer__Orders__Order_line"


def micro_schema() -> Schema:
    customer = Relation(
        "Customer",
        [
            ("c_id", INT),
            ("c_uname", VARCHAR),
            ("c_fname", VARCHAR),
            ("c_lname", VARCHAR),
            ("c_data", VARCHAR),
        ],
        primary_key=["c_id"],
    )
    orders = Relation(
        "Orders",
        [
            ("o_id", INT),
            ("o_c_id", INT),
            ("o_date", INT),
            ("o_total", FLOAT),
            ("o_status", VARCHAR),
        ],
        primary_key=["o_id"],
        foreign_keys=[ForeignKey("order_customer", ("o_c_id",), "Customer")],
    )
    order_line = Relation(
        "Order_line",
        [
            ("ol_o_id", INT),
            ("ol_id", INT),
            ("ol_i_id", INT),
            ("ol_qty", INT),
            ("ol_comments", VARCHAR),
        ],
        primary_key=["ol_o_id", "ol_id"],
        foreign_keys=[ForeignKey("ol_order", ("ol_o_id",), "Orders")],
    )
    schema = Schema([customer, orders, order_line])
    schema.add_index(
        "Orders",
        Index(
            "idx_o_c_id",
            ("o_c_id",),
            ("o_id", "o_date", "o_total", "o_status"),
        ),
    )
    return schema


def micro_workload() -> Workload:
    w = Workload()
    w.add(MICRO_Q1_BASE, statement_id="Q1")
    w.add(MICRO_Q2_BASE, statement_id="Q2")
    return w


class MicrobenchDataGenerator:
    """1:10:10 cardinality chain, deterministic."""

    def __init__(self, num_customers: int, seed: int = 0) -> None:
        self.num_customers = num_customers
        self.num_orders = 10 * num_customers
        self.num_order_lines = 10 * self.num_orders
        self.seed = seed

    def relation_order(self) -> tuple[str, ...]:
        return ("Customer", "Orders", "Order_line")

    def rows_for(self, relation: str) -> Iterator[dict[str, Any]]:
        if relation == "Customer":
            for c_id in range(1, self.num_customers + 1):
                yield {
                    "c_id": c_id,
                    "c_uname": f"u{c_id:09d}",
                    "c_fname": f"F{c_id}",
                    "c_lname": f"L{c_id}",
                    "c_data": "x" * 40,
                }
        elif relation == "Orders":
            rng = derive_rng(self.seed, "micro-orders")
            for o_id in range(1, self.num_orders + 1):
                yield {
                    "o_id": o_id,
                    "o_c_id": 1 + (o_id - 1) % self.num_customers,
                    "o_date": 730_000 + int(rng.integers(0, 366)),
                    "o_total": round(float(rng.uniform(1, 500)), 2),
                    "o_status": "SHIPPED",
                }
        elif relation == "Order_line":
            rng = derive_rng(self.seed, "micro-ol")
            for o_id in range(1, self.num_orders + 1):
                for ol_id in range(1, 11):  # exactly 1:10
                    yield {
                        "ol_o_id": o_id,
                        "ol_id": ol_id,
                        "ol_i_id": int(rng.integers(1, 1000)),
                        "ol_qty": int(rng.integers(1, 10)),
                        "ol_comments": "y" * 20,
                    }
        else:  # pragma: no cover - guarded by relation_order
            raise KeyError(relation)

    def all_rows(self) -> Iterator[tuple[str, dict[str, Any]]]:
        for relation in self.relation_order():
            for row in self.rows_for(relation):
                yield relation, row
