"""The assembled TPC-W workload: Q1-Q11 + W1-W13 as one Workload."""

from __future__ import annotations

from repro.relational.workload import Workload
from repro.tpcw.queries import JOIN_QUERIES
from repro.tpcw.writes import WRITE_STATEMENTS


def tpcw_workload(
    include_reads: bool = True, include_writes: bool = True
) -> Workload:
    w = Workload()
    if include_reads:
        for qid, sql in JOIN_QUERIES.items():
            w.add(sql, statement_id=qid)
    if include_writes:
        for wid, sql in WRITE_STATEMENTS.items():
            w.add(sql, statement_id=wid)
    return w
