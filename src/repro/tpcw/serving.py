"""Zipfian million-user serving workload over the TPC-W store.

The paper's north star is heavy traffic from millions of users; the
figure experiments drive at most dozens of clients against a uniformly
loaded table. This module closes the realism gap on the *workload*
side: a configurable Zipf(s) population of (by default) one million
TPC-W customers, folded deterministically onto the profile-table key
space, drawn entirely from dedicated ``SimRNG`` streams so that

* the population's rank CDF depends only on ``(population, s)``,
* client ``i``'s operation mix depends only on ``(seed, label, i)`` —
  adding clients, reordering cells or interleaving other RNG consumers
  never perturbs an existing client's stream (the scale-out bench's
  per-client-stream idiom),
* two runs at the same parameters are bit-identical.

Rank 0 is the hottest user. Ranks are folded onto ``key_space``
distinct profile rows with a fixed odd-multiplier permutation so the
hot head of the distribution spreads across the pre-split region
layout instead of piling onto the first region — skew then creates a
genuinely *hot server*, which is what the cache and the admission
controller are for.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import derive_rng

_FOLD_MULTIPLIER = 0x9E3779B1
"""Fixed odd multiplier (2**32 / golden ratio) for the rank -> row
fold: bijective mod 2**32, so equal-rank collisions happen only via
the final modulo, spreading hot ranks across the key space."""


class ZipfianPopulation:
    """Bounded Zipf(s) distribution over ``population`` user ranks.

    Sampling inverts the precomputed rank CDF (``searchsorted`` over a
    cumulative weight array) — exact for the bounded population, with
    none of the rejection steps of open-ended Zipf samplers, so a draw
    consumes exactly one uniform variate per sample regardless of
    parameters. The CDF for a million users is an 8 MB float64 array,
    built once in ~milliseconds with numpy.
    """

    def __init__(self, population: int = 1_000_000, s: float = 1.1) -> None:
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        if s < 0:
            raise ValueError(f"zipf s must be >= 0, got {s}")
        self.population = population
        self.s = s
        weights = np.arange(1, population + 1, dtype=np.float64) ** -float(s)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` user ranks (0 = hottest) from one RNG stream."""
        u = rng.random(n)
        return np.searchsorted(self._cdf, u, side="right")

    def head_mass(self, k: int) -> float:
        """Probability mass of the ``k`` hottest users (skew gauge)."""
        if k <= 0:
            return 0.0
        return float(self._cdf[min(k, self.population) - 1])


def fold_rank(rank: int, key_space: int) -> int:
    """Deterministically spread a user rank over ``key_space`` rows."""
    return (rank * _FOLD_MULTIPLIER) % key_space


class ServingWorkload:
    """Per-client operation streams for the serving bench.

    ``ops_for_client(i, n)`` yields ``n`` operations for virtual client
    ``i`` as ``(kind, row_index)`` pairs — ``kind`` is ``"get"`` or
    ``"put"``, ``row_index`` indexes the ``key_space`` profile rows —
    drawn from the stream ``derive_rng(seed, f"{label}/client-{i}")``.
    The grid cell a client runs in is deliberately *not* part of the
    stream label: client ``i`` replays the same personal mix at every
    offered load and in every serving mode, so mode comparisons differ
    only in the serving machinery, never in the workload.
    """

    def __init__(
        self,
        population: ZipfianPopulation,
        key_space: int,
        seed: int,
        read_fraction: float = 0.9,
        label: str = "serving",
    ) -> None:
        if key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {key_space}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        self.population = population
        self.key_space = key_space
        self.seed = seed
        self.read_fraction = read_fraction
        self.label = label

    def row_key(self, row_index: int) -> bytes:
        return b"%08d" % row_index

    def ops_for_client(self, client_id: int, n: int) -> list[tuple[str, bytes]]:
        """Client ``client_id``'s first ``n`` operations, materialized:
        ``[(kind, row_key), ...]``. One vectorized draw per client keeps
        a 10k-client cell's setup linear and cheap."""
        rng = derive_rng(self.seed, f"{self.label}/client-{client_id}")
        ranks = self.population.sample(rng, n)
        kinds = rng.random(n)
        read_fraction = self.read_fraction
        key_space = self.key_space
        return [
            (
                "get" if kinds[j] < read_fraction else "put",
                b"%08d" % ((int(ranks[j]) * _FOLD_MULTIPLIER) % key_space),
            )
            for j in range(n)
        ]
