"""TPC-W benchmark substrate (paper Sec. IX).

The transactional web benchmark's database tier: the full 10-relation
schema, a deterministic scalable data generator (NUM_ITEMS = 10 x
NUM_CUST, Customer:Orders = 1:10, as the paper configures), the 11 join
queries of Fig. 15, the 13 write statements of Fig. 16, and the
3-relation micro-benchmark of Sec. IX-B. The soundex queries and the
multi-row shopping-cart DELETE are excluded exactly as the paper
excludes them.
"""

from repro.tpcw.schema import TPCW_ROOTS, tpcw_schema
from repro.tpcw.queries import JOIN_QUERIES, join_query
from repro.tpcw.writes import WRITE_STATEMENTS, write_statement
from repro.tpcw.workload import tpcw_workload
from repro.tpcw.generator import TpcwDataGenerator
from repro.tpcw.serving import ServingWorkload, ZipfianPopulation, fold_rank
from repro.tpcw.microbench import (
    MICRO_ROOTS,
    MicrobenchDataGenerator,
    micro_schema,
    micro_workload,
)

__all__ = [
    "JOIN_QUERIES",
    "MICRO_ROOTS",
    "MicrobenchDataGenerator",
    "ServingWorkload",
    "TPCW_ROOTS",
    "TpcwDataGenerator",
    "WRITE_STATEMENTS",
    "ZipfianPopulation",
    "fold_rank",
    "join_query",
    "micro_schema",
    "micro_workload",
    "tpcw_schema",
    "tpcw_workload",
    "write_statement",
]
