"""The 11 TPC-W join queries (paper Fig. 15).

Each entry mirrors the figure's row: tables, filters, ordering, grouping
and limits. Q9 and Q11 are self-joins; Q7 uses Address and Country
twice — Synergy answers those from base tables. The two soundex queries
are excluded (Phoenix lacked soundex; Sec. IX-D1), as in the paper.
"""

from __future__ import annotations

# The derived "Orders tmp table" of Q10/Q11 is the TPC-W convention of
# restricting best-seller/related-item statistics to the most recent
# orders (3333 / 10000 in the reference implementation).
RECENT_ORDERS_Q10 = 3333
RECENT_ORDERS_Q11 = 10000

JOIN_QUERIES: dict[str, str] = {
    # Q1 — order display: items of one order
    "Q1": (
        "SELECT * FROM Item as i, Order_line as ol "
        "WHERE ol.ol_i_id = i.i_id and ol.ol_o_id = ?"
    ),
    # Q2 — most recent order of a customer
    "Q2": (
        "SELECT * FROM Customer as c, Orders as o "
        "WHERE c.c_id = o.o_c_id and c.c_uname = ? "
        "ORDER BY o.o_date DESC, o.o_id DESC LIMIT 1"
    ),
    # Q3 — customer with address and country
    "Q3": (
        "SELECT * FROM Customer as c, Address as a, Country as co "
        "WHERE c.c_addr_id = a.addr_id and a.addr_co_id = co.co_id "
        "and c.c_uname = ?"
    ),
    # Q4 — new products by subject, by title
    "Q4": (
        "SELECT * FROM Author as a, Item as i "
        "WHERE a.a_id = i.i_a_id and i.i_subject = ? "
        "ORDER BY i.i_title LIMIT 50"
    ),
    # Q5 — new products by subject, by publication date
    "Q5": (
        "SELECT * FROM Author as a, Item as i "
        "WHERE a.a_id = i.i_a_id and i.i_subject = ? "
        "ORDER BY i.i_pub_date DESC, i.i_title LIMIT 50"
    ),
    # Q6 — product detail with author
    "Q6": (
        "SELECT * FROM Author as a, Item as i "
        "WHERE a.a_id = i.i_a_id and i.i_id = ?"
    ),
    # Q7 — order display: full order with both addresses and countries
    "Q7": (
        "SELECT * FROM Orders as o, Customer as c, "
        "Address as ship_addr, Address as bill_addr, "
        "Country as ship_co, Country as bill_co "
        "WHERE o.o_id = ? and o.o_c_id = c.c_id "
        "and o.o_ship_addr_id = ship_addr.addr_id "
        "and o.o_bill_addr_id = bill_addr.addr_id "
        "and ship_addr.addr_co_id = ship_co.co_id "
        "and bill_addr.addr_co_id = bill_co.co_id"
    ),
    # Q8 — shopping cart contents with item details
    "Q8": (
        "SELECT * FROM Item as i, Shopping_cart_line as scl "
        "WHERE scl.scl_i_id = i.i_id and scl.scl_sc_id = ?"
    ),
    # Q9 — related item (item self-join)
    "Q9": (
        "SELECT j.i_id, j.i_title, j.i_thumbnail "
        "FROM Item as i, Item as j "
        "WHERE i.i_id = ? and i.i_related1 = j.i_id"
    ),
    # Q10 — best sellers by subject over recent orders
    "Q10": (
        "SELECT i.i_id, i.i_title, a.a_fname, a.a_lname, SUM(ol.ol_qty) "
        "FROM Author as a, Item as i, Order_line as ol, "
        f"(SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT {RECENT_ORDERS_Q10}) as tmp "
        "WHERE a.a_id = i.i_a_id and ol.ol_i_id = i.i_id "
        "and ol.ol_o_id = tmp.o_id and i.i_subject = ? "
        "GROUP BY i.i_id, i.i_title, a.a_fname, a.a_lname "
        "ORDER BY SUM(ol.ol_qty) DESC LIMIT 50"
    ),
    # Q11 — admin: items bought together (order_line self-join)
    "Q11": (
        "SELECT ol2.ol_i_id, SUM(ol2.ol_qty) "
        "FROM Order_line as ol, Order_line as ol2, "
        f"(SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT {RECENT_ORDERS_Q11}) as tmp "
        "WHERE ol.ol_o_id = tmp.o_id and ol.ol_i_id = ? "
        "and ol2.ol_o_id = ol.ol_o_id and ol2.ol_i_id <> ol.ol_i_id "
        "GROUP BY ol2.ol_i_id ORDER BY SUM(ol2.ol_qty) DESC LIMIT 5"
    ),
}

#: Join queries VoltDB cannot run under any single partitioning scheme
#: (paper Fig. 12 marks them with an X).
VOLTDB_UNSUPPORTED = ("Q3", "Q7", "Q9", "Q10")


def join_query(query_id: str) -> str:
    return JOIN_QUERIES[query_id]
