"""The TPC-W schema (10 relations) with the base-table indexes the
workload needs. Roots for Synergy: {Author, Customer, Country} (Sec.
IX-D2)."""

from __future__ import annotations

from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, Index, Relation, Schema

INT = DataType.INT
FLOAT = DataType.FLOAT
VARCHAR = DataType.VARCHAR
DATE = DataType.DATE

TPCW_ROOTS = ("Author", "Customer", "Country")


def tpcw_schema() -> Schema:
    country = Relation(
        "Country",
        [
            ("co_id", INT),
            ("co_name", VARCHAR),
            ("co_exchange", FLOAT),
            ("co_currency", VARCHAR),
        ],
        primary_key=["co_id"],
    )
    address = Relation(
        "Address",
        [
            ("addr_id", INT),
            ("addr_street1", VARCHAR),
            ("addr_street2", VARCHAR),
            ("addr_city", VARCHAR),
            ("addr_state", VARCHAR),
            ("addr_zip", VARCHAR),
            ("addr_co_id", INT),
        ],
        primary_key=["addr_id"],
        foreign_keys=[ForeignKey("addr_country", ("addr_co_id",), "Country")],
    )
    customer = Relation(
        "Customer",
        [
            ("c_id", INT),
            ("c_uname", VARCHAR),
            ("c_passwd", VARCHAR),
            ("c_fname", VARCHAR),
            ("c_lname", VARCHAR),
            ("c_addr_id", INT),
            ("c_phone", VARCHAR),
            ("c_email", VARCHAR),
            ("c_since", DATE),
            ("c_last_login", DATE),
            ("c_login", FLOAT),
            ("c_expiration", FLOAT),
            ("c_discount", FLOAT),
            ("c_balance", FLOAT),
            ("c_ytd_pmt", FLOAT),
            ("c_birthdate", DATE),
            ("c_data", VARCHAR),
        ],
        primary_key=["c_id"],
        foreign_keys=[ForeignKey("cust_addr", ("c_addr_id",), "Address")],
    )
    author = Relation(
        "Author",
        [
            ("a_id", INT),
            ("a_fname", VARCHAR),
            ("a_lname", VARCHAR),
            ("a_mname", VARCHAR),
            ("a_dob", DATE),
            ("a_bio", VARCHAR),
        ],
        primary_key=["a_id"],
    )
    item = Relation(
        "Item",
        [
            ("i_id", INT),
            ("i_title", VARCHAR),
            ("i_a_id", INT),
            ("i_pub_date", DATE),
            ("i_publisher", VARCHAR),
            ("i_subject", VARCHAR),
            ("i_desc", VARCHAR),
            ("i_related1", INT),
            ("i_related2", INT),
            ("i_related3", INT),
            ("i_related4", INT),
            ("i_related5", INT),
            ("i_thumbnail", VARCHAR),
            ("i_image", VARCHAR),
            ("i_srp", FLOAT),
            ("i_cost", FLOAT),
            ("i_avail", DATE),
            ("i_stock", INT),
            ("i_isbn", VARCHAR),
            ("i_page", INT),
            ("i_backing", VARCHAR),
            ("i_dimensions", VARCHAR),
        ],
        primary_key=["i_id"],
        foreign_keys=[ForeignKey("item_author", ("i_a_id",), "Author")],
    )
    orders = Relation(
        "Orders",
        [
            ("o_id", INT),
            ("o_c_id", INT),
            ("o_date", DATE),
            ("o_sub_total", FLOAT),
            ("o_tax", FLOAT),
            ("o_total", FLOAT),
            ("o_ship_type", VARCHAR),
            ("o_ship_date", DATE),
            ("o_bill_addr_id", INT),
            ("o_ship_addr_id", INT),
            ("o_status", VARCHAR),
        ],
        primary_key=["o_id"],
        foreign_keys=[
            ForeignKey("order_customer", ("o_c_id",), "Customer"),
            ForeignKey("order_bill_addr", ("o_bill_addr_id",), "Address"),
            ForeignKey("order_ship_addr", ("o_ship_addr_id",), "Address"),
        ],
    )
    order_line = Relation(
        "Order_line",
        [
            ("ol_o_id", INT),
            ("ol_id", INT),
            ("ol_i_id", INT),
            ("ol_qty", INT),
            ("ol_discount", FLOAT),
            ("ol_comments", VARCHAR),
        ],
        primary_key=["ol_o_id", "ol_id"],
        foreign_keys=[
            ForeignKey("ol_order", ("ol_o_id",), "Orders"),
            ForeignKey("ol_item", ("ol_i_id",), "Item"),
        ],
    )
    cc_xacts = Relation(
        "CC_Xacts",
        [
            ("cx_o_id", INT),
            ("cx_type", VARCHAR),
            ("cx_num", VARCHAR),
            ("cx_name", VARCHAR),
            ("cx_expire", DATE),
            ("cx_auth_id", VARCHAR),
            ("cx_xact_amt", FLOAT),
            ("cx_xact_date", DATE),
            ("cx_co_id", INT),
        ],
        primary_key=["cx_o_id"],
        foreign_keys=[
            ForeignKey("cx_order", ("cx_o_id",), "Orders"),
            ForeignKey("cx_country", ("cx_co_id",), "Country"),
        ],
    )
    shopping_cart = Relation(
        "Shopping_cart",
        [("sc_id", INT), ("sc_time", FLOAT)],
        primary_key=["sc_id"],
    )
    shopping_cart_line = Relation(
        "Shopping_cart_line",
        [
            ("scl_sc_id", INT),
            ("scl_i_id", INT),
            ("scl_qty", INT),
        ],
        primary_key=["scl_sc_id", "scl_i_id"],
        foreign_keys=[
            ForeignKey("scl_cart", ("scl_sc_id",), "Shopping_cart"),
            ForeignKey("scl_item", ("scl_i_id",), "Item"),
        ],
    )
    schema = Schema(
        [
            country,
            address,
            customer,
            author,
            item,
            orders,
            order_line,
            cc_xacts,
            shopping_cart,
            shopping_cart_line,
        ]
    )

    # base-table covered indexes the workload requires (the paper assumes
    # the input schema has the necessary base-table indexes, Sec. VI-C)
    schema.add_index(
        "Customer",
        Index(
            "idx_c_uname",
            ("c_uname",),
            tuple(a for a in customer.attribute_names if a != "c_uname"),
        ),
    )
    schema.add_index(
        "Item",
        Index(
            "idx_i_subject",
            ("i_subject",),
            tuple(a for a in item.attribute_names if a != "i_subject"),
        ),
    )
    schema.add_index(
        "Orders",
        Index(
            "idx_o_c_id",
            ("o_c_id",),
            tuple(a for a in orders.attribute_names if a != "o_c_id"),
        ),
    )
    schema.add_index(
        "Order_line",
        Index(
            "idx_ol_i_id",
            ("ol_i_id",),
            tuple(a for a in order_line.attribute_names if a != "ol_i_id"),
        ),
    )
    return schema
