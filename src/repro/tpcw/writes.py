"""The 13 TPC-W write statements (paper Fig. 16).

The multi-row ``DELETE FROM shopping_cart_line WHERE scl_sc_id = ?`` is
excluded from the workload exactly as the paper excludes it (Sec.
IX-D1); W8 deletes a single line by its full key.
"""

from __future__ import annotations

WRITE_STATEMENTS: dict[str, str] = {
    # W1 — insert Orders
    "W1": (
        "INSERT INTO Orders (o_id, o_c_id, o_date, o_sub_total, o_tax, "
        "o_total, o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, "
        "o_status) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
    ),
    # W2 — insert CC_Xacts
    "W2": (
        "INSERT INTO CC_Xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire, "
        "cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
    ),
    # W3 — insert Order_line
    "W3": (
        "INSERT INTO Order_line (ol_o_id, ol_id, ol_i_id, ol_qty, "
        "ol_discount, ol_comments) VALUES (?, ?, ?, ?, ?, ?)"
    ),
    # W4 — insert Customer
    "W4": (
        "INSERT INTO Customer (c_id, c_uname, c_passwd, c_fname, c_lname, "
        "c_addr_id, c_phone, c_email, c_since, c_last_login, c_login, "
        "c_expiration, c_discount, c_balance, c_ytd_pmt, c_birthdate, c_data) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
    ),
    # W5 — insert Address
    "W5": (
        "INSERT INTO Address (addr_id, addr_street1, addr_street2, "
        "addr_city, addr_state, addr_zip, addr_co_id) "
        "VALUES (?, ?, ?, ?, ?, ?, ?)"
    ),
    # W6 — insert Shopping_cart
    "W6": "INSERT INTO Shopping_cart (sc_id, sc_time) VALUES (?, ?)",
    # W7 — insert Shopping_cart_line
    "W7": (
        "INSERT INTO Shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) "
        "VALUES (?, ?, ?)"
    ),
    # W8 — delete Shopping_cart_line (single row)
    "W8": "DELETE FROM Shopping_cart_line WHERE scl_sc_id = ? and scl_i_id = ?",
    # W9 — update Item (admin: stock after order)
    "W9": "UPDATE Item SET i_stock = ? WHERE i_id = ?",
    # W10 — update Item (admin: new price/image)
    "W10": (
        "UPDATE Item SET i_cost = ?, i_pub_date = ?, i_image = ?, "
        "i_thumbnail = ? WHERE i_id = ?"
    ),
    # W11 — update Shopping_cart timestamp
    "W11": "UPDATE Shopping_cart SET sc_time = ? WHERE sc_id = ?",
    # W12 — update Shopping_cart_line quantity
    "W12": (
        "UPDATE Shopping_cart_line SET scl_qty = ? "
        "WHERE scl_sc_id = ? and scl_i_id = ?"
    ),
    # W13 — update Customer (balance/ytd after purchase)
    "W13": (
        "UPDATE Customer SET c_balance = ?, c_ytd_pmt = ?, c_login = ? "
        "WHERE c_id = ?"
    ),
}


def write_statement(write_id: str) -> str:
    return WRITE_STATEMENTS[write_id]
