"""Semantic analysis of SELECT statements against a relational schema.

Resolves FROM-item aliases to relations, classifies WHERE conjuncts into
**join conditions** (column = column across two bindings) and **filters**
(column vs literal/parameter), and determines which join conditions are
key/foreign-key joins — the only kind the Synergy system materializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlError
from repro.relational.schema import ForeignKey, Schema
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    DerivedTable,
    Select,
    TableRef,
)


@dataclass(frozen=True)
class JoinCondition:
    """An equi (or theta) column-column conjunct across two FROM bindings."""

    op: str
    left_binding: str
    left_relation: str | None  # None when the binding is a derived table
    left_attr: str
    right_binding: str
    right_relation: str | None
    right_attr: str

    @property
    def is_equi(self) -> bool:
        return self.op == "="

    def involves(self, binding: str) -> bool:
        return binding in (self.left_binding, self.right_binding)

    def relation_pair(self) -> tuple[str | None, str | None]:
        return (self.left_relation, self.right_relation)

    def attr_pair_for(
        self, relation_a: str, relation_b: str
    ) -> tuple[str, str] | None:
        """Return (attr of a, attr of b) if this condition joins a with b."""
        if self.left_relation == relation_a and self.right_relation == relation_b:
            return (self.left_attr, self.right_attr)
        if self.left_relation == relation_b and self.right_relation == relation_a:
            return (self.right_attr, self.left_attr)
        return None


@dataclass(frozen=True)
class FilterCondition:
    """A single-binding conjunct: ``binding.attr op (literal | ?)``."""

    op: str
    binding: str
    relation: str | None
    attr: str
    value: object  # Literal value or the Param node


@dataclass
class AnalyzedSelect:
    """Result of :func:`analyze_select`."""

    select: Select
    bindings: dict[str, str | None] = field(default_factory=dict)
    """binding name -> relation name (None for derived tables)."""

    joins: list[JoinCondition] = field(default_factory=list)
    filters: list[FilterCondition] = field(default_factory=list)

    def relations(self) -> tuple[str, ...]:
        """Distinct base relations bound in the top-level FROM clause."""
        return tuple(
            dict.fromkeys(r for r in self.bindings.values() if r is not None)
        )

    def equi_joins(self) -> list[JoinCondition]:
        return [j for j in self.joins if j.is_equi]

    def is_equi_join_query(self) -> bool:
        """True when the query has at least one equi-join condition."""
        return any(j.is_equi for j in self.joins)

    def filters_on(self, binding: str) -> list[FilterCondition]:
        return [f for f in self.filters if f.binding == binding]

    def binding_for_relation(self, relation: str) -> list[str]:
        return [b for b, r in self.bindings.items() if r == relation]


def _resolve_column(
    col: ColumnRef,
    bindings: dict[str, str | None],
    schema: Schema | None,
) -> tuple[str, str | None]:
    """Resolve to (binding, relation name). Unqualified columns are matched
    against the bound relations' attribute sets (must be unambiguous)."""
    if col.qualifier is not None:
        if col.qualifier not in bindings:
            raise SqlError(f"unknown table alias {col.qualifier!r} in {col}")
        return col.qualifier, bindings[col.qualifier]
    if schema is None:
        raise SqlError(f"cannot resolve unqualified column {col.name!r} without schema")
    owners = [
        (b, rel)
        for b, rel in bindings.items()
        if rel is not None
        and schema.has_relation(rel)
        and schema.relation(rel).has_attribute(col.name)
    ]
    if len(owners) == 1:
        return owners[0]
    if not owners:
        raise SqlError(f"column {col.name!r} not found in any FROM relation")
    raise SqlError(f"ambiguous column {col.name!r}: {[b for b, _ in owners]}")


def analyze_select(select: Select, schema: Schema | None = None) -> AnalyzedSelect:
    """Bind and classify a SELECT. ``schema`` enables unqualified-column
    resolution and is required for key/FK classification."""
    bindings: dict[str, str | None] = {}
    for item in select.from_items:
        if isinstance(item, TableRef):
            if item.binding in bindings:
                raise SqlError(f"duplicate FROM binding {item.binding!r}")
            bindings[item.binding] = item.name
        elif isinstance(item, DerivedTable):
            if item.binding in bindings:
                raise SqlError(f"duplicate FROM binding {item.binding!r}")
            bindings[item.binding] = None

    result = AnalyzedSelect(select=select, bindings=bindings)

    for cond in select.where:
        pair = cond.column_pair()
        if pair is not None:
            lb, lrel = _resolve_column(pair[0], bindings, schema)
            rb, rrel = _resolve_column(pair[1], bindings, schema)
            if lb == rb:
                # same binding on both sides: a degenerate filter; keep as a
                # filter with the raw condition attached.
                result.filters.append(
                    FilterCondition(cond.op, lb, lrel, pair[0].name, pair[1])
                )
                continue
            result.joins.append(
                JoinCondition(
                    op=cond.op,
                    left_binding=lb,
                    left_relation=lrel,
                    left_attr=pair[0].name,
                    right_binding=rb,
                    right_relation=rrel,
                    right_attr=pair[1].name,
                )
            )
        else:
            col, value = None, None
            if isinstance(cond.left, ColumnRef):
                col, value = cond.left, cond.right
                op = cond.op
            elif isinstance(cond.right, ColumnRef):
                col, value = cond.right, cond.left
                op = _flip_op(cond.op)
            else:
                raise SqlError(f"unsupported condition {cond}")
            b, rel = _resolve_column(col, bindings, schema)
            result.filters.append(FilterCondition(op, b, rel, col.name, value))
    return result


def _flip_op(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)


def matches_fk_edge(
    schema: Schema,
    parent: str,
    child: str,
    fk: ForeignKey,
    joins: list[JoinCondition],
) -> bool:
    """True when ``joins`` contains conjuncts equating every PK attribute of
    ``parent`` with the corresponding attribute of ``child``'s ``fk``.

    This is the test used to *mark* schema-graph edges during view
    selection (Sec. VI-A) and to weight edges in the candidate-view
    generation heuristic (Sec. V-B2)."""
    pk = schema.relation(parent).primary_key
    needed = list(zip(pk, fk.attributes))
    for pk_attr, fk_attr in needed:
        found = False
        for j in joins:
            if not j.is_equi:
                continue
            pair = j.attr_pair_for(parent, child)
            if pair == (pk_attr, fk_attr):
                found = True
                break
        if not found:
            return False
    return True
