"""SQL abstract syntax tree nodes.

The tree is deliberately small: expressions are columns, literals,
parameters, binary comparisons and aggregate function calls; WHERE
clauses are stored as a list of AND-ed conjuncts (the workloads in the
paper are all conjunctive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Union


# ---------------------------------------------------------------- expressions
@dataclass(frozen=True)
class ColumnRef:
    """``qualifier.name`` or bare ``name`` (qualifier None)."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class Param:
    """A ``?`` placeholder; ``index`` is its 0-based position in the text."""

    index: int

    def __str__(self) -> str:
        return "?"


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a projection list."""

    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class BinOp:
    """A binary comparison ``left op right``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    @property
    def is_equi(self) -> bool:
        return self.op == "="

    def column_pair(self) -> tuple[ColumnRef, ColumnRef] | None:
        """Both sides column refs (a potential join condition), else None."""
        if isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef):
            return (self.left, self.right)
        return None


@dataclass(frozen=True)
class FuncCall:
    """Aggregate call: ``SUM(x)``, ``COUNT(*)``, ...; ``star`` for COUNT(*)."""

    name: str
    args: tuple["Expr", ...] = ()
    star: bool = False

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


Expr = Union[ColumnRef, Literal, Param, BinOp, FuncCall, Star]


# ---------------------------------------------------------------- from items
@dataclass(frozen=True)
class TableRef:
    """A base relation (or view) in FROM, with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} as {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class DerivedTable:
    """``(SELECT ...) AS alias`` — used by the TPC-W best-seller queries."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def __str__(self) -> str:
        return f"({self.select}) as {self.alias}"


FromItem = Union[TableRef, DerivedTable]


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} DESC" if self.descending else str(self.expr)


# ---------------------------------------------------------------- statements
@dataclass(frozen=True)
class Select:
    projections: tuple[Expr, ...]
    from_items: tuple[FromItem, ...]
    where: tuple[BinOp, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def __str__(self) -> str:
        from repro.sql.printer import to_sql

        return to_sql(self)

    def iter_table_refs(self) -> Iterator[TableRef]:
        """All base TableRefs, including those inside derived tables."""
        for item in self.from_items:
            if isinstance(item, TableRef):
                yield item
            else:
                yield from item.select.iter_table_refs()

    def referenced_relations(self) -> tuple[str, ...]:
        """Distinct relation names referenced anywhere in the statement."""
        return tuple(dict.fromkeys(t.name for t in self.iter_table_refs()))

    def uses_relation_twice(self) -> bool:
        """True for self-joins (Synergy does not use views for these)."""
        names = [t.name for t in self.iter_table_refs()]
        return len(names) != len(set(names))


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    values: tuple[Expr, ...]

    def __str__(self) -> str:
        from repro.sql.printer import to_sql

        return to_sql(self)


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: tuple[BinOp, ...] = ()

    def __str__(self) -> str:
        from repro.sql.printer import to_sql

        return to_sql(self)


@dataclass(frozen=True)
class Delete:
    table: str
    where: tuple[BinOp, ...] = ()

    def __str__(self) -> str:
        from repro.sql.printer import to_sql

        return to_sql(self)


Statement = Union[Select, Insert, Update, Delete]


def count_params(stmt: Statement) -> int:
    """Number of ``?`` placeholders in the statement."""

    def walk_expr(e: Expr) -> Iterator[Param]:
        if isinstance(e, Param):
            yield e
        elif isinstance(e, BinOp):
            yield from walk_expr(e.left)
            yield from walk_expr(e.right)
        elif isinstance(e, FuncCall):
            for a in e.args:
                yield from walk_expr(a)

    def walk(s: Statement) -> Iterator[Param]:
        if isinstance(s, Select):
            for p in s.projections:
                yield from walk_expr(p)
            for item in s.from_items:
                if isinstance(item, DerivedTable):
                    yield from walk(item.select)
            for c in s.where:
                yield from walk_expr(c)
        elif isinstance(s, Insert):
            for v in s.values:
                yield from walk_expr(v)
        elif isinstance(s, Update):
            for _, v in s.assignments:
                yield from walk_expr(v)
            for c in s.where:
                yield from walk_expr(c)
        elif isinstance(s, Delete):
            for c in s.where:
                yield from walk_expr(c)

    return sum(1 for _ in walk(stmt))
