"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    PARAM = "param"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "AS", "GROUP", "ORDER",
        "BY", "ASC", "DESC", "LIMIT", "INSERT", "INTO", "VALUES", "UPDATE",
        "SET", "DELETE", "NULL", "TRUE", "FALSE",
    }
)

_OPS = ("<>", "<=", ">=", "=", "<", ">")
_PUNCT = "(),.*"


@dataclass(frozen=True)
class Token:
    type: TokType
    text: str
    pos: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad characters."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokType.PARAM, "?", i))
            i += 1
            continue
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            tokens.append(Token(TokType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and sql[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # ``1.`` followed by an identifier is a qualified name, not
                    # a float — only consume the dot when a digit follows.
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            text = sql[i:j]
            ttype = TokType.KEYWORD if text.upper() in KEYWORDS else TokType.IDENT
            tokens.append(Token(ttype, text, i))
            i = j
            continue
        matched_op = next((op for op in _OPS if sql.startswith(op, i)), None)
        if matched_op:
            tokens.append(Token(TokType.OP, matched_op, i))
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokType.EOF, "", n))
    return tokens
