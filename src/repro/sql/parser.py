"""Recursive-descent parser for the SQL subset (see :mod:`repro.sql`)."""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Delete,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    Insert,
    Literal,
    OrderItem,
    Param,
    Select,
    Star,
    Statement,
    TableRef,
    Update,
)
from repro.sql.lexer import Token, TokType, tokenize

AGGREGATE_FUNCS = frozenset({"SUM", "COUNT", "MIN", "MAX", "AVG"})


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -- token helpers ------------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def at_keyword(self, *kws: str) -> bool:
        return self.cur.type is TokType.KEYWORD and self.cur.upper in kws

    def accept_keyword(self, *kws: str) -> bool:
        if self.at_keyword(*kws):
            self.advance()
            return True
        return False

    def expect_keyword(self, kw: str) -> Token:
        if not self.at_keyword(kw):
            raise SqlSyntaxError(f"expected {kw}, got {self.cur.text!r}", self.cur.pos)
        return self.advance()

    def at_punct(self, p: str) -> bool:
        return self.cur.type is TokType.PUNCT and self.cur.text == p

    def accept_punct(self, p: str) -> bool:
        if self.at_punct(p):
            self.advance()
            return True
        return False

    def expect_punct(self, p: str) -> Token:
        if not self.at_punct(p):
            raise SqlSyntaxError(
                f"expected {p!r}, got {self.cur.text!r}", self.cur.pos
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.type is not TokType.IDENT:
            raise SqlSyntaxError(
                f"expected identifier, got {self.cur.text!r}", self.cur.pos
            )
        return self.advance()

    # -- entry --------------------------------------------------------------------
    def parse(self) -> Statement:
        if self.at_keyword("SELECT"):
            stmt: Statement = self.parse_select()
        elif self.at_keyword("INSERT"):
            stmt = self.parse_insert()
        elif self.at_keyword("UPDATE"):
            stmt = self.parse_update()
        elif self.at_keyword("DELETE"):
            stmt = self.parse_delete()
        else:
            raise SqlSyntaxError(
                f"expected a statement, got {self.cur.text!r}", self.cur.pos
            )
        if self.cur.type is not TokType.EOF:
            raise SqlSyntaxError(
                f"trailing input: {self.cur.text!r}", self.cur.pos
            )
        return stmt

    # -- SELECT ---------------------------------------------------------------------
    def parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        projections = [self.parse_projection()]
        while self.accept_punct(","):
            projections.append(self.parse_projection())
        self.expect_keyword("FROM")
        from_items = [self.parse_from_item()]
        while self.accept_punct(","):
            from_items.append(self.parse_from_item())
        where: tuple[BinOp, ...] = ()
        if self.accept_keyword("WHERE"):
            where = tuple(self.parse_conjuncts())
        group_by: tuple[ColumnRef, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            cols = [self.parse_column_ref()]
            while self.accept_punct(","):
                cols.append(self.parse_column_ref())
            group_by = tuple(cols)
        order_by: tuple[OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            items = [self.parse_order_item()]
            while self.accept_punct(","):
                items.append(self.parse_order_item())
            order_by = tuple(items)
        limit: int | None = None
        if self.accept_keyword("LIMIT"):
            tok = self.advance()
            if tok.type is not TokType.NUMBER:
                raise SqlSyntaxError("LIMIT expects a number", tok.pos)
            limit = int(tok.text)
        return Select(
            projections=tuple(projections),
            from_items=tuple(from_items),
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def parse_projection(self) -> Expr:
        if self.at_punct("*"):
            self.advance()
            return Star()
        # alias.* ?
        if (
            self.cur.type is TokType.IDENT
            and self.tokens[self.pos + 1].text == "."
            and self.tokens[self.pos + 2].text == "*"
        ):
            qual = self.advance().text
            self.advance()  # .
            self.advance()  # *
            return Star(qualifier=qual)
        return self.parse_expr()

    def parse_from_item(self) -> FromItem:
        if self.accept_punct("("):
            sub = self.parse_select()
            self.expect_punct(")")
            self.accept_keyword("AS")
            alias = self.expect_ident().text
            return DerivedTable(select=sub, alias=alias)
        name = self.expect_ident().text
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident().text
        elif self.cur.type is TokType.IDENT:
            alias = self.advance().text
        return TableRef(name=name, alias=alias)

    def parse_conjuncts(self) -> list[BinOp]:
        conjuncts = [self.parse_comparison()]
        while self.accept_keyword("AND"):
            conjuncts.append(self.parse_comparison())
        return conjuncts

    def parse_comparison(self) -> BinOp:
        left = self.parse_expr()
        if self.cur.type is not TokType.OP:
            raise SqlSyntaxError(
                f"expected comparison operator, got {self.cur.text!r}", self.cur.pos
            )
        op = self.advance().text
        right = self.parse_expr()
        return BinOp(op=op, left=left, right=right)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        desc = False
        if self.accept_keyword("DESC"):
            desc = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, descending=desc)

    # -- expressions -----------------------------------------------------------------
    def parse_expr(self) -> Expr:
        tok = self.cur
        if tok.type is TokType.PARAM:
            self.advance()
            p = Param(self.param_count)
            self.param_count += 1
            return p
        if tok.type is TokType.NUMBER:
            self.advance()
            text = tok.text
            return Literal(float(text) if "." in text else int(text))
        if tok.type is TokType.STRING:
            self.advance()
            return Literal(tok.text)
        if tok.type is TokType.KEYWORD and tok.upper in ("NULL", "TRUE", "FALSE"):
            self.advance()
            return Literal({"NULL": None, "TRUE": True, "FALSE": False}[tok.upper])
        if tok.type is TokType.IDENT:
            # function call?
            if (
                tok.upper in AGGREGATE_FUNCS
                and self.tokens[self.pos + 1].text == "("
            ):
                self.advance()
                self.expect_punct("(")
                if self.accept_punct("*"):
                    self.expect_punct(")")
                    return FuncCall(name=tok.upper, star=True)
                args = [self.parse_expr()]
                while self.accept_punct(","):
                    args.append(self.parse_expr())
                self.expect_punct(")")
                return FuncCall(name=tok.upper, args=tuple(args))
            return self.parse_column_ref()
        raise SqlSyntaxError(f"unexpected token {tok.text!r}", tok.pos)

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect_ident().text
        if self.accept_punct("."):
            second = self.expect_ident().text
            return ColumnRef(name=second, qualifier=first)
        return ColumnRef(name=first)

    # -- INSERT / UPDATE / DELETE -------------------------------------------------------
    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident().text
        columns: list[str] = []
        if self.accept_punct("("):
            columns.append(self.expect_ident().text)
            while self.accept_punct(","):
                columns.append(self.expect_ident().text)
            self.expect_punct(")")
        self.expect_keyword("VALUES")
        self.expect_punct("(")
        values = [self.parse_expr()]
        while self.accept_punct(","):
            values.append(self.parse_expr())
        self.expect_punct(")")
        return Insert(table=table, columns=tuple(columns), values=tuple(values))

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident().text
        self.expect_keyword("SET")
        assignments: list[tuple[str, Expr]] = []
        while True:
            col = self.expect_ident().text
            if not (self.cur.type is TokType.OP and self.cur.text == "="):
                raise SqlSyntaxError("expected '=' in SET clause", self.cur.pos)
            self.advance()
            assignments.append((col, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where: tuple[BinOp, ...] = ()
        if self.accept_keyword("WHERE"):
            where = tuple(self.parse_conjuncts())
        return Update(table=table, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident().text
        where: tuple[BinOp, ...] = ()
        if self.accept_keyword("WHERE"):
            where = tuple(self.parse_conjuncts())
        return Delete(table=table, where=where)


def parse_statement(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(sql).parse()
