"""Render AST nodes back to SQL text (used by query rewriting and repr)."""

from __future__ import annotations

from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Delete,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    Insert,
    Literal,
    OrderItem,
    Param,
    Select,
    Star,
    Statement,
    TableRef,
    Update,
)


def expr_sql(e: Expr) -> str:
    if isinstance(e, (ColumnRef, Literal, Param, Star, FuncCall, BinOp)):
        return str(e)
    raise TypeError(f"not an expression: {e!r}")  # pragma: no cover


def _from_item_sql(item: FromItem) -> str:
    if isinstance(item, TableRef):
        return str(item)
    if isinstance(item, DerivedTable):
        return f"({to_sql(item.select)}) as {item.alias}"
    raise TypeError(f"not a FROM item: {item!r}")  # pragma: no cover


def to_sql(stmt: Statement) -> str:
    """Serialize a statement AST to SQL text."""
    if isinstance(stmt, Select):
        parts = ["SELECT"]
        if stmt.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(expr_sql(p) for p in stmt.projections))
        parts.append("FROM")
        parts.append(", ".join(_from_item_sql(f) for f in stmt.from_items))
        if stmt.where:
            parts.append("WHERE")
            parts.append(" and ".join(str(c) for c in stmt.where))
        if stmt.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in stmt.group_by))
        if stmt.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in stmt.order_by))
        if stmt.limit is not None:
            parts.append(f"LIMIT {stmt.limit}")
        return " ".join(parts)
    if isinstance(stmt, Insert):
        cols = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
        vals = ", ".join(expr_sql(v) for v in stmt.values)
        return f"INSERT INTO {stmt.table}{cols} VALUES ({vals})"
    if isinstance(stmt, Update):
        sets = ", ".join(f"{c} = {expr_sql(v)}" for c, v in stmt.assignments)
        where = (
            " WHERE " + " and ".join(str(c) for c in stmt.where) if stmt.where else ""
        )
        return f"UPDATE {stmt.table} SET {sets}{where}"
    if isinstance(stmt, Delete):
        where = (
            " WHERE " + " and ".join(str(c) for c in stmt.where) if stmt.where else ""
        )
        return f"DELETE FROM {stmt.table}{where}"
    raise TypeError(f"not a statement: {stmt!r}")  # pragma: no cover
