"""A small SQL front end.

Hand-rolled lexer + recursive-descent parser for the SQL subset both the
paper's workloads and the engines need:

* ``SELECT`` with projections/aggregates, comma-separated FROM items with
  aliases, derived tables (``FROM (SELECT ...) AS t``), conjunctive
  ``WHERE`` with ``= <> < <= > >=`` over columns, literals and ``?``
  parameters, ``GROUP BY``, ``ORDER BY ... [ASC|DESC]``, ``LIMIT``.
* ``INSERT INTO t (cols) VALUES (...)``.
* ``UPDATE t SET c = expr, ... WHERE ...``.
* ``DELETE FROM t WHERE ...``.

The :mod:`repro.sql.analyzer` resolves aliases against a
:class:`~repro.relational.schema.Schema` and extracts the equi-join
graph used by the view-selection machinery.
"""

from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Delete,
    DerivedTable,
    FuncCall,
    Insert,
    Literal,
    OrderItem,
    Param,
    Select,
    Star,
    Statement,
    TableRef,
    Update,
)
from repro.sql.analyzer import AnalyzedSelect, JoinCondition, analyze_select
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql

__all__ = [
    "AnalyzedSelect",
    "BinOp",
    "ColumnRef",
    "Delete",
    "DerivedTable",
    "FuncCall",
    "Insert",
    "JoinCondition",
    "Literal",
    "OrderItem",
    "Param",
    "Select",
    "Star",
    "Statement",
    "TableRef",
    "Update",
    "analyze_select",
    "parse_statement",
    "to_sql",
]
