"""repro — reproduction of the Synergy system (IEEE Cluster 2017).

Public API highlights:

* :class:`repro.synergy.SynergySystem` — the paper's system, end to end.
* :class:`repro.sim.Simulation` — the virtual-time substrate.
* :mod:`repro.systems` — the five evaluated systems behind one interface.
* :mod:`repro.bench` — one experiment runner per table/figure;
  ``python -m repro.bench`` regenerates them all.
"""

from repro.config import ClusterConfig, CostModel, ExperimentConfig
from repro.relational.schema import ForeignKey, Index, Relation, Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.synergy.system import SynergySystem

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "CostModel",
    "ExperimentConfig",
    "ForeignKey",
    "Index",
    "Relation",
    "Schema",
    "Simulation",
    "SynergySystem",
    "Workload",
    "__version__",
]
