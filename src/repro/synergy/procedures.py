"""Write transaction procedures (paper Sec. VIII-B).

Every write acquires exactly one hierarchical lock (on the associated
root row), updates the base table, the applicable views and their
indexes, and releases the lock. Updates follow the 6-step marked
procedure so concurrent scans can detect and restart on dirty rows:

1. acquire the root-key lock; 2. read all rows to update; 3. mark them;
4. issue the updates; 5. un-mark; 6. release the lock.

``on_step`` lets tests interleave concurrent reads between steps, which
is how the read-committed guarantees are exercised deterministically in
a single-threaded simulator.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import UnsupportedStatementError, WorkloadError
from repro.phoenix.writes import WriteExecutor
from repro.relational.schema import Schema
from repro.synergy.locks import LockManager
from repro.synergy.maintenance import ViewMaintainer
from repro.synergy.trees import RootedTree

StepHook = Callable[[str], None]


class WriteProcedures:
    """Lock-wrapped insert/delete/update against base + views."""

    def __init__(
        self,
        schema: Schema,
        trees: dict[str, RootedTree],
        assignment: dict[str, str],
        writer: WriteExecutor,
        maintainer: ViewMaintainer,
        locks: LockManager,
    ) -> None:
        self.schema = schema
        self.trees = trees
        self.assignment = assignment
        self.writer = writer
        self.maintainer = maintainer
        self.locks = locks

    def _charge_view_statements(self, views: list) -> None:
        """Each maintained view executes as its own Phoenix upsert plan
        inside the transaction procedure (client-side driver overhead)."""
        if not views:
            return
        sim = self.writer.client.cluster.sim
        sim.charge(
            sim.cost.phoenix_statement_ms * len(views), "txlayer.view_statements"
        )

    # -- lock-key derivation -----------------------------------------------------------
    def root_of(self, relation: str) -> str | None:
        if relation in self.trees:
            return relation
        return self.assignment.get(relation)

    def derive_root_key(
        self, relation: str, row: dict[str, Any]
    ) -> tuple[str, list[Any]] | None:
        """Walk the tree path upward via FK values; returns (root, root key
        values) or None when the relation is outside every hierarchy.

        Requires reading the intermediate ancestor rows (charged), except
        the root itself — the first tree edge's FK already names its key.
        """
        root = self.root_of(relation)
        if root is None:
            return None
        if relation == root:
            pk = self.schema.relation(root).primary_key
            try:
                return root, [row[a] for a in pk]
            except KeyError as e:
                raise WorkloadError(
                    f"{relation}: missing key attribute {e} for lock derivation"
                ) from None
        path = self.trees[root].path_from_root(relation)
        current = row
        for edge in reversed(path):
            key_values = [current.get(a) for a in edge.fk_attrs]
            if any(v is None for v in key_values):
                return None  # dangling FK: nothing to lock against
            if edge.parent == root:
                return root, key_values
            parent_row = self.writer.read_row(edge.parent, dict(
                zip(self.schema.relation(edge.parent).primary_key, key_values)
            ))
            if parent_row is None:
                return None
            current = parent_row
        raise AssertionError("unreachable")  # pragma: no cover

    # -- procedures ------------------------------------------------------------------
    def insert(
        self, relation: str, row: dict[str, Any], on_step: StepHook | None = None
    ) -> None:
        """Single-row insert into base + applicable views + indexes."""
        step = on_step or (lambda _: None)
        locked = self.derive_root_key(relation, row)
        lock_row = None
        if locked is not None:
            root, key_values = locked
            lock_row = self.locks.acquire(root, key_values)
        step("after_lock")
        try:
            self.writer.insert_row(relation, row)
            step("after_base_write")
            self._charge_view_statements(self.maintainer.views_for_insert(relation))
            self.maintainer.apply_insert(relation, row)
            step("after_view_write")
        finally:
            if locked is not None and lock_row is not None:
                self.locks.release(locked[0], lock_row)
            step("after_release")

    def delete(
        self, relation: str, key: dict[str, Any], on_step: StepHook | None = None
    ) -> bool:
        """Single-row delete; returns False when the row did not exist."""
        step = on_step or (lambda _: None)
        old = self.writer.read_row(relation, key)
        if old is None:
            return False
        locked = self.derive_root_key(relation, old)
        lock_row = None
        if locked is not None:
            lock_row = self.locks.acquire(locked[0], locked[1])
        step("after_lock")
        try:
            self.writer.delete_row(relation, key)
            step("after_base_write")
            self._charge_view_statements(self.maintainer.views_for_delete(relation))
            self.maintainer.apply_delete(relation, key)
            step("after_view_write")
        finally:
            if locked is not None and lock_row is not None:
                self.locks.release(locked[0], lock_row)
            step("after_release")
        return True

    def update(
        self,
        relation: str,
        key: dict[str, Any],
        changes: dict[str, Any],
        on_step: StepHook | None = None,
    ) -> bool:
        """The 6-step marked update procedure; False when row absent."""
        step = on_step or (lambda _: None)
        for attr in changes:
            if attr in self.schema.relation(relation).primary_key:
                raise UnsupportedStatementError(
                    f"{relation}: key attribute {attr!r} cannot be updated"
                )
        old = self.writer.read_row(relation, key)
        if old is None:
            return False
        locked = self.derive_root_key(relation, old)
        lock_row = None
        if locked is not None:
            lock_row = self.locks.acquire(locked[0], locked[1])  # step 1
        step("after_lock")
        try:
            # step 2: read all rows that need to be updated
            views = self.maintainer.views_for_update(relation)
            self._charge_view_statements(views)
            located: list[tuple[Any, list[dict[str, Any]]]] = []
            for view in views:
                rows = self.maintainer.locate_view_rows(view, relation, key)
                located.append((view, rows))
            step("after_read")
            # step 3: mark
            for view, rows in located:
                entry = self.maintainer.view_entry(view)
                self.maintainer.mark_rows(entry, rows, dirty=True)
                for index in self.maintainer.view_index_entries(view):
                    if any(a in index.attrs for a in changes):
                        self.maintainer.mark_rows(index, rows, dirty=True)
            step("after_mark")
            # step 4: issue the updates
            self.writer.update_row(relation, key, changes)
            new_rows_by_view = []
            for view, rows in located:
                new_rows = self.maintainer.write_view_rows(view, rows, changes)
                new_rows_by_view.append((view, new_rows))
            step("after_update")
            # step 5: un-mark
            for view, new_rows in new_rows_by_view:
                entry = self.maintainer.view_entry(view)
                self.maintainer.mark_rows(entry, new_rows, dirty=False)
                for index in self.maintainer.view_index_entries(view):
                    if any(a in index.attrs for a in changes):
                        self.maintainer.mark_rows(index, new_rows, dirty=False)
            step("after_unmark")
        finally:
            if locked is not None and lock_row is not None:
                self.locks.release(locked[0], lock_row)  # step 6
            step("after_release")
        return True
