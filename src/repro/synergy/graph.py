"""Schema graph, DAG reduction and topological ordering (paper Sec. V).

Definitions 1-3: vertices are relations; a directed edge runs from a
relation ``Ri`` to ``Rj`` — represented as a ``(PK, FK)`` tuple — when a
foreign key of ``Rj`` references the primary key of ``Ri`` (parent →
child). Relations may be connected by multiple edges (Employee has both
a home and an office Address FK); the DAG reduction keeps the single
highest-weight edge per ordered pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import ViewSelectionError
from repro.relational.schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.synergy.heuristics import Heuristic


@dataclass(frozen=True)
class GraphEdge:
    """A (PK, FK) edge from ``parent`` to ``child`` (Definition 2)."""

    parent: str
    child: str
    fk_name: str
    pk_attrs: tuple[str, ...]
    fk_attrs: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"{self.parent}->{self.child}"
            f"({','.join(self.pk_attrs)};{','.join(self.fk_attrs)})"
        )


class SchemaGraph:
    """Directed (multi-)graph over a schema's relations."""

    def __init__(self, nodes: tuple[str, ...], edges: tuple[GraphEdge, ...]) -> None:
        self.nodes = nodes
        self.edges = edges
        self._out: dict[str, list[GraphEdge]] = {n: [] for n in nodes}
        self._in: dict[str, list[GraphEdge]] = {n: [] for n in nodes}
        for e in edges:
            self._out[e.parent].append(e)
            self._in[e.child].append(e)

    def out_edges(self, node: str) -> tuple[GraphEdge, ...]:
        return tuple(self._out[node])

    def in_edges(self, node: str) -> tuple[GraphEdge, ...]:
        return tuple(self._in[node])

    def edge_between(self, parent: str, child: str) -> GraphEdge | None:
        for e in self._out[parent]:
            if e.child == child:
                return e
        return None

    # -- DAG reduction (mechanism step 1) -------------------------------------------
    def to_dag(self, heuristic: "Heuristic") -> "SchemaGraph":
        """Keep at most one edge per (parent, child) pair — the edge with
        the maximum heuristic weight (first-declared wins ties)."""
        by_pair: dict[tuple[str, str], list[GraphEdge]] = {}
        for e in self.edges:
            by_pair.setdefault((e.parent, e.child), []).append(e)
        kept: list[GraphEdge] = []
        for pair_edges in by_pair.values():
            best = max(
                enumerate(pair_edges),
                key=lambda ie: (heuristic.edge_weight(ie[1]), -ie[0]),
            )[1]
            kept.append(best)
        # preserve original edge declaration order for determinism
        order = {e: i for i, e in enumerate(self.edges)}
        kept.sort(key=lambda e: order[e])
        dag = SchemaGraph(self.nodes, tuple(kept))
        dag.topological_order()  # raises on cycles
        return dag

    # -- topological ordering (mechanism step 2) ---------------------------------------
    def topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm; ready nodes are taken in declaration order,
        which keeps the whole pipeline deterministic."""
        indeg = {n: len(self._in[n]) for n in self.nodes}
        order: list[str] = []
        ready = [n for n in self.nodes if indeg[n] == 0]
        while ready:
            node = ready.pop(0)
            order.append(node)
            newly = []
            for e in self._out[node]:
                indeg[e.child] -= 1
                if indeg[e.child] == 0:
                    newly.append(e.child)
            # maintain declaration order among ready nodes
            ready = sorted(
                ready + newly, key=lambda n: self.nodes.index(n)
            )
        if len(order) != len(self.nodes):
            cyclic = [n for n in self.nodes if indeg[n] > 0]
            raise ViewSelectionError(
                f"schema graph contains a cycle through {cyclic}; the paper "
                "assumes schemas free of simple and transitive circular "
                "references (Sec. V)"
            )
        return tuple(order)

    # -- path enumeration --------------------------------------------------------------
    def paths(self, source: str, target: str) -> list[tuple[GraphEdge, ...]]:
        """All simple directed paths source -> target (graph must be a DAG
        for this to terminate on all inputs we feed it)."""
        out: list[tuple[GraphEdge, ...]] = []

        def dfs(node: str, acc: list[GraphEdge], seen: set[str]) -> None:
            if node == target:
                if acc:
                    out.append(tuple(acc))
                return
            for e in self._out[node]:
                if e.child in seen:
                    continue
                acc.append(e)
                seen.add(e.child)
                dfs(e.child, acc, seen)
                seen.discard(e.child)
                acc.pop()

        dfs(source, [], {source})
        return out

    def subgraph(self, edges: Iterable[GraphEdge]) -> "SchemaGraph":
        edges = tuple(dict.fromkeys(edges))
        nodes = tuple(
            n
            for n in self.nodes
            if any(n in (e.parent, e.child) for e in edges)
        )
        return SchemaGraph(nodes, edges)


def build_schema_graph(schema: Schema) -> SchemaGraph:
    """Definition 1: an edge parent -> child per foreign-key reference."""
    edges = []
    for parent, child, fk in schema.relationships():
        edges.append(
            GraphEdge(
                parent=parent,
                child=child,
                fk_name=fk.name,
                pk_attrs=tuple(schema.relation(parent).primary_key),
                fk_attrs=tuple(fk.attributes),
            )
        )
    return SchemaGraph(tuple(schema.relation_names), tuple(edges))
