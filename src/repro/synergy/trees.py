"""Root assignment and rooted-tree construction (paper Sec. V-B, steps 3-4).

Step 3 examines non-root relations in **forward** topological order and
assigns each to at most one root by selecting a single root→relation
path (so every relation joins exactly one locking hierarchy). Step 4
walks each rooted graph's relations in **reverse** topological order,
keeping the paths that materialize the most workload joins, yielding a
rooted tree with a unique path from the root to every assigned relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ViewSelectionError
from repro.synergy.graph import GraphEdge, SchemaGraph
from repro.synergy.heuristics import Heuristic


@dataclass
class RootedTree:
    """A root plus one parent edge per assigned relation."""

    root: str
    parent_edges: dict[str, GraphEdge] = field(default_factory=dict)
    """child relation -> its unique incoming tree edge."""

    node_order: tuple[str, ...] = ()
    """All tree nodes (root first), in deterministic order."""

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.node_order

    @property
    def non_root_nodes(self) -> tuple[str, ...]:
        return tuple(n for n in self.node_order if n != self.root)

    @property
    def edges(self) -> tuple[GraphEdge, ...]:
        return tuple(self.parent_edges[n] for n in self.node_order if n != self.root)

    def parent_of(self, node: str) -> str | None:
        e = self.parent_edges.get(node)
        return e.parent if e is not None else None

    def children_of(self, node: str) -> tuple[str, ...]:
        return tuple(
            n for n in self.node_order if self.parent_of(n) == node
        )

    def contains(self, node: str) -> bool:
        return node in self.node_order

    def path_from_root(self, node: str) -> tuple[GraphEdge, ...]:
        """Tree edges from the root down to ``node``."""
        edges: list[GraphEdge] = []
        cur = node
        while cur != self.root:
            e = self.parent_edges.get(cur)
            if e is None:
                raise ViewSelectionError(f"{cur} is not in tree rooted at {self.root}")
            edges.append(e)
            cur = e.parent
        edges.reverse()
        return tuple(edges)

    def path_between(self, ancestor: str, descendant: str) -> tuple[GraphEdge, ...]:
        """Tree edges ancestor -> descendant (ancestor must be on the path)."""
        full = self.path_from_root(descendant)
        if ancestor == self.root:
            return full
        for i, e in enumerate(full):
            if e.parent == ancestor:
                return full[i:]
        raise ViewSelectionError(
            f"{ancestor} is not an ancestor of {descendant} in tree {self.root}"
        )

    def is_leaf(self, node: str) -> bool:
        return not self.children_of(node)

    def describe(self) -> str:
        lines = [self.root]

        def walk(node: str, depth: int) -> None:
            for child in self.children_of(node):
                edge = self.parent_edges[child]
                lines.append(
                    "  " * depth
                    + f"└─ {child}  via ({','.join(edge.pk_attrs)} , "
                    + f"{','.join(edge.fk_attrs)})"
                )
                walk(child, depth + 1)

        walk(self.root, 1)
        return "\n".join(lines)


def _path_relations(root: str, path: Sequence[GraphEdge]) -> list[str]:
    return [root, *[e.child for e in path]]


def assign_relations_to_roots(
    dag: SchemaGraph,
    roots: Sequence[str],
    heuristic: Heuristic,
) -> tuple[dict[str, str], dict[str, list[GraphEdge]]]:
    """Mechanism step 3: (assignment map, rooted graph edge lists).

    Per non-root relation (in topological order): enumerate paths from
    every root, weight them, and take the best path that (a) includes a
    single root and (b) passes only through relations already assigned
    to that root (or unassigned). Ties break toward the root listed
    first in ``roots`` — reproducing the paper's choice of Address over
    Department for Employee in the Company walkthrough.
    """
    for r in roots:
        if r not in dag.nodes:
            raise ViewSelectionError(f"root {r!r} is not a relation in the schema")
    root_set = set(roots)
    assignment: dict[str, str] = {}
    rooted_edges: dict[str, list[GraphEdge]] = {r: [] for r in roots}

    topo = dag.topological_order()
    for rel in topo:
        if rel in root_set:
            continue
        candidates: list[tuple[float, int, int, str, str, tuple[GraphEdge, ...]]] = []
        for root_index, root in enumerate(roots):
            for path in dag.paths(root, rel):
                rels = _path_relations(root, path)
                if any(r in root_set and r != root for r in rels[1:]):
                    continue  # path must include a single root
                if any(
                    assignment.get(r) not in (None, root)
                    for r in rels[1:]
                ):
                    continue  # intermediate owned by another root
                candidates.append(
                    (
                        -heuristic.path_weight(path),
                        root_index,
                        len(path),
                        root,
                        "/".join(rels),
                        path,
                    )
                )
        if not candidates:
            continue  # unassigned (e.g. TPC-W Shopping_cart)
        candidates.sort()
        _, _, _, root, _, path = candidates[0]
        assignment[rel] = root
        for e in path:
            assignment.setdefault(e.child, root)
            if e not in rooted_edges[root]:
                rooted_edges[root].append(e)
    return assignment, rooted_edges


def rooted_graph_to_tree(
    dag: SchemaGraph,
    root: str,
    edges: list[GraphEdge],
    heuristic: Heuristic,
) -> RootedTree:
    """Mechanism step 4: reverse-topological path selection.

    Repeatedly take the *last* unprocessed relation in topological
    order, enumerate root→relation paths inside the rooted graph, keep
    the heaviest one consistent with edges already committed to the
    tree, and strike every relation on it off the list.
    """
    if not edges:
        return RootedTree(root=root, node_order=(root,))
    graph = dag.subgraph(edges)
    sub_topo = [n for n in graph.topological_order() if n != root]
    remaining = list(sub_topo)
    parent_edges: dict[str, GraphEdge] = {}

    while remaining:
        target = remaining[-1]
        candidates = []
        for path in graph.paths(root, target):
            consistent = all(
                parent_edges.get(e.child) in (None, e) for e in path
            )
            if not consistent:
                continue
            candidates.append(
                (
                    -heuristic.path_weight(path),
                    -len(path),
                    "/".join(_path_relations(root, path)),
                    path,
                )
            )
        if not candidates:
            raise ViewSelectionError(
                f"no tree-consistent path from {root} to {target}; "
                "rooted graph cannot be reduced to a tree"
            )
        candidates.sort()
        path = candidates[0][3]
        for e in path:
            parent_edges.setdefault(e.child, e)
        covered = set(_path_relations(root, path)[1:])
        remaining = [r for r in remaining if r not in covered]

    node_order = [root] + [n for n in sub_topo if n in parent_edges]
    return RootedTree(
        root=root, parent_edges=parent_edges, node_order=tuple(node_order)
    )


def generate_rooted_trees(
    schema_graph: SchemaGraph,
    roots: Sequence[str],
    heuristic: Heuristic,
) -> tuple[dict[str, RootedTree], dict[str, str]]:
    """The full candidate-views generation mechanism (Sec. V-B).

    Returns ``(trees by root, relation -> root assignment)``. Relations
    without a valid path from any root stay unassigned and never
    participate in views (or locking hierarchies).
    """
    dag = schema_graph.to_dag(heuristic)
    assignment, rooted_edges = assign_relations_to_roots(dag, roots, heuristic)
    trees = {
        root: rooted_graph_to_tree(dag, root, rooted_edges[root], heuristic)
        for root in roots
    }
    return trees, assignment
