"""Query re-writing over selected views (paper Sec. VI-B, Fig. 6(d)).

To re-write a query we replace the constituent relations of each
selected view with the view, and drop join conditions whose two
relations both fall inside a single view. Column references move to the
view's binding (view attributes keep their original names, which are
globally unique across a path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ViewSelectionError
from repro.relational.schema import Schema
from repro.sql.analyzer import analyze_select
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    DerivedTable,
    Expr,
    FromItem,
    FuncCall,
    OrderItem,
    Select,
    Star,
    TableRef,
)
from repro.synergy.views import ViewDef


@dataclass
class RewriteResult:
    select: Select
    views_used: tuple[ViewDef, ...]
    binding_map: dict[str, str]
    """old FROM binding -> new binding (view alias or unchanged)."""


def rewrite_query(
    select: Select,
    schema: Schema,
    views: list[ViewDef],
) -> RewriteResult:
    """Rewrite ``select`` using ``views`` (the per-query selection)."""
    if not views:
        return RewriteResult(select, (), {})
    if select.uses_relation_twice():
        raise ViewSelectionError(
            "self-join queries are answered from base tables in Synergy"
        )
    analyzed = analyze_select(select, schema)

    # relation name -> its (unique) binding in this query
    rel_binding: dict[str, str] = {}
    for binding, rel in analyzed.bindings.items():
        if rel is not None:
            rel_binding[rel] = binding

    # old binding -> (view, view alias)
    binding_to_view: dict[str, tuple[ViewDef, str]] = {}
    view_aliases: dict[str, str] = {}
    for i, view in enumerate(views):
        alias = f"v{i}"
        view_aliases[view.name] = alias
        for rel in view.relations:
            b = rel_binding.get(rel)
            if b is None:
                raise ViewSelectionError(
                    f"view {view.display_name} covers relation {rel} "
                    "that the query does not reference"
                )
            if b in binding_to_view:
                raise ViewSelectionError(
                    f"relation {rel} covered by two selected views"
                )
            binding_to_view[b] = (view, alias)

    def new_binding(old: str) -> str:
        hit = binding_to_view.get(old)
        return hit[1] if hit is not None else old

    def rewrite_expr(e: Expr) -> Expr:
        if isinstance(e, ColumnRef):
            if e.qualifier is not None:
                return ColumnRef(e.name, new_binding(e.qualifier))
            return e
        if isinstance(e, FuncCall):
            return FuncCall(e.name, tuple(rewrite_expr(a) for a in e.args), e.star)
        return e

    # FROM: one TableRef per view (in first-coverage order) + untouched items
    new_from: list[FromItem] = []
    seen_views: set[str] = set()
    for item in select.from_items:
        if isinstance(item, TableRef) and item.binding in binding_to_view:
            view, alias = binding_to_view[item.binding]
            if view.name not in seen_views:
                seen_views.add(view.name)
                new_from.append(TableRef(view.name, alias))
        elif isinstance(item, DerivedTable):
            new_from.append(item)
        else:
            new_from.append(item)

    # WHERE: drop conjuncts internal to one view; re-qualify the rest
    new_where: list[BinOp] = []
    for cond in select.where:
        pair = cond.column_pair()
        if pair is not None and cond.op == "=":
            lq, rq = pair[0].qualifier, pair[1].qualifier
            if (
                lq is not None
                and rq is not None
                and lq in binding_to_view
                and rq in binding_to_view
                and binding_to_view[lq][1] == binding_to_view[rq][1]
            ):
                continue  # both sides inside the same view
        new_where.append(
            BinOp(cond.op, rewrite_expr(cond.left), rewrite_expr(cond.right))
        )

    # projections: SELECT * stays; alias.* expands only if the alias moved
    new_proj: list[Expr] = []
    for p in select.projections:
        if isinstance(p, Star):
            if p.qualifier is None or p.qualifier not in binding_to_view:
                new_proj.append(p)
            else:
                # expand to the original relation's columns on the view
                rel = analyzed.bindings[p.qualifier]
                assert rel is not None
                alias = binding_to_view[p.qualifier][1]
                for attr in schema.relation(rel).attribute_names:
                    new_proj.append(ColumnRef(attr, alias))
        else:
            new_proj.append(rewrite_expr(p))

    new_select = Select(
        projections=tuple(new_proj),
        from_items=tuple(new_from),
        where=tuple(new_where),
        group_by=tuple(
            rewrite_expr(g) for g in select.group_by  # type: ignore[misc]
        ),
        order_by=tuple(
            OrderItem(rewrite_expr(o.expr), o.descending) for o in select.order_by
        ),
        limit=select.limit,
        distinct=select.distinct,
    )
    binding_map = {b: new_binding(b) for b in analyzed.bindings}
    return RewriteResult(new_select, tuple(views), binding_map)
