"""Candidate-selection heuristics (paper Sec. V-B2).

The paper uses "the number of overlapping joins" as a simple
workload-aware weight: an edge scores the (frequency-weighted) number of
workload queries whose join conditions equate the edge's PK attributes
with its FK attributes. Path weight is the sum of its edge weights.
Other heuristics plug in through the same two-method interface.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sql.analyzer import JoinCondition, analyze_select
from repro.sql.ast import Select
from repro.synergy.graph import GraphEdge


class Heuristic(Protocol):  # pragma: no cover - structural type
    def edge_weight(self, edge: GraphEdge) -> float: ...

    def path_weight(self, path: Iterable[GraphEdge]) -> float: ...


def joins_match_edge(
    edge: GraphEdge, joins: list[JoinCondition]
) -> bool:
    """True when ``joins`` equate every (PK, FK) attribute pair of the edge."""
    for pk_attr, fk_attr in zip(edge.pk_attrs, edge.fk_attrs):
        found = False
        for j in joins:
            if not j.is_equi:
                continue
            pair = j.attr_pair_for(edge.parent, edge.child)
            if pair == (pk_attr, fk_attr):
                found = True
                break
        if not found:
            return False
    return True


class JoinOverlapHeuristic:
    """Edge weight = frequency-weighted count of workload queries whose
    equi-join conditions cover the edge."""

    def __init__(self, schema: Schema, workload: Workload) -> None:
        self.schema = schema
        self._query_joins: list[tuple[float, list[JoinCondition]]] = []
        for stmt in workload:
            parsed = stmt.parsed
            if not isinstance(parsed, Select):
                continue
            if parsed.uses_relation_twice():
                continue  # self-joins never materialize (Sec. VIII-C)
            analyzed = analyze_select(parsed, schema)
            if analyzed.equi_joins():
                self._query_joins.append((stmt.frequency, analyzed.equi_joins()))

    def edge_weight(self, edge: GraphEdge) -> float:
        total = 0.0
        for freq, joins in self._query_joins:
            if joins_match_edge(edge, joins):
                total += freq
        return total

    def path_weight(self, path: Iterable[GraphEdge]) -> float:
        return sum(self.edge_weight(e) for e in path)


class UniformHeuristic:
    """Workload-oblivious fallback: every edge weighs 1 (ablation use)."""

    def edge_weight(self, edge: GraphEdge) -> float:
        return 1.0

    def path_weight(self, path: Iterable[GraphEdge]) -> float:
        return sum(1.0 for _ in path)
