"""View-index recommendation (paper Sec. VI-C and VII-C).

Two sources of view-indexes:

* **Read indexes** (Sec. VI-C): for each conjunctive query that uses a
  view, if the query only filters on view attributes that neither the
  view key nor an existing view-index key prefix covers, add a
  view-index indexed upon one of the filter attributes.
* **Maintenance indexes** (Sec. VII-C): an UPDATE against a relation
  ``R`` that is *not* the last relation of a view ``V`` must find V's
  rows by ``PK(R)``; we index ``V`` on ``PK(R)`` so the 6-step update
  procedure can locate them without scanning the view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sql.ast import ColumnRef, Update
from repro.synergy.rewrite import RewriteResult
from repro.synergy.views import ViewDef


@dataclass(frozen=True)
class ViewIndexSpec:
    view: ViewDef
    indexed_on: tuple[str, ...]
    reason: str  # "read" | "maintenance"

    @property
    def name(self) -> str:
        return f"{self.view.name}.ix_{'_'.join(self.indexed_on)}"


@dataclass
class ViewIndexPlan:
    specs: list[ViewIndexSpec] = field(default_factory=list)

    def add(self, spec: ViewIndexSpec) -> bool:
        if any(
            s.view.relations == spec.view.relations
            and s.indexed_on == spec.indexed_on
            for s in self.specs
        ):
            return False
        self.specs.append(spec)
        return True

    def for_view(self, view: ViewDef) -> list[ViewIndexSpec]:
        return [s for s in self.specs if s.view.relations == view.relations]


def _prefix_covered(filter_attrs: set[str], key_attrs: tuple[str, ...]) -> bool:
    """True when the access key's *leading* attribute is a filter attr,
    i.e. the existing key already serves these filters."""
    return bool(key_attrs) and key_attrs[0] in filter_attrs


def recommend_read_indexes(
    schema: Schema,
    rewritten: dict[str, RewriteResult],
    plan: ViewIndexPlan,
) -> None:
    """Sec. VI-C: one view-index per (view, uncovered filter set)."""
    for result in rewritten.values():
        if not result.views_used:
            continue
        select = result.select
        alias_to_view = {
            f"v{i}": view for i, view in enumerate(result.views_used)
        }
        # gather constant filters per view alias
        filters: dict[str, set[str]] = {}
        for cond in select.where:
            pair = cond.column_pair()
            if pair is not None:
                continue  # join condition between views/relations
            col = cond.left if isinstance(cond.left, ColumnRef) else cond.right
            if not isinstance(col, ColumnRef):
                continue
            if col.qualifier in alias_to_view:
                filters.setdefault(col.qualifier, set()).add(col.name)
        for alias, attrs in filters.items():
            view = alias_to_view[alias]
            key = view.key_attrs(schema)
            if _prefix_covered(attrs, key):
                continue
            existing = [
                s.indexed_on
                for s in plan.for_view(view)
            ]
            if any(_prefix_covered(attrs, k) for k in existing):
                continue
            # index upon one filter attribute (deterministic choice)
            attr = sorted(attrs)[0]
            plan.add(ViewIndexSpec(view=view, indexed_on=(attr,), reason="read"))


def recommend_maintenance_indexes(
    schema: Schema,
    views: list[ViewDef],
    write_workload: Workload,
    plan: ViewIndexPlan,
) -> None:
    """Sec. VII-C: support multi-row view updates by PK of the updated
    relation when it sits mid-path in a view."""
    updated_relations: set[str] = set()
    for stmt in write_workload:
        parsed = stmt.parsed
        if isinstance(parsed, Update):
            updated_relations.add(parsed.table)
    for view in views:
        for rel_name in view.relations[:-1]:
            if rel_name not in updated_relations:
                continue
            pk = tuple(schema.relation(rel_name).primary_key)
            key = view.key_attrs(schema)
            if key[: len(pk)] == pk:
                continue  # view key already starts with this PK
            plan.add(
                ViewIndexSpec(view=view, indexed_on=pk, reason="maintenance")
            )
