"""SynergySystem façade: build + run the whole paper pipeline (Fig. 3).

Input: relational schema + workload + roots set. Output: a running
system with materialized views, view-indexes, lock tables and the
transaction layer, exposing ``execute`` (reads via rewritten queries
against views, writes via the lock-based transaction layer) and the
bookkeeping the experiments need (sizes, trees, selected views).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.phoenix.catalog import Catalog
from repro.phoenix.ddl import (
    create_baseline_schema,
    create_view_entry,
    create_view_index_entry,
)
from repro.phoenix.executor import PhoenixConnection
from repro.phoenix.writes import WriteExecutor
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.sql.ast import Select
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql
from repro.synergy.graph import build_schema_graph
from repro.synergy.heuristics import Heuristic, JoinOverlapHeuristic
from repro.synergy.locks import LockManager
from repro.synergy.maintenance import ViewMaintainer
from repro.synergy.procedures import StepHook, WriteProcedures
from repro.synergy.rewrite import RewriteResult, rewrite_query
from repro.synergy.selection import SelectionResult, select_views, select_views_for_query
from repro.synergy.trees import RootedTree, generate_rooted_trees
from repro.synergy.txlayer import PlanGenerator, SynergyTransactionLayer
from repro.synergy.view_indexes import (
    ViewIndexPlan,
    recommend_maintenance_indexes,
    recommend_read_indexes,
)
from repro.synergy.views import ViewDef, candidate_views_for_trees


class SynergySystem:
    """A fully wired Synergy deployment over the simulated cluster."""

    def __init__(
        self,
        schema: Schema,
        workload: Workload,
        roots: Sequence[str],
        sim: Simulation | None = None,
        cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
        heuristic: Heuristic | None = None,
        num_tx_slaves: int = 1,
        query_engine: str = "legacy",
        cost_based_planner: bool = False,
    ) -> None:
        self.schema = schema
        self.workload = workload
        self.roots = tuple(roots)
        self.sim = sim or Simulation(cost=cluster_config.cost)
        self.cluster = HBaseCluster(self.sim, cluster_config)
        self.client = HBaseClient(self.cluster)

        # 1. baseline transformation (Sec. II-D)
        self.catalog: Catalog = create_baseline_schema(self.client, schema)

        # 2. candidate views generation (Sec. V)
        self.graph = build_schema_graph(schema)
        self.heuristic = heuristic or JoinOverlapHeuristic(schema, workload)
        self.trees, self.assignment = generate_rooted_trees(
            self.graph, self.roots, self.heuristic
        )
        self.candidates = candidate_views_for_trees(self.trees)

        # 3. views selection + query re-writing (Sec. VI)
        self.selection: SelectionResult = select_views(
            workload, schema, self.trees, self.heuristic
        )
        self.views: list[ViewDef] = list(self.selection.final_views)
        for view in self.views:
            create_view_entry(self.client, self.catalog, view.name, view.relations)

        self.rewritten: dict[str, RewriteResult] = {}
        for stmt in workload:
            parsed = stmt.parsed
            if isinstance(parsed, Select):
                views = self.selection.per_query.get(stmt.statement_id, [])
                self.rewritten[stmt.statement_id] = rewrite_query(
                    parsed, schema, views
                )

        # 4. view-indexes (Sec. VI-C read indexes + Sec. VII-C maintenance)
        self.view_index_plan = ViewIndexPlan()
        recommend_read_indexes(schema, self.rewritten, self.view_index_plan)
        recommend_maintenance_indexes(
            schema, self.views, workload.writes(), self.view_index_plan
        )
        for spec in self.view_index_plan.specs:
            create_view_index_entry(
                self.client,
                self.catalog,
                self.catalog.view(spec.view.name),
                spec.indexed_on,
                name=spec.name,
                covered=(spec.reason == "read"),
            )

        # 5. concurrency control + transaction layer (Sec. VIII)
        self.locks = LockManager(
            self.client,
            {
                root: tuple(
                    schema.relation(root).dtype_of(a)
                    for a in schema.relation(root).primary_key
                )
                for root in self.roots
            },
        )
        self.locks.create_lock_tables()
        self.writer = WriteExecutor(self.client, self.catalog)
        self.maintainer = ViewMaintainer(self.client, self.catalog, self.views)
        self.procedures = WriteProcedures(
            schema, self.trees, self.assignment, self.writer,
            self.maintainer, self.locks,
        )
        self.plan_generator = PlanGenerator(self.catalog)
        self.txlayer = SynergyTransactionLayer(
            self.sim, self.plan_generator, self.procedures, num_tx_slaves
        )
        # reads: Phoenix with dirty-row restart, *no* MVCC (Tephra disabled)
        self.conn = PhoenixConnection(
            self.client, self.catalog, dirty_check_views=True,
            mvcc_version_check=False,
            engine=query_engine, cost_based=cost_based_planner,
        )

        # executable statement text per workload id
        self.statements: dict[str, str] = {}
        for stmt in workload:
            if stmt.statement_id in self.rewritten:
                self.statements[stmt.statement_id] = to_sql(
                    self.rewritten[stmt.statement_id].select
                )
            else:
                self.statements[stmt.statement_id] = stmt.sql

    # -- data loading ------------------------------------------------------------------
    def load_row(self, relation: str, row: dict[str, Any]) -> None:
        """Bulk-load one row: base table + indexes + applicable views,
        plus the lock-table entry for root relations. Load parents before
        children so view tuples can be constructed."""
        self.writer.insert_row(relation, row)
        self.maintainer.apply_insert(relation, row)
        if relation in self.trees:
            pk = self.schema.relation(relation).primary_key
            self.locks.register_root_row(relation, [row[a] for a in pk])

    def load_rows(self, relation: str, rows: Sequence[dict[str, Any]]) -> int:
        for row in rows:
            self.load_row(relation, row)
        return len(rows)

    def finish_load(self) -> None:
        """Major-compact everything (the paper compacts after population)."""
        self.cluster.major_compact()
        self.conn.analyze()
        self.sim.reset_clock()

    # -- execution ----------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: tuple[Any, ...] = (),
        on_step: StepHook | None = None,
    ) -> Any:
        stmt = parse_statement(sql)
        if isinstance(stmt, Select):
            return self.conn.execute_query(stmt, params)
        return self.txlayer.execute_write(sql, params, on_step)

    def execute_id(self, statement_id: str, params: tuple[Any, ...] = ()) -> Any:
        return self.execute(self.statements[statement_id], params)

    def timed(self, sql: str, params: tuple[Any, ...] = ()) -> tuple[Any, float]:
        """(result, response time in virtual ms) — the paper's tau."""
        sw = self.sim.stopwatch()
        result = self.execute(sql, params)
        return result, sw.stop()

    def rewrite_ad_hoc(self, sql: str) -> str:
        """Rewrite a query not in the design-time workload, using only the
        views that were actually materialized."""
        parsed = parse_statement(sql)
        if not isinstance(parsed, Select):
            return sql
        selected = select_views_for_query(
            parsed, self.schema, self.trees, self.heuristic
        )
        available = {v.relations for v in self.views}
        usable = [v for v in selected if v.relations in available]
        return to_sql(rewrite_query(parsed, self.schema, usable).select)

    # -- bookkeeping ----------------------------------------------------------------------
    def db_size_bytes(self) -> int:
        return self.cluster.total_size_bytes()

    def describe(self) -> str:
        lines = [f"Synergy system — roots {self.roots}"]
        for root, tree in self.trees.items():
            lines.append(tree.describe())
        lines.append("selected views:")
        for v in self.views:
            lines.append(f"  {v.display_name}")
        lines.append("view-indexes:")
        for s in self.view_index_plan.specs:
            lines.append(f"  {s.name} [{s.reason}]")
        return "\n".join(lines)
