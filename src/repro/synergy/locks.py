"""Hierarchical locking via HBase lock tables (paper Sec. VIII-A).

One lock table per root relation; the lock-table key mirrors the root
relation's key and carries a single boolean column. A write to any
relation in a rooted tree acquires exactly one lock — on the key of the
associated root row — through HBase ``checkAndPut``.

The stand-alone :class:`LockBatch` reproduces the Fig. 11 overhead
experiment: acquire/release N row locks from a cold client.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import LockTimeoutError
from repro.hbase.client import HBaseClient
from repro.hbase.ops import Put
from repro.phoenix.catalog import CF
from repro.relational.datatypes import DataType
from repro.hbase.bytes_util import encode_key

LOCK_FREE = b"\x00"
LOCK_HELD = b"\x01"
LOCK_QUALIFIER = b"lock"


def lock_table_name(root: str) -> str:
    return f"LOCK_{root}"


class LockManager:
    """Acquire/release root-row locks through the lock tables."""

    def __init__(
        self,
        client: HBaseClient,
        root_key_dtypes: dict[str, Sequence[DataType]],
        max_attempts: int = 64,
    ) -> None:
        self.client = client
        self.root_key_dtypes = dict(root_key_dtypes)
        self.max_attempts = max_attempts

    def create_lock_tables(self) -> None:
        for root in self.root_key_dtypes:
            name = lock_table_name(root)
            if not self.client.has_table(name):
                self.client.create_table(name, families=(CF,))

    def _encode(self, root: str, key_values: Sequence[Any]) -> bytes:
        return encode_key(self.root_key_dtypes[root], key_values)

    def register_root_row(self, root: str, key_values: Sequence[Any]) -> None:
        """Called when a tuple is inserted into the root relation: create
        the lock-table entry in the free state."""
        table = self.client.table(lock_table_name(root))
        put = Put(self._encode(root, key_values))
        put.add(CF, LOCK_QUALIFIER, LOCK_FREE)
        table.put(put)

    def acquire(self, root: str, key_values: Sequence[Any]) -> bytes:
        """Grab the root-row lock; returns the lock-table row key.

        Under a multi-client scheduled run the acquisition is also
        checked against the other virtual clients' recorded holds: if
        another client's hold is not yet released,
        :class:`~repro.errors.LockWaitRequired` is raised *before* any
        lock-table state changes, and the transaction runner blocks
        (charges the wait until the release point) and retries —
        conservative FCFS in execution order, since the holder's store
        mutations have already happened.
        """
        table = self.client.table(lock_table_name(root))
        row = self._encode(root, key_values)
        sim = self.client.cluster.sim
        ctx = sim.concurrency
        if ctx is not None:
            ctx.lock_check((root, row), sim.clock.now_ms)
        put = Put(row)
        put.add(CF, LOCK_QUALIFIER, LOCK_HELD)
        for _ in range(self.max_attempts):
            if table.check_and_put(row, CF, LOCK_QUALIFIER, LOCK_FREE, put):
                if ctx is not None:
                    ctx.lock_record((root, row))
                return row
            # entry may not exist yet (root row inserted in this txn)
            if table.check_and_put(row, CF, LOCK_QUALIFIER, None, put):
                if ctx is not None:
                    ctx.lock_record((root, row))
                return row
        raise LockTimeoutError(
            f"could not acquire lock on {root} key {list(key_values)!r} "
            f"after {self.max_attempts} attempts"
        )

    def release(self, root: str, row: bytes) -> None:
        table = self.client.table(lock_table_name(root))
        put = Put(row)
        put.add(CF, LOCK_QUALIFIER, LOCK_FREE)
        table.put(put)
        sim = self.client.cluster.sim
        ctx = sim.concurrency
        if ctx is not None:
            # close the hold interval *after* the release put's charges,
            # so the interval covers the whole critical section
            ctx.lock_release((root, row), sim.clock.now_ms)

    def is_held(self, root: str, key_values: Sequence[Any]) -> bool:
        from repro.hbase.ops import Get

        table = self.client.table(lock_table_name(root))
        result = table.get(Get(self._encode(root, key_values)))
        return (
            result is not None
            and result.value(CF, LOCK_QUALIFIER) == LOCK_HELD
        )


class LockBatch:
    """The Fig. 11 micro-experiment: acquire+release N independent row
    locks from a fresh client (cold connection => fixed setup cost)."""

    def __init__(self, client: HBaseClient, table_name: str = "LOCK_BENCH") -> None:
        self.client = client
        self.table_name = table_name
        if not client.has_table(table_name):
            client.create_table(table_name, families=(CF,))

    def run(self, num_locks: int) -> float:
        """Acquire and release ``num_locks`` locks; returns elapsed
        virtual milliseconds (the paper's 'overhead')."""
        sim = self.client.cluster.sim
        table = self.client.table(self.table_name)
        sw = sim.stopwatch()
        sim.charge(sim.cost.lock_client_setup_ms, "lock.client_setup")
        for i in range(num_locks):
            row = f"lk{i:09d}".encode()
            put = Put(row)
            put.add(CF, LOCK_QUALIFIER, LOCK_HELD)
            acquired = table.check_and_put(row, CF, LOCK_QUALIFIER, None, put) or (
                table.check_and_put(row, CF, LOCK_QUALIFIER, LOCK_FREE, put)
            )
            assert acquired, "benchmark lock unexpectedly contended"
        for i in range(num_locks):
            row = f"lk{i:09d}".encode()
            free = Put(row)
            free.add(CF, LOCK_QUALIFIER, LOCK_FREE)
            table.put(free)
        return sw.stop()
