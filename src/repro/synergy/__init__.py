"""The Synergy system — the paper's primary contribution.

Pipeline (paper Fig. 3):

1. baseline transformation of the relational schema/workload
   (:mod:`repro.phoenix.ddl`);
2. **candidate views generation** (Sec. V): schema graph -> DAG ->
   topological order -> root assignment -> rooted trees; every downward
   tree path is a candidate view (:mod:`repro.synergy.graph`,
   :mod:`repro.synergy.trees`, :mod:`repro.synergy.views`);
3. **views selection** per equi-join query by edge marking
   (:mod:`repro.synergy.selection`), **query rewriting** over selected
   views (:mod:`repro.synergy.rewrite`) and **view-index addition**
   (:mod:`repro.synergy.view_indexes`) (Sec. VI);
4. **view maintenance** (Sec. VII) and the **transaction layer** with
   hierarchical single-lock concurrency control, WAL and dirty-read
   marking (Sec. VIII) (:mod:`repro.synergy.maintenance`,
   :mod:`repro.synergy.locks`, :mod:`repro.synergy.txlayer`);
5. the :class:`repro.synergy.system.SynergySystem` façade ties it all
   together.
"""

from repro.synergy.graph import GraphEdge, SchemaGraph, build_schema_graph
from repro.synergy.heuristics import JoinOverlapHeuristic
from repro.synergy.trees import RootedTree, generate_rooted_trees
from repro.synergy.views import ViewDef, candidate_views
from repro.synergy.selection import select_views_for_query, select_views
from repro.synergy.rewrite import rewrite_query
from repro.synergy.system import SynergySystem

__all__ = [
    "GraphEdge",
    "JoinOverlapHeuristic",
    "RootedTree",
    "SchemaGraph",
    "SynergySystem",
    "ViewDef",
    "build_schema_graph",
    "candidate_views",
    "generate_rooted_trees",
    "rewrite_query",
    "select_views",
    "select_views_for_query",
]
