"""Workload-driven views selection (paper Sec. VI-A).

Per equi-join query: mark every rooted-tree edge whose (PK, FK) pair is
equated by the query (and the relations on those edges); then repeatedly
choose a path that

1. consists solely of marked nodes and edges, and
2. starts at a marked node with no incoming marked edge and ends at a
   leaf or at a node with no outgoing marked edge,

select it as a view, un-mark its relations and their outgoing edges, and
continue until no path can be chosen. Ties between maximal paths break
toward the one materializing more (workload-weighted) joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sql.analyzer import analyze_select
from repro.sql.ast import Select
from repro.synergy.graph import GraphEdge
from repro.synergy.heuristics import Heuristic, joins_match_edge
from repro.synergy.trees import RootedTree
from repro.synergy.views import ViewDef


@dataclass
class SelectionResult:
    """Selected views per statement id, plus the final de-duplicated set."""

    per_query: dict[str, list[ViewDef]] = field(default_factory=dict)
    final_views: list[ViewDef] = field(default_factory=list)

    def add(self, statement_id: str, views: list[ViewDef]) -> None:
        self.per_query[statement_id] = views
        for v in views:
            if all(v.relations != w.relations for w in self.final_views):
                self.final_views.append(v)


def select_views_for_query(
    select: Select,
    schema: Schema,
    trees: dict[str, RootedTree],
    heuristic: Heuristic,
) -> list[ViewDef]:
    """Run the marking algorithm for one query across all rooted trees."""
    if select.uses_relation_twice():
        return []  # Synergy answers self-joins from base tables (Sec. VIII-C)
    analyzed = analyze_select(select, schema)
    joins = analyzed.equi_joins()
    if not joins:
        return []

    selected: list[ViewDef] = []
    for root in trees:
        tree = trees[root]
        marked_edges = {
            e for e in tree.edges if joins_match_edge(e, joins)
        }
        if not marked_edges:
            continue
        marked_rels = set()
        for e in marked_edges:
            marked_rels.add(e.parent)
            marked_rels.add(e.child)

        while True:
            path = _choose_path(tree, marked_rels, marked_edges, heuristic)
            if path is None:
                break
            rels = [path[0].parent, *[e.child for e in path]]
            selected.append(
                ViewDef(relations=tuple(rels), edges=tuple(path), root=root)
            )
            # un-mark participating relations and their outgoing edges
            for r in rels:
                marked_rels.discard(r)
                for e in list(marked_edges):
                    if e.parent == r:
                        marked_edges.discard(e)
    return selected


def _choose_path(
    tree: RootedTree,
    marked_rels: set[str],
    marked_edges: set[GraphEdge],
    heuristic: Heuristic,
) -> tuple[GraphEdge, ...] | None:
    """One iteration of the path-selection loop; None when exhausted."""
    starts = []
    for rel in marked_rels:
        incoming = tree.parent_edges.get(rel)
        if incoming is not None and incoming in marked_edges:
            continue
        # must have at least one outgoing marked edge to form a path
        if any(e.parent == rel for e in marked_edges):
            starts.append(rel)
    candidates: list[tuple[float, int, str, tuple[GraphEdge, ...]]] = []
    for start in sorted(starts):
        for path in _maximal_marked_paths(tree, start, marked_rels, marked_edges):
            candidates.append(
                (
                    -heuristic.path_weight(path),
                    -len(path),
                    "/".join(e.child for e in path),
                    path,
                )
            )
    if not candidates:
        return None
    candidates.sort()
    return candidates[0][3]


def _maximal_marked_paths(
    tree: RootedTree,
    start: str,
    marked_rels: set[str],
    marked_edges: set[GraphEdge],
) -> list[tuple[GraphEdge, ...]]:
    """All downward paths from ``start`` over marked nodes/edges that end
    at a node with no outgoing marked edge (rule 2)."""
    out: list[tuple[GraphEdge, ...]] = []

    def walk(node: str, acc: list[GraphEdge]) -> None:
        next_edges = [
            e
            for e in marked_edges
            if e.parent == node and e.child in marked_rels
        ]
        if not next_edges:
            if acc:
                out.append(tuple(acc))
            return
        for e in sorted(next_edges, key=lambda e: e.child):
            acc.append(e)
            walk(e.child, acc)
            acc.pop()

    walk(start, [])
    return out


def select_views(
    workload: Workload,
    schema: Schema,
    trees: dict[str, RootedTree],
    heuristic: Heuristic,
) -> SelectionResult:
    """Iterate the read workload; the final view set is the union of the
    per-query selections (Sec. VI-A, 'Final View Set')."""
    result = SelectionResult()
    for stmt in workload:
        parsed = stmt.parsed
        if not isinstance(parsed, Select):
            continue
        views = select_views_for_query(parsed, schema, trees, heuristic)
        result.add(stmt.statement_id, views)
    return result
