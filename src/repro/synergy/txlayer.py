"""The Synergy Transaction layer (paper Sec. VIII, Fig. 7).

A distributed, fault-tolerant layer of one master and N slaves. Clients
send write requests to a slave's transaction manager, which assigns a
transaction id, appends the statement to its WAL (stored 'in HDFS'),
executes the write procedure through the Phoenix API, and responds. The
master detects slave failures and replays the failed slave's WAL on a
stand-in. Reads bypass the layer entirely and go straight to HBase.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import TransactionError, UnsupportedStatementError
from repro.phoenix.writes import eval_const, key_from_where
from repro.phoenix.catalog import Catalog
from repro.sim.clock import Simulation
from repro.sql.ast import Delete, Insert, Select, Statement, Update
from repro.sql.parser import parse_statement
from repro.synergy.procedures import StepHook, WriteProcedures


@dataclass
class TxLogEntry:
    """One WAL record of a transaction-manager slave."""

    tx_id: int
    sql: str
    params: tuple[Any, ...]
    status: str = "pending"  # -> "committed" | "failed" | "recovered"


@dataclass
class WritePlan:
    """Auto-generated execution plan for one write statement
    (the 'plan generator' box of Fig. 7)."""

    kind: str  # "insert" | "update" | "delete"
    relation: str
    row: dict[str, Any] | None = None
    key: dict[str, Any] | None = None
    changes: dict[str, Any] | None = None


class PlanGenerator:
    """Translates write ASTs into :class:`WritePlan` objects."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def generate(self, stmt: Statement, params: tuple[Any, ...]) -> WritePlan:
        if isinstance(stmt, Insert):
            entry = self.catalog.table_for_relation(stmt.table)
            columns = stmt.columns or entry.attrs
            if len(columns) != len(stmt.values):
                raise UnsupportedStatementError(
                    f"INSERT {stmt.table}: column/value arity mismatch"
                )
            row = {c: eval_const(v, params) for c, v in zip(columns, stmt.values)}
            missing = [k for k in entry.key_attrs if k not in row]
            if missing:
                raise UnsupportedStatementError(
                    f"INSERT {stmt.table}: missing key attributes {missing}"
                )
            return WritePlan(kind="insert", relation=stmt.table, row=row)
        if isinstance(stmt, Update):
            entry = self.catalog.table_for_relation(stmt.table)
            key = key_from_where(entry, stmt.where, params)
            changes = {c: eval_const(v, params) for c, v in stmt.assignments}
            return WritePlan(
                kind="update", relation=stmt.table, key=key, changes=changes
            )
        if isinstance(stmt, Delete):
            entry = self.catalog.table_for_relation(stmt.table)
            key = key_from_where(entry, stmt.where, params)
            return WritePlan(kind="delete", relation=stmt.table, key=key)
        raise UnsupportedStatementError(f"not a write statement: {stmt}")


class TransactionManagerSlave:
    """One slave node: WAL + write-procedure execution."""

    _ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        sim: Simulation,
        plan_generator: PlanGenerator,
        procedures: WriteProcedures,
    ) -> None:
        self.name = name
        self.sim = sim
        self.plan_generator = plan_generator
        self.procedures = procedures
        self.wal: list[TxLogEntry] = []
        self.alive = True

    def execute_write(
        self,
        sql: str,
        params: tuple[Any, ...],
        on_step: StepHook | None = None,
    ) -> bool:
        if not self.alive:
            raise TransactionError(f"transaction slave {self.name} is down")
        stmt = parse_statement(sql)
        if isinstance(stmt, Select):
            raise UnsupportedStatementError("reads do not go through the tx layer")
        entry = TxLogEntry(tx_id=next(self._ids), sql=sql, params=tuple(params))
        self.wal.append(entry)
        self.sim.charge(self.sim.cost.wal_append_ms, "txlayer.wal")
        try:
            result = self._run(stmt, tuple(params), on_step)
        except BaseException:
            # a failed statement (e.g. a cooperative lock wait that will
            # be retried as a fresh request) must not leave a pending WAL
            # record for the master to replay on failover
            entry.status = "failed"
            raise
        entry.status = "committed"
        return result

    def _run(
        self, stmt: Statement, params: tuple[Any, ...], on_step: StepHook | None
    ) -> bool:
        plan = self.plan_generator.generate(stmt, params)
        if plan.kind == "insert":
            assert plan.row is not None
            self.procedures.insert(plan.relation, plan.row, on_step)
            return True
        if plan.kind == "update":
            assert plan.key is not None and plan.changes is not None
            return self.procedures.update(plan.relation, plan.key, plan.changes, on_step)
        assert plan.key is not None
        return self.procedures.delete(plan.relation, plan.key, on_step)

    def crash(self) -> None:
        self.alive = False

    def pending_entries(self) -> list[TxLogEntry]:
        return [e for e in self.wal if e.status == "pending"]


class SynergyTransactionLayer:
    """Master + slaves; clients call :meth:`execute_write`."""

    def __init__(
        self,
        sim: Simulation,
        plan_generator: PlanGenerator,
        procedures: WriteProcedures,
        num_slaves: int = 1,
    ) -> None:
        self.sim = sim
        self.plan_generator = plan_generator
        self.procedures = procedures
        self.slaves = [
            TransactionManagerSlave(f"tx-slave-{i + 1}", sim, plan_generator, procedures)
            for i in range(num_slaves)
        ]
        self._route = 0

    def execute_write(
        self,
        sql: str,
        params: tuple[Any, ...] = (),
        on_step: StepHook | None = None,
    ) -> bool:
        self.sim.charge(self.sim.cost.txlayer_dispatch_ms, "txlayer.dispatch")
        # the transaction procedures execute through the Phoenix API
        self.sim.charge(self.sim.cost.phoenix_statement_ms, "txlayer.phoenix")
        live = [s for s in self.slaves if s.alive]
        if not live:
            raise TransactionError("no live transaction-layer slaves")
        slave = live[self._route % len(live)]
        self._route += 1
        return slave.execute_write(sql, tuple(params), on_step)

    # -- master duties -----------------------------------------------------------------
    def recover_slave(self, dead: TransactionManagerSlave) -> int:
        """Start a stand-in slave and replay the failed slave's pending
        WAL entries (Sec. VIII: 'take over and replay the WAL')."""
        if dead.alive:
            raise TransactionError(f"slave {dead.name} is alive")
        standby = TransactionManagerSlave(
            f"{dead.name}-standby", self.sim, self.plan_generator, self.procedures
        )
        replayed = 0
        for entry in dead.pending_entries():
            standby.execute_write(entry.sql, entry.params)
            entry.status = "recovered"
            replayed += 1
        self.slaves = [s for s in self.slaves if s is not dead] + [standby]
        return replayed
