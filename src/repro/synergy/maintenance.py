"""View maintenance (paper Sec. VII).

Applicability tests and tuple construction per write type:

* **Insert** applies to a view iff the inserted relation is the *last*
  relation of the view's path; building the view tuple reads the k-1
  ancestor rows by following the (PK, FK) chain upward.
* **Delete** applies iff the relation is last (no cascading deletes);
  the view row is addressed directly by the base key, while view-index
  rows require reading the view row first to build the index key.
* **Update** applies iff the relation appears anywhere in the view; rows
  are located by the view key (relation last) or through a maintenance
  view-index on the relation's PK (relation mid-path).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError
from repro.hbase.bytes_util import prefix_stop
from repro.hbase.client import HBaseClient
from repro.hbase.filters import AndFilter, ColumnValueFilter
from repro.hbase.ops import Delete as HDelete, Get, Put, Scan
from repro.relational.datatypes import encode_value
from repro.phoenix.catalog import CF, Catalog, CatalogEntry
from repro.phoenix.plans import DIRTY_MARK, DIRTY_QUALIFIER
from repro.relational.schema import Schema
from repro.synergy.views import ViewDef


class ViewMaintainer:
    """Applies base-table writes to materialized views and view-indexes."""

    def __init__(
        self,
        client: HBaseClient,
        catalog: Catalog,
        views: list[ViewDef],
    ) -> None:
        self.client = client
        self.catalog = catalog
        self.schema = catalog.schema
        self.views = list(views)

    # -- applicability tests ---------------------------------------------------------
    def views_for_insert(self, relation: str) -> list[ViewDef]:
        return [v for v in self.views if v.last == relation]

    def views_for_delete(self, relation: str) -> list[ViewDef]:
        return [v for v in self.views if v.last == relation]

    def views_for_update(self, relation: str) -> list[ViewDef]:
        return [v for v in self.views if v.contains(relation)]

    # -- ancestor reads ---------------------------------------------------------------
    def read_ancestor_chain(
        self, view: ViewDef, row: dict[str, Any]
    ) -> dict[str, dict[str, Any]] | None:
        """Read the k-1 base rows above ``view.last`` along the path.

        Returns {relation: row}, or None if any ancestor is missing
        (the FK dangles — no view tuple can be constructed)."""
        out: dict[str, dict[str, Any]] = {}
        current = row
        # walk edges last-to-first: each child's FK provides the parent key
        for edge in reversed(view.edges):
            parent_entry = self.catalog.table_for_relation(edge.parent)
            key_values = [current.get(a) for a in edge.fk_attrs]
            if any(v is None for v in key_values):
                return None
            result = self.client.table(parent_entry.name).get(
                Get(
                    parent_entry.encode_key_values(key_values),
                    columns=parent_entry.projection(),
                )
            )
            if result is None:
                return None
            parent_row = parent_entry.result_to_row(result)
            out[edge.parent] = parent_row
            current = parent_row
        return out

    def build_view_row(
        self,
        view: ViewDef,
        row: dict[str, Any],
        ancestors: dict[str, dict[str, Any]],
    ) -> dict[str, Any]:
        merged: dict[str, Any] = {}
        for rel_name in view.relations[:-1]:
            ancestor = ancestors.get(rel_name)
            if ancestor is None:
                raise ReproError(
                    f"missing ancestor row for {rel_name} in view "
                    f"{view.display_name}"
                )
            merged.update(
                {a: ancestor.get(a) for a in
                 self.schema.relation(rel_name).attribute_names}
            )
        merged.update(
            {a: row.get(a) for a in self.schema.relation(view.last).attribute_names}
        )
        return merged

    # -- entry lookup ------------------------------------------------------------------
    def view_entry(self, view: ViewDef) -> CatalogEntry:
        return self.catalog.view(view.name)

    def view_index_entries(self, view: ViewDef) -> list[CatalogEntry]:
        return self.catalog.indexes_for_view(view.name)

    def maintenance_index_for(
        self, view: ViewDef, relation: str
    ) -> CatalogEntry | None:
        """A view-index whose key starts with PK(relation), if present."""
        pk = tuple(self.schema.relation(relation).primary_key)
        entry = self.view_entry(view)
        if entry.key_attrs[: len(pk)] == pk:
            return entry  # the view itself is keyed by this PK
        for index in self.view_index_entries(view):
            if index.key_attrs[: len(pk)] == pk:
                return index
        return None

    # -- insert -------------------------------------------------------------------------
    def apply_insert(self, relation: str, row: dict[str, Any]) -> int:
        """Insert the corresponding tuple into every applicable view
        (and its view-indexes); returns number of physical rows written."""
        written = 0
        for view in self.views_for_insert(relation):
            ancestors = self.read_ancestor_chain(view, row)
            if ancestors is None:
                continue  # dangling FK: no join result to materialize
            view_row = self.build_view_row(view, row, ancestors)
            entry = self.view_entry(view)
            self.client.table(entry.name).put(entry.row_to_put(view_row))
            written += 1
            for index in self.view_index_entries(view):
                self.client.table(index.name).put(index.row_to_put(view_row))
                written += 1
        return written

    # -- delete -------------------------------------------------------------------------
    def apply_delete(self, relation: str, key: dict[str, Any]) -> int:
        """Delete the view tuple for a base delete; view-index keys are
        constructed by reading the view row first (Sec. VII-B)."""
        removed = 0
        for view in self.views_for_delete(relation):
            entry = self.view_entry(view)
            view_key = entry.encode_key(key)
            indexes = self.view_index_entries(view)
            old_row: dict[str, Any] | None = None
            if indexes:
                result = self.client.table(entry.name).get(
                    Get(view_key, columns=entry.projection())
                )
                if result is not None:
                    old_row = entry.result_to_row(result)
            self.client.table(entry.name).delete(HDelete(view_key))
            removed += 1
            if old_row is not None:
                for index in indexes:
                    self.client.table(index.name).delete(
                        HDelete(index.encode_key(old_row))
                    )
                    removed += 1
        return removed

    # -- update -------------------------------------------------------------------------
    def locate_view_rows(
        self, view: ViewDef, relation: str, key: dict[str, Any]
    ) -> list[dict[str, Any]]:
        """All view rows whose ``relation`` component has the given key."""
        entry = self.view_entry(view)
        access = self.maintenance_index_for(view, relation)
        pk = tuple(self.schema.relation(relation).primary_key)
        if access is None:
            # No maintenance index: scan the entire view (the expensive
            # fallback the paper's Sec. VII-C indexes exist to avoid).
            self.client.cluster.sim.metrics.counter(
                "view.maintenance_full_scans"
            ).inc()
            filters = [
                ColumnValueFilter(
                    CF, a.encode(), "=", encode_value(entry.dtypes[a], key[a])
                )
                for a in pk
                if a not in entry.key_attrs
            ]
            scan = Scan(columns=entry.projection())
            if len(filters) == 1:
                scan.filter = filters[0]
            elif filters:
                scan.filter = AndFilter(tuple(filters))
            rows = [
                entry.result_to_row(r)
                for r in self.client.table(entry.name).scan(scan)
            ]
            return [
                r for r in rows if all(r.get(a) == key[a] for a in pk)
            ]
        prefix_values = [key[a] for a in pk]
        if access.key_attrs == tuple(pk) or (
            access is entry and len(access.key_attrs) == len(pk)
        ):
            result = self.client.table(access.name).get(
                Get(
                    access.encode_key_values(prefix_values),
                    columns=access.projection(),
                )
            )
            rows = [] if result is None else [access.result_to_row(result)]
        else:
            prefix = access.encode_key_prefix(prefix_values)
            rows = [
                access.result_to_row(r)
                for r in self.client.table(access.name).scan(
                    Scan(
                        start_row=prefix,
                        stop_row=prefix_stop(prefix),
                        columns=access.projection(),
                    )
                )
            ]
        if access is not entry and set(access.attrs) != set(entry.attrs):
            # key-only maintenance index: fetch the full rows from the view
            full_rows = []
            projection = entry.projection()
            for row in rows:
                result = self.client.table(entry.name).get(
                    Get(entry.encode_key(row), columns=projection)
                )
                if result is not None:
                    full_rows.append(entry.result_to_row(result))
            return full_rows
        return rows

    def mark_rows(
        self, entry: CatalogEntry, rows: list[dict[str, Any]], dirty: bool
    ) -> None:
        """Set/clear the dirty marker on view rows (update steps 3 and 5)."""
        puts = []
        for row in rows:
            put = Put(entry.encode_key(row))
            put.add(CF, DIRTY_QUALIFIER, DIRTY_MARK if dirty else b"\x00")
            puts.append(put)
        if puts:
            self.client.table(entry.name).put_batch(puts)
            self.client.cluster.sim.charge(
                self.client.cluster.sim.cost.mark_row_ms * len(puts), "view.mark"
            )

    def write_view_rows(
        self,
        view: ViewDef,
        old_rows: list[dict[str, Any]],
        changes: dict[str, Any],
    ) -> list[dict[str, Any]]:
        """Apply attribute changes to located view rows + fix indexes."""
        entry = self.view_entry(view)
        new_rows = []
        for old in old_rows:
            new = dict(old)
            new.update(changes)
            self.client.table(entry.name).put(entry.row_to_put(new))
            for index in self.view_index_entries(view):
                if not any(a in index.attrs for a in changes):
                    continue
                old_key = index.encode_key(old)
                new_key = index.encode_key(new)
                if old_key != new_key:
                    self.client.table(index.name).delete(HDelete(old_key))
                self.client.table(index.name).put(index.row_to_put(new))
            new_rows.append(new)
        return new_rows
