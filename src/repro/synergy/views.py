"""View definitions and candidate enumeration (paper Definition 5).

A candidate view is a path in a rooted tree: its attribute set is the
union of the path relations' attributes, its key is the key of the
*last* relation, and it is stored physically as a relation. Candidate
views need not start at the root — Fig. 6 selects ``R2-R3-R4`` and
``R5-R6`` from a tree rooted at ``R1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.schema import Schema
from repro.synergy.graph import GraphEdge
from repro.synergy.trees import RootedTree


@dataclass(frozen=True)
class ViewDef:
    """A materializable path: relations + connecting (PK, FK) edges."""

    relations: tuple[str, ...]
    edges: tuple[GraphEdge, ...]
    root: str
    """The rooted tree this path came from (its locking hierarchy)."""

    name_override: str | None = None
    """Custom physical name (used by the schema-unaware advisor views)."""

    def __post_init__(self) -> None:
        assert len(self.relations) == len(self.edges) + 1

    @property
    def name(self) -> str:
        if self.name_override is not None:
            return self.name_override
        return "MV_" + "__".join(self.relations)

    @property
    def display_name(self) -> str:
        """The paper's dash-joined rendering, e.g. ``Customer-Orders``."""
        return "-".join(self.relations)

    @property
    def first(self) -> str:
        return self.relations[0]

    @property
    def last(self) -> str:
        return self.relations[-1]

    def contains(self, relation: str) -> bool:
        return relation in self.relations

    def key_attrs(self, schema: Schema) -> tuple[str, ...]:
        """PK of the last relation (Definition 5)."""
        return tuple(schema.relation(self.last).primary_key)

    def attributes(self, schema: Schema) -> tuple[str, ...]:
        out: list[str] = []
        for rel in self.relations:
            out.extend(schema.relation(rel).attribute_names)
        return tuple(out)

    def edge_into(self, relation: str) -> GraphEdge | None:
        for e in self.edges:
            if e.child == relation:
                return e
        return None

    def __str__(self) -> str:
        return self.display_name


def candidate_views(tree: RootedTree) -> list[ViewDef]:
    """All downward paths (length >= 2 relations) in one rooted tree."""
    out: list[ViewDef] = []
    for start in tree.nodes:
        # DFS from start, extending one child at a time
        def extend(node: str, rels: list[str], edges: list[GraphEdge]) -> None:
            for child in tree.children_of(node):
                e = tree.parent_edges[child]
                rels.append(child)
                edges.append(e)
                out.append(
                    ViewDef(
                        relations=tuple(rels),
                        edges=tuple(edges),
                        root=tree.root,
                    )
                )
                extend(child, rels, edges)
                rels.pop()
                edges.pop()

        extend(start, [start], [])
    return out


def candidate_views_for_trees(
    trees: dict[str, RootedTree],
) -> list[ViewDef]:
    out: list[ViewDef] = []
    for root in trees:
        out.extend(candidate_views(trees[root]))
    return out
