"""Exception hierarchy for the repro package.

Every layer raises a subclass of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Invalid relational schema (unknown relation, bad key, dangling FK...)."""


class SqlError(ReproError):
    """SQL lexing/parsing/analysis failure."""


class SqlSyntaxError(SqlError):
    """The statement text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class PlanError(ReproError):
    """The planner could not produce an execution plan for a statement."""


class UnsupportedStatementError(PlanError):
    """A statement is outside the subset a given system supports.

    Raised e.g. by the VoltDB engine for joins that are not on the
    partitioning column, and by Synergy for multi-row write statements.
    """


class HBaseError(ReproError):
    """Errors from the simulated HBase layer."""


class TableNotFoundError(HBaseError):
    """Operation addressed a table that does not exist."""


class TableExistsError(HBaseError):
    """CREATE for a table that already exists."""


class RegionUnavailableError(HBaseError):
    """The region hosting a key is offline (simulated failure)."""


class RegionRetriesExhaustedError(RegionUnavailableError):
    """A client gave up relocating an operation: the addressed region
    stayed unhosted/offline through the bounded meta-retry budget. A
    subclass of :class:`RegionUnavailableError` so callers treating the
    region as down keep working, while chaos harnesses can tell a
    bounded give-up from a transient failure."""


class ServerOverloadedError(RegionUnavailableError):
    """Admission control shed this request: the target region server's
    virtual backlog exceeded its (possibly pressure-shrunk) queue bound.
    A subclass of :class:`RegionUnavailableError` so every existing
    failover/retry path — ``HTable`` relocation, the chaos harness's
    bounded backoff-and-retry — absorbs a shed exactly like a transient
    region outage, while serving-aware clients can read
    ``retry_after_ms`` and count sheds separately."""

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServerRecoveryError(HBaseError):
    """Master failover misuse: recovering a region server that is still
    alive, or one whose regions were already recovered. Both would
    silently re-move regions (double recovery replays a WAL that was
    already replayed elsewhere), so they are typed, hard failures."""


class RegionSplitError(HBaseError):
    """A region cannot be split (too few rows, or the requested split
    key is not strictly inside the region's key range)."""


class ReplicationError(HBaseError):
    """Region-replication misuse: replicating a non-empty region (the
    group log must be the region's complete edit history), re-replicating
    an already replicated table, or a replica count the cluster cannot
    place under anti-affinity."""


class ClusterConfigError(HBaseError):
    """Invalid cluster configuration: a ``ClusterConfig`` field that
    would only blow up deep inside first use (negative replica count,
    non-positive split threshold, zero retry budget), or a topology
    request that contradicts the current membership (adding a region
    server under a name that already exists)."""


class OrchestrationError(HBaseError):
    """Errors from the declarative orchestration layer (plan, diff,
    staged rollout)."""


class PlanValidationError(OrchestrationError):
    """A ``ClusterPlan`` is internally inconsistent (bad server count,
    unsorted split points, more replicas than servers) or impossible
    against the current cluster (unknown table, enabling replication on
    a non-empty unreplicated table)."""


class StaleStepError(OrchestrationError):
    """Layout-epoch fencing: a ``Step`` was fenced against one cluster
    layout but the layout moved (or the step's preconditions dissolved —
    a region boundary vanished, a target server left) before it could
    apply. Stale steps refuse to apply; the orchestrator re-fences and
    retries or rolls the stage back."""


class StepVerificationError(OrchestrationError):
    """A step's in-segment verification failed (e.g. row counts were not
    conserved across a move/split/merge) or a stage-level invariant
    check found a structural violation. Triggers stage rollback."""


class RollbackError(OrchestrationError):
    """A stage rollback could not restore the last committed state even
    after exhausting the retry budget. The cluster is left in a
    partially unwound state; this is a hard failure."""


class TransactionError(ReproError):
    """Errors from either transaction layer (MVCC or Synergy)."""


class TransactionConflictError(TransactionError):
    """MVCC write-write conflict detected at commit time."""


class TransactionAbortedError(TransactionError):
    """The transaction was rolled back and cannot be used further."""


class LockTimeoutError(TransactionError):
    """A hierarchical lock could not be acquired within the timeout."""


class LockWaitRequired(TransactionError):
    """Cooperative-scheduling signal: the requested hierarchical lock is
    held by another virtual client at the requesting client's current
    virtual time. The transaction runner charges the wait (up to
    ``wait_until_ms``), yields to the scheduler, and retries — the
    multi-client analogue of blocking on the lock. Never raised outside
    a scheduled run (``sim.concurrency is None``)."""

    def __init__(self, lock_key, wait_until_ms: float) -> None:
        self.lock_key = lock_key
        self.wait_until_ms = wait_until_ms
        super().__init__(
            f"lock {lock_key!r} is held until t={wait_until_ms:.3f}ms"
        )


class DirtyReadRestart(ReproError):
    """Internal signal: a scan observed a marked (in-flight) row.

    The Phoenix executor catches this and restarts the scan; it is surfaced
    only when the restart budget is exhausted.
    """


class ViewSelectionError(ReproError):
    """View generation/selection failed (e.g. cyclic schema graph)."""


class WorkloadError(ReproError):
    """A workload statement violates the documented restrictions."""
