"""Relation, Index and Schema models (paper Section II-A).

Notation follows the paper:

* ``PK(R)`` — tuple of attributes uniquely identifying each record.
* ``FK(R)`` — a set of attributes referencing another relation; ``F(R)``
  is the set of all foreign keys of ``R``.
* An index ``X(R)`` is a *covered* index: a set of attributes stored in
  the index itself; ``Xtuple(R)`` is the tuple of attributes it is
  indexed upon; the index **key** is ``Xtuple(R) + PK(R)`` in that order.
* A schema ``S`` is the set of relations with their index sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.datatypes import DataType


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    dtype: DataType = DataType.VARCHAR

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.name}:{self.dtype.value}"


@dataclass(frozen=True)
class ForeignKey:
    """``attributes`` of the owning relation reference ``references``'s PK.

    ``name`` disambiguates multiple FKs to the same target (e.g. the
    Company schema's Employee has both a home and an office address FK).
    """

    name: str
    attributes: tuple[str, ...]
    references: str

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError(f"foreign key {self.name!r} has no attributes")


@dataclass(frozen=True)
class Index:
    """A covered index: ``indexed_on`` = Xtuple(R), ``includes`` = the rest.

    The full attribute set of the index is ``indexed_on + includes``;
    the physical key is ``indexed_on + PK(R)``.
    """

    name: str
    indexed_on: tuple[str, ...]
    includes: tuple[str, ...] = ()

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.indexed_on + self.includes))


class Relation:
    """A named set of attributes with a primary key and foreign keys."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute | tuple[str, DataType] | str],
        primary_key: Iterable[str],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        attrs: list[Attribute] = []
        for a in attributes:
            if isinstance(a, Attribute):
                attrs.append(a)
            elif isinstance(a, tuple):
                attrs.append(Attribute(a[0], a[1]))
            else:
                attrs.append(Attribute(a))
        self.name = name
        self._attrs: dict[str, Attribute] = {}
        for a in attrs:
            if a.name in self._attrs:
                raise SchemaError(f"{name}: duplicate attribute {a.name!r}")
            self._attrs[a.name] = a
        self.primary_key: tuple[str, ...] = tuple(primary_key)
        if not self.primary_key:
            raise SchemaError(f"{name}: empty primary key")
        for k in self.primary_key:
            if k not in self._attrs:
                raise SchemaError(f"{name}: PK attribute {k!r} not in relation")
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        seen_fk: set[str] = set()
        for fk in self.foreign_keys:
            if fk.name in seen_fk:
                raise SchemaError(f"{name}: duplicate foreign key name {fk.name!r}")
            seen_fk.add(fk.name)
            for a in fk.attributes:
                if a not in self._attrs:
                    raise SchemaError(
                        f"{name}: FK {fk.name!r} attribute {a!r} not in relation"
                    )

    # -- attribute access ---------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(self._attrs.values())

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._attrs)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attrs[name]
        except KeyError:
            raise SchemaError(f"{self.name}: no attribute {name!r}") from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attrs

    def dtype_of(self, name: str) -> DataType:
        return self.attribute(name).dtype

    def foreign_key(self, name: str) -> ForeignKey:
        for fk in self.foreign_keys:
            if fk.name == name:
                return fk
        raise SchemaError(f"{self.name}: no foreign key {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation({self.name}, pk={self.primary_key})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relation) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Relation", self.name))


class Schema:
    """A set of relations and their covered-index sets."""

    def __init__(
        self,
        relations: Iterable[Relation],
        indexes: Mapping[str, Iterable[Index]] | None = None,
    ) -> None:
        self._relations: dict[str, Relation] = {}
        for r in relations:
            if r.name in self._relations:
                raise SchemaError(f"duplicate relation {r.name!r}")
            self._relations[r.name] = r
        self._indexes: dict[str, list[Index]] = {name: [] for name in self._relations}
        if indexes:
            for rel_name, idx_list in indexes.items():
                for idx in idx_list:
                    self.add_index(rel_name, idx)
        self._validate_foreign_keys()

    def _validate_foreign_keys(self) -> None:
        for rel in self._relations.values():
            for fk in rel.foreign_keys:
                target = self._relations.get(fk.references)
                if target is None:
                    raise SchemaError(
                        f"{rel.name}: FK {fk.name!r} references unknown "
                        f"relation {fk.references!r}"
                    )
                if len(fk.attributes) != len(target.primary_key):
                    raise SchemaError(
                        f"{rel.name}: FK {fk.name!r} arity {len(fk.attributes)} "
                        f"!= PK arity {len(target.primary_key)} of {target.name}"
                    )

    # -- relations ---------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation {name!r} in schema") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    # -- indexes -----------------------------------------------------------------
    def add_index(self, relation_name: str, index: Index) -> None:
        rel = self.relation(relation_name)
        for a in index.attributes:
            if not rel.has_attribute(a):
                raise SchemaError(
                    f"index {index.name!r}: attribute {a!r} not in {rel.name}"
                )
        if any(x.name == index.name for x in self._indexes[relation_name]):
            raise SchemaError(f"duplicate index name {index.name!r} on {relation_name}")
        self._indexes[relation_name].append(index)

    def indexes(self, relation_name: str) -> tuple[Index, ...]:
        self.relation(relation_name)
        return tuple(self._indexes[relation_name])

    def all_indexes(self) -> dict[str, tuple[Index, ...]]:
        return {name: tuple(v) for name, v in self._indexes.items()}

    # -- relationships (Definition 1) ------------------------------------------------
    def relationships(self) -> list[tuple[str, str, ForeignKey]]:
        """All (parent, child, fk) triples: child's fk references parent's PK."""
        out: list[tuple[str, str, ForeignKey]] = []
        for rel in self._relations.values():
            for fk in rel.foreign_keys:
                out.append((fk.references, rel.name, fk))
        return out
