"""Value types and byte encodings.

The simulated HBase stores opaque byte strings; this module provides the
(order-preserving where it matters) encodings used for row keys and cell
values, plus size accounting used for Table III (database sizes).
"""

from __future__ import annotations

import enum
import struct
from datetime import date, datetime
from typing import Any


class DataType(enum.Enum):
    """SQL-ish column types supported by the engines."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    VARCHAR = "varchar"
    DATE = "date"
    DATETIME = "datetime"
    BOOL = "bool"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.BIGINT, DataType.FLOAT)


_INT_BIAS = 1 << 63  # order-preserving encoding for signed integers


def encode_value(dtype: DataType, value: Any) -> bytes:
    """Encode ``value`` as bytes. Integer/date encodings preserve order.

    ``None`` encodes to the empty byte string for every type (the engines
    treat absent cells and NULLs identically, like HBase does).
    """
    if value is None:
        return b""
    if dtype in (DataType.INT, DataType.BIGINT):
        return struct.pack(">Q", int(value) + _INT_BIAS)
    if dtype is DataType.FLOAT:
        return struct.pack(">d", float(value))
    if dtype is DataType.VARCHAR:
        return str(value).encode("utf-8")
    if dtype is DataType.DATE:
        if isinstance(value, (date, datetime)):
            value = value.toordinal()
        return struct.pack(">Q", int(value) + _INT_BIAS)
    if dtype is DataType.DATETIME:
        if isinstance(value, datetime):
            value = value.timestamp()
        return struct.pack(">d", float(value))
    if dtype is DataType.BOOL:
        return b"\x01" if value else b"\x00"
    raise TypeError(f"unsupported dtype: {dtype}")


def decode_value(dtype: DataType, data: bytes) -> Any:
    """Inverse of :func:`encode_value` (dates decode to ordinals)."""
    if data == b"":
        return None
    if dtype in (DataType.INT, DataType.BIGINT, DataType.DATE):
        return struct.unpack(">Q", data)[0] - _INT_BIAS
    if dtype is DataType.FLOAT or dtype is DataType.DATETIME:
        return struct.unpack(">d", data)[0]
    if dtype is DataType.VARCHAR:
        return data.decode("utf-8")
    if dtype is DataType.BOOL:
        return data != b"\x00"
    raise TypeError(f"unsupported dtype: {dtype}")


def value_size_bytes(dtype: DataType, value: Any) -> int:
    """Size of the encoded value, for storage accounting."""
    return len(encode_value(dtype, value))
