"""Relational schema model (Section II-A of the paper).

A :class:`~repro.relational.schema.Relation` is a set of attributes with
a primary key and zero or more foreign keys; an
:class:`~repro.relational.schema.Index` is a covered index over a subset
of a relation's attributes; a :class:`~repro.relational.schema.Schema`
is the set of relations plus their index sets. The
:mod:`repro.relational.company` module reconstructs the paper's Company
example (Fig. 2) which the unit tests check the view-generation
machinery against, edge for edge.
"""

from repro.relational.datatypes import DataType, decode_value, encode_value
from repro.relational.schema import (
    Attribute,
    ForeignKey,
    Index,
    Relation,
    Schema,
)
from repro.relational.workload import Workload

__all__ = [
    "Attribute",
    "DataType",
    "ForeignKey",
    "Index",
    "Relation",
    "Schema",
    "Workload",
    "encode_value",
    "decode_value",
]
