"""The paper's Company example database (Fig. 2) and workload (Sec. V-B2).

Used throughout the unit tests to check that candidate-view generation
reproduces the paper's intermediate artefacts exactly:

* schema graph of Fig. 4(a),
* DAG of Fig. 5(a) (edge ``(AID, EOffice_AID)`` removed),
* rooted graphs of Fig. 5(c),
* rooted trees of Fig. 4(b),

with roots ``Q_company = {Address, Department}``.
"""

from __future__ import annotations

from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, Index, Relation, Schema
from repro.relational.workload import Workload

INT = DataType.INT
VARCHAR = DataType.VARCHAR

COMPANY_ROOTS = ("Address", "Department")


def company_schema() -> Schema:
    """Build the Company schema of Fig. 2 (with base-table indexes on FKs)."""
    address = Relation(
        "Address",
        [("AID", INT), ("Street", VARCHAR), ("City", VARCHAR), ("Zip", VARCHAR)],
        primary_key=["AID"],
    )
    employee = Relation(
        "Employee",
        [
            ("EID", INT),
            ("EName", VARCHAR),
            ("EHome_AID", INT),
            ("EOffice_AID", INT),
            ("E_DNo", INT),
        ],
        primary_key=["EID"],
        foreign_keys=[
            ForeignKey("emp_home_addr", ("EHome_AID",), "Address"),
            ForeignKey("emp_office_addr", ("EOffice_AID",), "Address"),
            ForeignKey("emp_dept", ("E_DNo",), "Department"),
        ],
    )
    department = Relation(
        "Department",
        [("DNo", INT), ("DName", VARCHAR)],
        primary_key=["DNo"],
    )
    dept_location = Relation(
        "Department_Location",
        [("DL_DNo", INT), ("DLocation", VARCHAR)],
        primary_key=["DL_DNo", "DLocation"],
        foreign_keys=[ForeignKey("dl_dept", ("DL_DNo",), "Department")],
    )
    project = Relation(
        "Project",
        [("PNo", INT), ("PName", VARCHAR), ("P_DNo", INT)],
        primary_key=["PNo"],
        foreign_keys=[ForeignKey("proj_dept", ("P_DNo",), "Department")],
    )
    works_on = Relation(
        "Works_On",
        [("WO_EID", INT), ("WO_PNo", INT), ("Hours", INT)],
        primary_key=["WO_EID", "WO_PNo"],
        foreign_keys=[
            ForeignKey("wo_emp", ("WO_EID",), "Employee"),
            ForeignKey("wo_proj", ("WO_PNo",), "Project"),
        ],
    )
    dependent = Relation(
        "Dependent",
        [("DP_EID", INT), ("DPName", VARCHAR), ("DPHome_AID", INT)],
        primary_key=["DP_EID", "DPName"],
        foreign_keys=[
            ForeignKey("dp_emp", ("DP_EID",), "Employee"),
            ForeignKey("dp_home_addr", ("DPHome_AID",), "Address"),
        ],
    )
    schema = Schema(
        [address, employee, department, dept_location, project, works_on, dependent]
    )
    # Base-table covered indexes on FK attributes (the paper assumes the
    # input schema carries the necessary base-table indexes, Sec. VI-C).
    schema.add_index(
        "Employee",
        Index("idx_emp_home", ("EHome_AID",), ("EID", "EName", "EOffice_AID", "E_DNo")),
    )
    schema.add_index(
        "Employee",
        Index("idx_emp_dept", ("E_DNo",), ("EID", "EName", "EHome_AID", "EOffice_AID")),
    )
    schema.add_index(
        "Works_On", Index("idx_wo_hours", ("Hours",), ("WO_EID", "WO_PNo"))
    )
    return schema


def company_workload() -> Workload:
    """The three-statement synthetic workload of Section V-B2."""
    w = Workload()
    w.add(
        "SELECT * FROM Employee as e, Address as a "
        "WHERE a.AID = e.EHome_AID and e.EID = ?",
        statement_id="W1",
    )
    w.add(
        "SELECT * FROM Department as d, Employee as e, Works_On as wo "
        "WHERE d.DNo = e.E_DNo and e.EID = wo.WO_EID and d.DNo = ?",
        statement_id="W2",
    )
    w.add(
        "SELECT * FROM Employee as e, Works_On as wo "
        "WHERE e.EID = wo.WO_EID and wo.Hours = ?",
        statement_id="W3",
    )
    return w
