"""Workload model (paper Section II-B).

A workload ``W = {w1, ..., wm}`` is a set of SQL statements. We keep the
raw SQL plus (lazily) the parsed/analyzed form, and optional per-statement
frequencies used by selection heuristics and the advisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.ast import Statement


@dataclass
class WorkloadStatement:
    """One statement of a workload: SQL text, an id and a frequency weight."""

    sql: str
    statement_id: str = ""
    frequency: float = 1.0
    _parsed: "Statement | None" = field(default=None, repr=False, compare=False)

    @property
    def parsed(self) -> "Statement":
        if self._parsed is None:
            from repro.sql.parser import parse_statement

            self._parsed = parse_statement(self.sql)
        return self._parsed


class Workload:
    """An ordered collection of :class:`WorkloadStatement`."""

    def __init__(self, statements: Iterable[WorkloadStatement | str] = ()) -> None:
        self._statements: list[WorkloadStatement] = []
        for s in statements:
            self.add(s)

    def add(
        self,
        statement: WorkloadStatement | str,
        statement_id: str = "",
        frequency: float = 1.0,
    ) -> WorkloadStatement:
        if isinstance(statement, str):
            statement = WorkloadStatement(statement, statement_id, frequency)
        if not statement.statement_id:
            statement.statement_id = f"w{len(self._statements) + 1}"
        self._statements.append(statement)
        return statement

    def __iter__(self) -> Iterator[WorkloadStatement]:
        return iter(self._statements)

    def __len__(self) -> int:
        return len(self._statements)

    def __getitem__(self, i: int) -> WorkloadStatement:
        return self._statements[i]

    def by_id(self, statement_id: str) -> WorkloadStatement:
        for s in self._statements:
            if s.statement_id == statement_id:
                return s
        raise KeyError(statement_id)

    def reads(self) -> "Workload":
        """Sub-workload of SELECT statements."""
        from repro.sql.ast import Select

        return Workload(s for s in self._statements if isinstance(s.parsed, Select))

    def writes(self) -> "Workload":
        """Sub-workload of INSERT/UPDATE/DELETE statements."""
        from repro.sql.ast import Select

        return Workload(
            s for s in self._statements if not isinstance(s.parsed, Select)
        )
