"""In-memory VoltDB tables with hash secondary indexes."""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import SchemaError
from repro.relational.datatypes import value_size_bytes
from repro.relational.schema import Relation


class VoltTable:
    """Row store keyed by primary key, with per-attribute hash indexes."""

    def __init__(self, relation: Relation, row_overhead_bytes: int = 8) -> None:
        self.relation = relation
        self.name = relation.name
        self.key_attrs = tuple(relation.primary_key)
        self.rows: dict[tuple, dict[str, Any]] = {}
        self._indexes: dict[str, dict[Any, set[tuple]]] = {}
        self.row_overhead_bytes = row_overhead_bytes
        self.size_bytes = 0

    # -- indexes ------------------------------------------------------------------
    def create_index(self, attr: str) -> None:
        if not self.relation.has_attribute(attr):
            raise SchemaError(f"{self.name}: no attribute {attr!r}")
        if attr in self._indexes:
            return
        index: dict[Any, set[tuple]] = {}
        for key, row in self.rows.items():
            index.setdefault(row.get(attr), set()).add(key)
        self._indexes[attr] = index

    def has_index(self, attr: str) -> bool:
        return attr in self._indexes or (
            len(self.key_attrs) >= 1 and attr == self.key_attrs[0]
        )

    # -- mutations -----------------------------------------------------------------
    def _key_of(self, row: dict[str, Any]) -> tuple:
        try:
            return tuple(row[a] for a in self.key_attrs)
        except KeyError as e:
            raise SchemaError(f"{self.name}: missing key attribute {e}") from None

    def _row_size(self, row: dict[str, Any]) -> int:
        total = self.row_overhead_bytes
        for attr in self.relation.attribute_names:
            total += value_size_bytes(
                self.relation.dtype_of(attr), row.get(attr)
            )
        return total

    def insert(self, row: dict[str, Any]) -> None:
        key = self._key_of(row)
        old = self.rows.get(key)
        if old is not None:
            self._unindex(key, old)
            self.size_bytes -= self._row_size(old)
        stored = dict(row)
        self.rows[key] = stored
        self.size_bytes += self._row_size(stored)
        for attr, index in self._indexes.items():
            index.setdefault(stored.get(attr), set()).add(key)

    def delete(self, key: tuple) -> bool:
        old = self.rows.pop(key, None)
        if old is None:
            return False
        self._unindex(key, old)
        self.size_bytes -= self._row_size(old)
        return True

    def update(self, key: tuple, changes: dict[str, Any]) -> bool:
        old = self.rows.get(key)
        if old is None:
            return False
        new = dict(old)
        new.update(changes)
        self._unindex(key, old)
        self.size_bytes += self._row_size(new) - self._row_size(old)
        self.rows[key] = new
        for attr, index in self._indexes.items():
            index.setdefault(new.get(attr), set()).add(key)
        return True

    def _unindex(self, key: tuple, row: dict[str, Any]) -> None:
        for attr, index in self._indexes.items():
            bucket = index.get(row.get(attr))
            if bucket is not None:
                bucket.discard(key)

    # -- reads ---------------------------------------------------------------------
    def get(self, key: tuple) -> dict[str, Any] | None:
        return self.rows.get(key)

    def lookup(self, attr: str, value: Any) -> Iterator[dict[str, Any]]:
        """Index (or PK-prefix) equality lookup."""
        if attr in self._indexes:
            for key in self._indexes[attr].get(value, ()):
                yield self.rows[key]
            return
        if attr == self.key_attrs[0] and len(self.key_attrs) == 1:
            row = self.rows.get((value,))
            if row is not None:
                yield row
            return
        for row in self.rows.values():  # unindexed fallback scan
            if row.get(attr) == value:
                yield row

    def scan(self) -> Iterator[dict[str, Any]]:
        yield from self.rows.values()

    def __len__(self) -> int:
        return len(self.rows)
