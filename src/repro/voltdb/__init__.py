"""A VoltDB-style NewSQL engine (paper Sec. IX-D2).

In-memory tables, each either **partitioned on a single column** or
**replicated**; single-threaded partition executors; stored-procedure
style statement execution. Joins are legal only when every partitioned
table joins on its partitioning column (co-located execution) — the
restricted query expressiveness the paper contrasts Synergy against.
Queries needing anything else raise
:class:`~repro.errors.UnsupportedStatementError`, which is exactly how
Q3, Q7, Q9 and Q10 earn their X in Fig. 12.
"""

from repro.voltdb.system import PartitionScheme, VoltDBSystem, TPCW_SCHEMES

__all__ = ["PartitionScheme", "TPCW_SCHEMES", "VoltDBSystem"]
