"""The VoltDB-style system: partition schemes, support checking,
in-memory stored-procedure execution.

The paper uses three different partitioning schemes to cover the
maximum number of TPC-W joins (no single scheme supports even half);
queries whose joins are not partition-column equi-joins under the
active scheme are rejected. Q3, Q7, Q9 and Q10 are unsupported under
every scheme (Fig. 12)."""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import PlanError, UnsupportedStatementError
from repro.relational.schema import Schema
from repro.sim.clock import Simulation
from repro.sql.analyzer import AnalyzedSelect, analyze_select
from repro.sql.ast import (
    ColumnRef,
    Delete,
    DerivedTable,
    FuncCall,
    Insert,
    Literal,
    Param,
    Select,
    Star,
    Statement,
    Update,
)
from repro.sql.parser import parse_statement
from repro.voltdb.table import VoltTable

Row = dict[tuple[str, str], Any]


@dataclass(frozen=True)
class PartitionScheme:
    """relation -> partitioning column; absent relations are replicated."""

    name: str
    partition_columns: Mapping[str, str]

    def column_of(self, relation: str) -> str | None:
        return self.partition_columns.get(relation)

    def is_replicated(self, relation: str) -> bool:
        return relation not in self.partition_columns


#: The three TPC-W schemes (Sec. IX-D2); each supports a different join
#: subset, and together they cover Q1, Q2, Q4, Q5, Q6, Q8, Q11.
TPCW_SCHEMES = (
    PartitionScheme(
        "scheme1",
        {
            "Customer": "c_id",
            "Orders": "o_c_id",
            "Item": "i_id",
            "Order_line": "ol_i_id",
            "Shopping_cart_line": "scl_i_id",
            "Address": "addr_id",
            "CC_Xacts": "cx_o_id",
            "Shopping_cart": "sc_id",
        },
    ),
    PartitionScheme(
        "scheme2",
        {
            "Orders": "o_id",
            "Order_line": "ol_o_id",
            "CC_Xacts": "cx_o_id",
            "Customer": "c_id",
            "Item": "i_id",
            "Address": "addr_id",
            "Shopping_cart": "sc_id",
            "Shopping_cart_line": "scl_sc_id",
        },
    ),
    PartitionScheme(
        "scheme3",
        {
            "Author": "a_id",
            "Item": "i_a_id",
            "Customer": "c_id",
            "Orders": "o_c_id",
            "Order_line": "ol_o_id",
            "Address": "addr_id",
            "Shopping_cart": "sc_id",
            "Shopping_cart_line": "scl_sc_id",
        },
    ),
)


class VoltDBSystem:
    """In-memory NewSQL engine with partition-restricted joins."""

    name = "VoltDB"

    def __init__(
        self,
        schema: Schema,
        sim: Simulation | None = None,
        scheme: PartitionScheme | None = None,
        num_partitions: int = 5,
    ) -> None:
        self.schema = schema
        self.sim = sim or Simulation()
        self.scheme = scheme or PartitionScheme("all-replicated", {})
        self.num_partitions = num_partitions
        self.tables: dict[str, VoltTable] = {
            rel.name: VoltTable(
                rel, self.sim.cost.voltdb_row_overhead_bytes
            )
            for rel in schema
        }
        # secondary indexes mirroring the base-table covered indexes
        for rel in schema:
            for idx in schema.indexes(rel.name):
                self.tables[rel.name].create_index(idx.indexed_on[0])
            for fk in rel.foreign_keys:
                self.tables[rel.name].create_index(fk.attributes[0])

    def set_scheme(self, scheme: PartitionScheme) -> None:
        """Re-partition (logically; the store itself is scheme-agnostic)."""
        self.scheme = scheme

    # -- loading -----------------------------------------------------------------
    def load_row(self, relation: str, row: dict[str, Any]) -> None:
        self.tables[relation].insert(row)

    def db_size_bytes(self) -> int:
        total = 0
        for rel_name, table in self.tables.items():
            factor = (
                self.num_partitions if self.scheme.is_replicated(rel_name) else 1
            )
            total += table.size_bytes * factor
        return total

    # -- support check (the paper's join restriction) -------------------------------
    def check_supported(
        self, select: Select, analyzed: AnalyzedSelect | None = None
    ) -> None:
        if analyzed is None:
            analyzed = analyze_select(select, self.schema)
        for j in analyzed.joins:
            if not j.is_equi:
                continue
            lrel, rrel = j.left_relation, j.right_relation
            lcol = None if lrel is None else self.scheme.column_of(lrel)
            rcol = None if rrel is None else self.scheme.column_of(rrel)
            left_ok = lrel is None or lcol is None or j.left_attr == lcol
            right_ok = rrel is None or rcol is None or j.right_attr == rcol
            if not (left_ok and right_ok):
                raise UnsupportedStatementError(
                    f"{self.scheme.name}: join {j.left_relation}.{j.left_attr}"
                    f" = {j.right_relation}.{j.right_attr} is not on the "
                    "partitioning columns; partitioned tables can only be "
                    "joined on equality of partitioning column"
                )
        # a self-join of a partitioned table must also be on the
        # partition column on both sides — covered by the checks above.

    def supports(self, sql: str) -> bool:
        stmt = parse_statement(sql)
        if not isinstance(stmt, Select):
            return True
        try:
            self.check_supported(stmt)
            return True
        except UnsupportedStatementError:
            return False

    def supported_under_any(self, sql: str, schemes=TPCW_SCHEMES) -> bool:
        old = self.scheme
        try:
            for scheme in schemes:
                self.scheme = scheme
                if self.supports(sql):
                    return True
            return False
        finally:
            self.scheme = old

    # -- execution -----------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: tuple[Any, ...] = (),
        stmt: Statement | None = None,
        analyzed: AnalyzedSelect | None = None,
    ) -> Any:
        if stmt is None:
            stmt = parse_statement(sql)
        if isinstance(stmt, Select):
            return self._execute_select(stmt, params, analyzed)
        return self._execute_write(stmt, params)

    def timed(self, sql: str, params: tuple[Any, ...] = ()) -> tuple[Any, float]:
        sw = self.sim.stopwatch()
        result = self.execute(sql, params)
        return result, sw.stop()

    # -- write path -------------------------------------------------------------------
    def _execute_write(self, stmt: Statement, params: tuple[Any, ...]) -> int:
        self.sim.charge(self.sim.cost.voltdb_proc_base_ms, "voltdb.proc")
        if isinstance(stmt, Insert):
            columns = stmt.columns or self.tables[stmt.table].relation.attribute_names
            row = {
                c: self._const(v, params) for c, v in zip(columns, stmt.values)
            }
            self.tables[stmt.table].insert(row)
            self._charge_rows(1)
            return 1
        if isinstance(stmt, Update):
            key = self._key_from_where(stmt.table, stmt.where, params)
            changes = {
                c: self._const(v, params) for c, v in stmt.assignments
            }
            ok = self.tables[stmt.table].update(key, changes)
            self._charge_rows(1)
            return int(ok)
        if isinstance(stmt, Delete):
            key = self._key_from_where(stmt.table, stmt.where, params)
            ok = self.tables[stmt.table].delete(key)
            self._charge_rows(1)
            return int(ok)
        raise PlanError(f"unsupported statement: {stmt}")

    def _key_from_where(self, relation: str, where, params) -> tuple:
        eq: dict[str, Any] = {}
        for cond in where:
            col = cond.left if isinstance(cond.left, ColumnRef) else cond.right
            val = cond.right if isinstance(cond.left, ColumnRef) else cond.left
            if not isinstance(col, ColumnRef) or cond.op != "=":
                raise UnsupportedStatementError(
                    f"write WHERE must be key equality: {cond}"
                )
            eq[col.name] = self._const(val, params)
        table = self.tables[relation]
        missing = [a for a in table.key_attrs if a not in eq]
        if missing:
            raise UnsupportedStatementError(
                f"{relation}: write must bind all key attributes; missing {missing}"
            )
        return tuple(eq[a] for a in table.key_attrs)

    @staticmethod
    def _const(expr, params):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Param):
            return params[expr.index]
        raise UnsupportedStatementError(f"non-constant value: {expr}")

    def _charge_rows(self, n: int) -> None:
        self.sim.charge(self.sim.cost.voltdb_row_ms * n, "voltdb.rows")

    # -- read path ---------------------------------------------------------------------
    def _execute_select(
        self,
        select: Select,
        params: tuple[Any, ...],
        analyzed: AnalyzedSelect | None = None,
    ) -> list[dict[str, Any]]:
        if analyzed is None:
            analyzed = analyze_select(select, self.schema)
        self.check_supported(select, analyzed)
        self.sim.charge(self.sim.cost.voltdb_proc_base_ms, "voltdb.proc")
        if self._is_multipartition(select, analyzed):
            self.sim.charge(self.sim.cost.voltdb_multipart_ms, "voltdb.multipart")
        rows, examined = self._join_rows(select, analyzed, params)
        self._charge_rows(examined)
        return self._finalize(select, analyzed, rows, params)

    # -- routing ---------------------------------------------------------------------
    def partitions_for(
        self,
        stmt: Statement,
        params: tuple[Any, ...],
        analyzed: AnalyzedSelect | None = None,
    ) -> tuple[int, ...]:
        """The partition executor sites a procedure occupies under the
        active scheme: one routed partition for single-partition
        procedures, every site for multi-partition reads and for writes
        to replicated tables (which run on all replicas)."""
        every = tuple(range(self.num_partitions))
        if isinstance(stmt, Select):
            if analyzed is None:
                analyzed = analyze_select(stmt, self.schema)
            for f_ in analyzed.filters:
                if f_.op != "=" or f_.relation is None:
                    continue
                if self.scheme.column_of(f_.relation) != f_.attr:
                    continue
                if isinstance(f_.value, (Literal, Param)):
                    return (self._partition_of(self._const(f_.value, params)),)
            return every
        if isinstance(stmt, Insert):
            pcol = self.scheme.column_of(stmt.table)
            if pcol is None:
                return every
            columns = stmt.columns or self.tables[stmt.table].relation.attribute_names
            for c, v in zip(columns, stmt.values):
                if c == pcol:
                    return (self._partition_of(self._const(v, params)),)
            return every
        if isinstance(stmt, (Update, Delete)):
            pcol = self.scheme.column_of(stmt.table)
            if pcol is None:
                return every
            for cond in stmt.where:
                col = cond.left if isinstance(cond.left, ColumnRef) else cond.right
                val = cond.right if isinstance(cond.left, ColumnRef) else cond.left
                if (
                    isinstance(col, ColumnRef) and cond.op == "="
                    and col.name == pcol and isinstance(val, (Literal, Param))
                ):
                    return (self._partition_of(self._const(val, params)),)
            return every
        return every

    def _partition_of(self, value: Any) -> int:
        """Deterministic routing hash (``hash()`` is salted per process,
        which would break byte-identical benchmark reruns)."""
        if isinstance(value, int) and not isinstance(value, bool):
            return value % self.num_partitions
        return zlib.crc32(repr(value).encode()) % self.num_partitions

    def _is_multipartition(self, select: Select, analyzed: AnalyzedSelect) -> bool:
        """Single-partition iff some partitioned table has an equality
        filter on its partitioning column (routing key); else the
        procedure fans out to every partition executor."""
        for f_ in analyzed.filters:
            if f_.op != "=" or f_.relation is None:
                continue
            if self.scheme.column_of(f_.relation) == f_.attr:
                return False
        return True

    # in-memory evaluation ---------------------------------------------------------
    def _join_rows(
        self,
        select: Select,
        analyzed: AnalyzedSelect,
        params: tuple[Any, ...],
    ) -> tuple[list[Row], int]:
        examined = 0
        # derived tables first
        materialized: dict[str, list[Row]] = {}
        for item in select.from_items:
            if isinstance(item, DerivedTable):
                sub_rows = self._execute_select(item.select, params)
                materialized[item.alias] = [
                    {(item.alias, k): v for k, v in r.items()} for r in sub_rows
                ]
                examined += len(sub_rows)

        # per-binding filtered base rows
        def binding_rows(binding: str) -> list[Row]:
            nonlocal examined
            rel = analyzed.bindings[binding]
            if rel is None:
                return materialized[binding]
            table = self.tables[rel]
            eq = [
                (f_.attr, self._const(f_.value, params))
                for f_ in analyzed.filters
                if f_.binding == binding and f_.op == "="
                and isinstance(f_.value, (Literal, Param))
            ]
            if eq and (table.has_index(eq[0][0]) or eq[0][0] == table.key_attrs[0]):
                candidates = list(table.lookup(eq[0][0], eq[0][1]))
            else:
                candidates = list(table.scan())
            examined += len(candidates)
            out = []
            for raw in candidates:
                if all(raw.get(a) == v for a, v in eq):
                    out.append({(binding, a): v for a, v in raw.items()})
            return out

        bindings = list(analyzed.bindings)
        current = binding_rows(bindings[0])
        joined = [bindings[0]]
        remaining = bindings[1:]
        while remaining:
            nxt = next(
                (
                    b
                    for b in remaining
                    if any(
                        j.is_equi and j.involves(b)
                        and (j.left_binding in joined or j.right_binding in joined)
                        for j in analyzed.joins
                    )
                ),
                remaining[0],
            )
            remaining.remove(nxt)
            right = binding_rows(nxt)
            keys = []
            for j in analyzed.joins:
                if not j.is_equi:
                    continue
                if j.left_binding in joined and j.right_binding == nxt:
                    keys.append(((j.left_binding, j.left_attr), (nxt, j.right_attr)))
                elif j.right_binding in joined and j.left_binding == nxt:
                    keys.append(((j.right_binding, j.right_attr), (nxt, j.left_attr)))
            if keys:
                index: dict[tuple, list[Row]] = {}
                for r in right:
                    index.setdefault(tuple(r.get(k[1]) for k in keys), []).append(r)
                merged = []
                for l in current:
                    probe = tuple(l.get(k[0]) for k in keys)
                    for r in index.get(probe, ()):
                        m = dict(l)
                        m.update(r)
                        merged.append(m)
                current = merged
            else:  # cartesian (filtered later by theta conditions)
                current = [
                    {**l, **r} for l in current for r in right
                ]
            examined += len(current)
            joined.append(nxt)

        # residual predicates: theta joins and non-equality filters
        def keep(row: Row) -> bool:
            for j in analyzed.joins:
                lv = row.get((j.left_binding, j.left_attr))
                rv = row.get((j.right_binding, j.right_attr))
                if lv is None or rv is None:
                    return False
                ok = {
                    "=": lv == rv, "<>": lv != rv, "<": lv < rv,
                    "<=": lv <= rv, ">": lv > rv, ">=": lv >= rv,
                }[j.op]
                if not ok:
                    return False
            for f_ in analyzed.filters:
                if f_.op == "=" and isinstance(f_.value, (Literal, Param)):
                    continue  # applied at access time
                if isinstance(f_.value, ColumnRef):
                    continue
                v = row.get((f_.binding, f_.attr))
                c = self._const(f_.value, params)
                if v is None or c is None:
                    return False
                ok = {
                    "=": v == c, "<>": v != c, "<": v < c,
                    "<=": v <= c, ">": v > c, ">=": v >= c,
                }[f_.op]
                if not ok:
                    return False
            return True

        return [r for r in current if keep(r)], examined

    def _finalize(
        self,
        select: Select,
        analyzed: AnalyzedSelect,
        rows: list[Row],
        params: tuple[Any, ...],
    ) -> list[dict[str, Any]]:
        def lookup(row: Row, expr) -> Any:
            if isinstance(expr, ColumnRef):
                if expr.qualifier is not None:
                    return row.get((expr.qualifier, expr.name))
                hits = [v for (b, a), v in row.items() if a == expr.name]
                return hits[0] if hits else None
            if isinstance(expr, FuncCall):
                return row.get(("", str(expr)))
            raise PlanError(f"unsupported expression {expr}")

        aggregates = [p for p in select.projections if isinstance(p, FuncCall)]
        for o in select.order_by:
            if isinstance(o.expr, FuncCall) and str(o.expr) not in {
                str(a) for a in aggregates
            }:
                aggregates.append(o.expr)
        if select.group_by or aggregates:
            groups: dict[tuple, list[Row]] = {}
            for row in rows:
                key = tuple(lookup(row, g) for g in select.group_by)
                groups.setdefault(key, []).append(row)
            out_rows: list[Row] = []
            for key, members in groups.items():
                out: Row = {}
                for g, v in zip(select.group_by, key):
                    b = g.qualifier
                    if b is None:
                        b, _ = next(
                            ((bb, aa) for (bb, aa) in members[0] if aa == g.name),
                            ("", g.name),
                        )
                    out[(b, g.name)] = v
                for agg in aggregates:
                    if agg.star:
                        out[("", str(agg))] = len(members)
                        continue
                    vals = [lookup(m, agg.args[0]) for m in members]
                    vals = [v for v in vals if v is not None]
                    fn = agg.name
                    out[("", str(agg))] = (
                        len(vals) if fn == "COUNT"
                        else sum(vals) if fn == "SUM" and vals
                        else min(vals) if fn == "MIN" and vals
                        else max(vals) if fn == "MAX" and vals
                        else (sum(vals) / len(vals)) if fn == "AVG" and vals
                        else None
                    )
                out_rows.append(out)
            rows = out_rows

        if select.order_by:
            import functools

            def cmp(a: Row, b: Row) -> int:
                for o in select.order_by:
                    av, bv = lookup(a, o.expr), lookup(b, o.expr)
                    if av == bv:
                        continue
                    if av is None:
                        return 1 if o.descending else -1
                    if bv is None:
                        return -1 if o.descending else 1
                    less = av < bv
                    if o.descending:
                        return 1 if less else -1
                    return -1 if less else 1
                return 0

            rows = sorted(rows, key=functools.cmp_to_key(cmp))
        if select.limit is not None:
            rows = rows[: select.limit]

        # shape output
        shaped = []
        for row in rows:
            out: dict[str, Any] = {}
            for p in select.projections:
                if isinstance(p, Star):
                    targets = (
                        [p.qualifier]
                        if p.qualifier is not None
                        else list(analyzed.bindings)
                    )
                    for b in targets:
                        for (bb, a), v in row.items():
                            if bb == b:
                                name = a if a not in out else f"{bb}.{a}"
                                out[name] = v
                elif isinstance(p, ColumnRef):
                    out[p.name] = lookup(row, p)
                elif isinstance(p, FuncCall):
                    out[str(p)] = row.get(("", str(p)))
            shaped.append(out)
        return shaped
