"""A minimal Tephra: snapshot handout, optimistic conflict detection.

The real Tephra assigns transaction ids from a timestamp oracle, tracks
in-progress and invalid transactions, and rejects commits whose change
sets overlap transactions committed after the snapshot was taken. We
keep exactly that bookkeeping (it is what the concurrency tests need)
and charge the begin/commit round trips that dominate the paper's write
latencies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import TransactionAbortedError, TransactionConflictError
from repro.sim.clock import Simulation


@dataclass
class MvccTransaction:
    """A client-held transaction handle."""

    tx_id: int
    snapshot_ts: int
    in_progress: frozenset[int]
    change_set: set[bytes] = field(default_factory=set)
    state: str = "open"  # open | committed | aborted

    def record_write(self, table: str, row_key: bytes) -> None:
        self.change_set.add(table.encode() + b"\x00" + row_key)

    def visible(self, writer_tx_id: int) -> bool:
        """Snapshot visibility: committed before us and not in flight."""
        return writer_tx_id <= self.snapshot_ts and writer_tx_id not in self.in_progress


class TephraServer:
    """Central transaction manager."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._ids = itertools.count(1)
        self.in_progress: set[int] = set()
        self.invalid: set[int] = set()
        self._committed: dict[bytes, int] = {}
        """change-set key -> tx id of latest committed writer."""
        self.commit_count = 0
        self.abort_count = 0
        self.conflict_count = 0
        """Commits rejected by the optimistic check (a subset of
        ``abort_count``); under a scheduled multi-client run these are
        *real* conflicts between overlapping client transactions."""

    # -- lifecycle -----------------------------------------------------------------
    def begin(self, read_only: bool = False) -> MvccTransaction:
        """Start a transaction. Writes pay the server round trip; reads
        use the client-cached snapshot (small refresh cost)."""
        if read_only:
            self.sim.charge(self.sim.cost.mvcc_read_snapshot_ms, "mvcc.snapshot")
        else:
            self.sim.charge(self.sim.cost.mvcc_begin_ms, "mvcc.begin")
        tx_id = next(self._ids)
        tx = MvccTransaction(
            tx_id=tx_id,
            snapshot_ts=tx_id - 1,
            in_progress=frozenset(self.in_progress),
        )
        self.in_progress.add(tx_id)
        return tx

    def can_commit(self, tx: MvccTransaction) -> bool:
        """Optimistic check: no committed writer touched our change set
        after our snapshot."""
        for key in tx.change_set:
            committed_by = self._committed.get(key)
            if committed_by is None:
                continue
            if committed_by > tx.snapshot_ts or committed_by in tx.in_progress:
                return False
        return True

    def commit(self, tx: MvccTransaction) -> None:
        if tx.state != "open":
            raise TransactionAbortedError(f"tx {tx.tx_id} is {tx.state}")
        if tx.change_set:
            self.sim.charge(self.sim.cost.mvcc_commit_ms, "mvcc.commit")
            if not self.can_commit(tx):
                self.conflict_count += 1
                ctx = self.sim.concurrency
                if ctx is not None:
                    ctx.conflict_abort_count += 1
                self.abort(tx)
                raise TransactionConflictError(
                    f"tx {tx.tx_id}: write-write conflict detected at commit"
                )
            for key in tx.change_set:
                self._committed[key] = tx.tx_id
        self.in_progress.discard(tx.tx_id)
        tx.state = "committed"
        self.commit_count += 1

    def abort(self, tx: MvccTransaction) -> None:
        self.in_progress.discard(tx.tx_id)
        if tx.change_set:
            self.invalid.add(tx.tx_id)
        tx.state = "aborted"
        self.abort_count += 1


class TransactionAwareExecutor:
    """Wraps arbitrary statement callables in one MVCC transaction each
    (Phoenix auto-commit mode, as the paper's evaluated systems run)."""

    def __init__(self, server: TephraServer) -> None:
        self.server = server

    def run_read(self, fn: Callable[[], Any]) -> Any:
        tx = self.server.begin(read_only=True)
        try:
            result = fn()
        except BaseException:
            self.server.abort(tx)
            raise
        self.server.commit(tx)
        return result

    def run_write(
        self,
        fn: Callable[[MvccTransaction], Any],
    ) -> Any:
        """``fn`` receives the transaction and must record its change set."""
        tx = self.server.begin(read_only=False)
        try:
            result = fn(tx)
        except BaseException:
            self.server.abort(tx)
            raise
        self.server.commit(tx)
        return result
