"""Tephra-style MVCC transactions (paper Sec. II-D).

Phoenix gains multi-statement transactions through a central transaction
server: every write transaction pays a begin round trip and a
canCommit/commit round trip with optimistic conflict detection — the
800-900 ms per-statement overhead the paper measures (Sec. IX-D4).
Reads run against a snapshot (cached client-side) and pay a per-cell
visibility check against the snapshot's exclusion list.
"""

from repro.mvcc.tephra import MvccTransaction, TephraServer, TransactionAwareExecutor

__all__ = ["MvccTransaction", "TephraServer", "TransactionAwareExecutor"]
