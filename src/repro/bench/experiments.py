"""Experiment runners, one per table/figure of the paper's evaluation."""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.bench.harness import (
    ExperimentResult,
    Series,
    Stat,
    ratio_of_means,
    render_table,
    summarize,
)
from repro.bench.tpcw_lab import SYSTEM_NAMES, TpcwLab
from repro.config import (
    ClusterConfig,
    CostModel,
    DEFAULT_COST_MODEL,
    ReplicationConfig,
    ServingConfig,
)
from repro.errors import ServerOverloadedError
from repro.hbase.client import HBaseClient, HTable
from repro.hbase.cluster import HBaseCluster, RegionBalancer
from repro.sim.clock import Simulation
from repro.sim.faults import (
    FAMILY,
    QUALIFIER,
    ChaosHistory,
    FaultConfig,
    check_invariants,
    run_chaos_cell,
)
from repro.sim.rng import derive_rng
from repro.tpcw.serving import ServingWorkload, ZipfianPopulation
from repro.sim.scheduler import DeterministicScheduler, percentile, run_transaction
from repro.synergy.locks import LockBatch
from repro.synergy.system import SynergySystem
from repro.tpcw.microbench import (
    MICRO_Q1_BASE,
    MICRO_Q1_VIEW,
    MICRO_Q2_BASE,
    MICRO_Q2_VIEW,
    MICRO_ROOTS,
    MicrobenchDataGenerator,
    micro_schema,
    micro_workload,
)
from repro.hbase.ops import Get, Put, Scan
from repro.tpcw.queries import JOIN_QUERIES
from repro.tpcw.writes import WRITE_STATEMENTS


# ------------------------------------------------------------ storage perf
def run_storage_perf(
    num_rows: int = 50_000,
    repetitions: int = 5,
    value_bytes: int = 16,
    seed: int = 20170904,
) -> ExperimentResult:
    """Wall-clock cost of the simulated HBase layer itself.

    Loads ``num_rows`` shuffled-key rows into a single region with
    ``put_batch`` (crossing one memstore flush at the default threshold)
    and then streams a full-table scan. Both phases report *wall-clock*
    seconds — the simulator's own execution cost, which is what the
    LSM-engine work optimizes — alongside the simulated latency, which
    must stay constant across engine rewrites.
    """
    result = ExperimentResult(
        "StoragePerf",
        f"HBase layer wall-clock: load + full scan of {num_rows} rows",
        "phase",
        unit="s (wall)",
    )
    result.x_values = ["load", "scan"]
    wall = result.add_series("Wall-clock (s)")
    best = result.add_series("Best wall-clock (s)")
    virt = result.add_series("Simulated (ms)")
    load_wall, scan_wall = [], []
    load_virt, scan_virt = [], []
    for rep in range(repetitions):
        sim = Simulation(seed=seed + rep)
        client = HBaseClient(HBaseCluster(sim))
        table = client.create_table("perf")  # one region, default flush
        keys = [b"%010d" % i for i in range(num_rows)]
        random.Random(seed + rep).shuffle(keys)
        payload = b"x" * value_bytes
        puts = []
        for key in keys:
            p = Put(key)
            p.add(b"cf", b"v", payload)
            puts.append(p)

        sw = sim.stopwatch()
        t0 = time.perf_counter()
        table.put_batch(puts)
        load_wall.append(time.perf_counter() - t0)
        load_virt.append(sw.stop())

        sw = sim.stopwatch()
        t0 = time.perf_counter()
        scanned = sum(1 for _ in table.scan(Scan()))
        scan_wall.append(time.perf_counter() - t0)
        scan_virt.append(sw.stop())
        if scanned != num_rows:  # pragma: no cover - correctness guard
            raise AssertionError(f"scan returned {scanned} of {num_rows} rows")
    wall.set("load", summarize(load_wall))
    wall.set("scan", summarize(scan_wall))
    # min across reps is the noise-robust wall-clock estimate (what a
    # quiet machine would measure); speedup comparisons should use it
    best.set("load", Stat(min(load_wall), 0.0, len(load_wall)))
    best.set("scan", Stat(min(scan_wall), 0.0, len(scan_wall)))
    virt.set("load", summarize(load_virt))
    virt.set("scan", summarize(scan_virt))
    result.note(
        f"{num_rows} rows, {value_bytes}-byte values, shuffled keys, "
        f"single region, {repetitions} repetitions"
    )
    return result


# --------------------------------------------------------------------- Fig. 10
def run_fig10(
    scales: tuple[int, ...] = (50, 500, 5000),
    repetitions: int = 10,
    seed: int = 20170904,
    jitter_fraction: float = 0.02,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Micro-benchmark: view scan vs join algorithm (Fig. 10a/b).

    Paper anchors (at 50k customers): view scan 6x faster for Q1 and
    11.7x faster for Q2. The paper scales 500..50k; the default here is
    one decade lower (pure-Python store) — pass ``scales=(500, 5000,
    50000)`` to match the paper exactly.
    """
    say = progress or (lambda _m: None)
    results = {
        "Q1": ExperimentResult(
            "Fig10a", "Micro-benchmark Q1 (Customer x Orders)",
            "customers",
        ),
        "Q2": ExperimentResult(
            "Fig10b", "Micro-benchmark Q2 (Customer x Orders x Order_line)",
            "customers",
        ),
    }
    for r in results.values():
        r.x_values = list(scales)
        r.add_series("View Scan")
        r.add_series("Join Algorithm")

    for scale in scales:
        say(f"[fig10] populating micro store at {scale} customers")
        system = SynergySystem(
            micro_schema(),
            micro_workload(),
            MICRO_ROOTS,
            sim=Simulation(seed=seed, jitter_fraction=jitter_fraction),
        )
        gen = MicrobenchDataGenerator(scale, seed=seed)
        for relation, row in gen.all_rows():
            system.load_row(relation, row)
        system.finish_load()
        for query_id, base_sql, view_sql in (
            ("Q1", MICRO_Q1_BASE, MICRO_Q1_VIEW),
            ("Q2", MICRO_Q2_BASE, MICRO_Q2_VIEW),
        ):
            base_samples, view_samples = [], []
            for _ in range(repetitions):
                _, ms = system.timed(view_sql)
                view_samples.append(ms)
                _, ms = system.timed(base_sql)
                base_samples.append(ms)
            results[query_id].series[0].set(scale, summarize(view_samples))
            results[query_id].series[1].set(scale, summarize(base_samples))
        del system
    for query_id, r in results.items():
        top = scales[-1]
        join = r.get("Join Algorithm", top)
        view = r.get("View Scan", top)
        if join and view and view.mean:
            r.note(
                f"at {top} customers the view scan is "
                f"{join.mean / view.mean:.1f}x faster than the join "
                f"(paper: {'6.0' if query_id == 'Q1' else '11.7'}x at 50k)"
            )
    return results


# --------------------------------------------------------------------- Fig. 11
def run_fig11(
    lock_counts: tuple[int, ...] = (10, 100, 1000),
    repetitions: int = 10,
    seed: int = 20170904,
    jitter_fraction: float = 0.02,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> ExperimentResult:
    """Two-phase row-locking overhead (Fig. 11).

    Paper anchors: 342 / 571 / 2182 ms for 10 / 100 / 1000 locks."""
    result = ExperimentResult(
        "Fig11", "Row-locking overhead vs number of locks", "locks"
    )
    result.x_values = list(lock_counts)
    series = result.add_series("Overhead")
    for n in lock_counts:
        samples = []
        for rep in range(repetitions):
            sim = Simulation(
                cost=cost, seed=seed + rep, jitter_fraction=jitter_fraction
            )
            client = HBaseClient(HBaseCluster(sim))
            batch = LockBatch(client)
            samples.append(batch.run(n))
        series.set(n, summarize(samples))
    result.note("paper: 342 / 571 / 2182 ms for 10 / 100 / 1000 locks")
    return result


# --------------------------------------------------------------------- Fig. 12
def run_fig12(lab: TpcwLab, progress=None) -> ExperimentResult:
    """TPC-W join queries across the five systems (Fig. 12)."""
    measurements = lab.measure_all(progress)
    result = ExperimentResult(
        "Fig12", "TPC-W join query response times", "query"
    )
    result.x_values = list(JOIN_QUERIES)
    for name in SYSTEM_NAMES:
        series = result.add_series(name)
        m = measurements[name]
        for qid in JOIN_QUERIES:
            if qid in m.unsupported:
                series.set(qid, None)
            else:
                series.set(qid, summarize(m.query_times[qid]))
    for other, paper in (("MVCC-UA", 19.5), ("MVCC-A", 6.2), ("Baseline", 28.2)):
        factor = ratio_of_means(result, other, "Synergy")
        result.note(
            f"joins in Synergy are {factor:.1f}x faster than {other} "
            f"on average (paper: {paper}x)"
        )
    slowdown = ratio_of_means(result, "Synergy", "VoltDB")
    result.note(
        f"Synergy is {slowdown:.1f}x slower than VoltDB on the joins "
        "VoltDB supports (paper: 11x)"
    )
    result.note("X = unsupported under every VoltDB partitioning scheme")
    return result


# --------------------------------------------------------------------- Fig. 13
def run_fig13() -> str:
    """The mechanism matrix (Fig. 13) — configuration, not measurement."""
    from repro.systems import (
        BaselineSystem,
        MvccASystem,
        MvccUASystem,
        SynergyEvaluatedSystem,
        VoltDBEvaluatedSystem,
    )

    rows = []
    for cls in (
        VoltDBEvaluatedSystem,
        SynergyEvaluatedSystem,
        MvccASystem,
        MvccUASystem,
        BaselineSystem,
    ):
        d = cls.description
        rows.append([d.name, d.mv_selection, d.concurrency_control])
    return render_table(
        ["System", "Materialized Views Selection", "Concurrency Control"], rows
    )


# --------------------------------------------------------------------- Fig. 14
def run_fig14(lab: TpcwLab, progress=None) -> ExperimentResult:
    """TPC-W write statements across the five systems (Fig. 14)."""
    measurements = lab.measure_all(progress)
    result = ExperimentResult(
        "Fig14", "TPC-W write statement response times", "write"
    )
    result.x_values = list(WRITE_STATEMENTS)
    for name in SYSTEM_NAMES:
        series = result.add_series(name)
        m = measurements[name]
        for wid in WRITE_STATEMENTS:
            if wid in m.unsupported:
                series.set(wid, None)
            else:
                series.set(wid, summarize(m.write_times[wid]))
    for other, paper in (("MVCC-UA", 9.0), ("MVCC-A", 8.6), ("Baseline", 8.6)):
        factor = ratio_of_means(result, other, "Synergy")
        result.note(
            f"writes in Synergy are {factor:.1f}x less expensive than "
            f"{other} on average (paper: {paper}x)"
        )
    factor = ratio_of_means(result, "Synergy", "VoltDB")
    result.note(
        f"Synergy writes are {factor:.1f}x more expensive than VoltDB "
        "(paper: 9.4x)"
    )
    return result


# ------------------------------------------------------------ concurrency
#: The four systems of the throughput-vs-client-count experiment.
CONCURRENCY_SYSTEMS = ("Synergy", "MVCC-A", "MVCC-UA", "VoltDB")


def _concurrency_txns(
    generator,
    rng,
    txns_per_client: int,
    hot_items: int,
    hot_customers: int,
    hot_carts: int,
) -> list[list[tuple[str, str, tuple]]]:
    """Pre-generate one client's transaction mix: each op is
    ``(kind, ref, params)`` where kind 'q' references a workload query
    id (resolved to the system's possibly-rewritten statement) and 'w'
    carries literal write SQL. Parameters are drawn from small hot sets
    so clients genuinely collide (lock waits, MVCC conflicts)."""
    txns: list[list[tuple[str, str, tuple]]] = []
    for _ in range(txns_per_client):
        r = float(rng.random())
        i_id = int(rng.integers(1, hot_items + 1))
        c_id = int(rng.integers(1, hot_customers + 1))
        sc_id = int(rng.integers(1, hot_carts + 1))
        if r < 0.35:
            # product page + admin restock on a hot item: in Synergy the
            # Item update locks the item's Author root row
            txns.append([
                ("q", "Q6", (i_id,)),
                ("w", WRITE_STATEMENTS["W9"],
                 (int(rng.integers(10, 100)), i_id)),
            ])
        elif r < 0.60:
            # customer profile update: Customer root lock / row conflict
            txns.append([
                ("w", WRITE_STATEMENTS["W13"],
                 (round(float(rng.uniform(0, 500)), 2),
                  round(float(rng.uniform(0, 5000)), 2),
                  round(float(rng.uniform(0, 7200)), 2), c_id)),
            ])
        elif r < 0.80:
            # cart touch: Shopping_cart sits outside every rooted tree
            # (no Synergy lock) but still conflicts under MVCC
            txns.append([
                ("w", WRITE_STATEMENTS["W11"],
                 (round(float(rng.uniform(0, 10 ** 6)), 2), sc_id)),
            ])
        else:
            # read-only: most recent order of a hot customer
            txns.append([("q", "Q2", (generator.customer_uname(c_id),))])
    return txns


def _client_programs(system, lab, scheduler, clients, txn_specs, seed, label):
    """Wire one session + pre-generated transaction program per client."""
    for i in range(clients):
        rng = derive_rng(seed, f"{label}/client-{i}")
        txns = _concurrency_txns(lab.generator, rng, **txn_specs)
        statements = [
            [
                (system.statement(ref) if kind == "q" else ref, params)
                for kind, ref, params in txn
            ]
            for txn in txns
        ]
        session = system.open_session(f"client-{i}")

        def program(client, session=session, statements=statements):
            for txn in statements:
                yield from run_transaction(client, session, txn)

        scheduler.add_client(f"client-{i}", program)


def _scheduled_cell(name, clients, txn_specs, num_customers, seed, label):
    """Build one populated system and drive ``clients`` virtual clients
    through the deterministic scheduler — the shared harness cell behind
    both :func:`run_concurrency` and :func:`concurrency_smoke`."""
    lab = TpcwLab(
        num_customers=num_customers, repetitions=1, seed=seed,
        jitter_fraction=0.0,
    )
    system = lab.build_system(name)
    lab.populate(system)
    scheduler = DeterministicScheduler(system.sim)
    _client_programs(system, lab, scheduler, clients, txn_specs, seed, label)
    return scheduler.run()


def run_concurrency(
    client_counts: tuple[int, ...] = (1, 4, 16, 64),
    txns_per_client: int = 8,
    num_customers: int = 40,
    seed: int = 20170904,
    hot_items: int = 4,
    hot_customers: int = 4,
    hot_carts: int = 2,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Throughput vs number of concurrent clients, per system.

    Each (system, client count) cell builds a fresh populated system and
    drives N virtual clients through the deterministic cooperative
    scheduler (``repro.sim.scheduler``): closed loop, zero think time,
    ``txns_per_client`` transactions each, parameters drawn from small
    hot sets so clients collide. Reported per cell: committed
    transactions per virtual second, p50/p99 transaction response time
    (including lock waits, queue waits and abort retries), and the abort
    rate. Everything is derived from virtual time and seeded draws, so
    two runs with the same arguments are bit-identical.
    """
    say = progress or (lambda _m: None)
    results = {
        "throughput": ExperimentResult(
            "ConcurrencyThroughput",
            "Committed transactions per second vs concurrent clients",
            "clients",
            unit="txn/s (virtual)",
        ),
        "p50": ExperimentResult(
            "ConcurrencyP50",
            "Median transaction response time vs concurrent clients",
            "clients",
        ),
        "p99": ExperimentResult(
            "ConcurrencyP99",
            "99th percentile transaction response time vs concurrent clients",
            "clients",
        ),
        "abort_rate": ExperimentResult(
            "ConcurrencyAbortRate",
            "Transaction abort rate vs concurrent clients",
            "clients",
            unit="fraction",
        ),
    }
    series = {
        metric: {name: r.add_series(name) for name in CONCURRENCY_SYSTEMS}
        for metric, r in results.items()
    }
    for r in results.values():
        r.x_values = list(client_counts)

    txn_specs = dict(
        txns_per_client=txns_per_client, hot_items=hot_items,
        hot_customers=hot_customers, hot_carts=hot_carts,
    )
    contention_notes: list[str] = []
    for name in CONCURRENCY_SYSTEMS:
        for n in client_counts:
            say(f"[concurrency] {name}: {n} clients x {txns_per_client} txns")
            # the per-client RNG label excludes both the client count
            # and the system name, so client i runs the same transaction
            # mix in every cell of the grid and the scaling curves
            # compare like against like across systems
            report = _scheduled_cell(
                name, n, txn_specs, num_customers, seed, "concurrency"
            )
            rts = report.response_times
            committed, aborted = report.committed, report.aborted
            # degenerate cells (nothing committed) report 0.0, not NaN:
            # bare NaN tokens would make the emitted JSON unparseable
            throughput = (
                committed / (report.makespan_ms / 1000.0)
                if report.makespan_ms > 0 else 0.0
            )
            attempts = committed + aborted
            series["throughput"][name].set(n, Stat(throughput, 0.0, 1))
            series["p50"][name].set(
                n, Stat(percentile(rts, 0.50) if rts else 0.0, 0.0, committed))
            series["p99"][name].set(
                n, Stat(percentile(rts, 0.99) if rts else 0.0, 0.0, committed))
            series["abort_rate"][name].set(
                n, Stat(aborted / attempts if attempts else 0.0, 0.0, attempts))
            if n == client_counts[-1]:
                failed = sum(c["failed"] for c in report.clients.values())
                contention_notes.append(
                    f"{name} @ {n} clients: {report.lock_wait_count} lock "
                    f"waits, {report.serial_wait_count} serial waits, "
                    f"{report.conflict_abort_count} MVCC conflicts, "
                    f"{failed} gave up"
                )
    config_note = (
        f"{num_customers} customers, {txns_per_client} txns/client, hot sets: "
        f"{hot_items} items / {hot_customers} customers / {hot_carts} carts, "
        f"seed {seed}; closed loop, zero think time"
    )
    for r in results.values():
        r.note(config_note)
        for note in contention_notes:
            r.note(note)
    return results


def concurrency_smoke(
    clients: int = 8,
    txns_per_client: int = 6,
    num_customers: int = 20,
    seed: int = 20170904,
) -> dict[str, int]:
    """CI smoke: run Synergy (lock waits) and MVCC-A (conflict aborts)
    at high contention; returns the aggregated contention counters."""
    out = {"lock_waits": 0, "conflict_aborts": 0, "committed": 0, "failed": 0}
    txn_specs = dict(
        txns_per_client=txns_per_client, hot_items=2, hot_customers=2,
        hot_carts=1,
    )
    for name in ("Synergy", "MVCC-A"):
        report = _scheduled_cell(
            name, clients, txn_specs, num_customers, seed, "smoke"
        )
        out["lock_waits"] += report.lock_wait_count
        out["conflict_aborts"] += report.conflict_abort_count
        out["committed"] += report.committed
        out["failed"] += sum(c["failed"] for c in report.clients.values())
    return out


# ------------------------------------------------------------ scale-out
def _scaleout_ops(rng, ops_per_client: int, key_space: int, value_bytes: int):
    """One client's deterministic op mix: 70% point gets, 20% puts,
    10% short range scans, keys drawn uniformly from the loaded space."""
    payload = b"y" * value_bytes
    ops = []
    for _ in range(ops_per_client):
        r = float(rng.random())
        key = b"%08d" % int(rng.integers(0, key_space))
        if r < 0.70:
            ops.append(("get", key, None))
        elif r < 0.90:
            ops.append(("put", key, payload))
        else:
            ops.append(("scan", key, None))
    return ops


def _scaleout_cell(
    num_servers: int,
    clients: int,
    ops_per_client: int,
    preload_rows: int,
    split_threshold: int,
    value_bytes: int,
    seed: int,
):
    """Build one cluster at ``num_servers``, grow the table through
    auto-splits, balance it, then drive ``clients`` virtual clients.
    Returns (report, region_count, distribution)."""
    sim = Simulation(seed=seed)
    config = ClusterConfig(
        num_region_servers=num_servers,
        region_split_threshold_bytes=split_threshold,
        seed=seed,
    )
    cluster = HBaseCluster(sim, config)
    client = HBaseClient(cluster)
    table = client.create_table("scale")
    payload = b"x" * value_bytes
    puts = []
    for i in range(preload_rows):
        p = Put(b"%08d" % i)
        p.add(b"cf", b"v", payload)
        puts.append(p)
    table.put_batch(puts)  # crosses the split threshold repeatedly
    RegionBalancer(cluster, policy="load-aware").rebalance()
    sim.reset_clock()

    scheduler = DeterministicScheduler(sim)
    for i in range(clients):
        # the RNG label excludes both the server and the client count,
        # so client i replays the same op mix in every cell of the grid
        rng = derive_rng(seed, f"scaleout/client-{i}")
        ops = _scaleout_ops(rng, ops_per_client, preload_rows, value_bytes)
        handle = HTable(cluster, "scale")  # per-client location cache

        def program(vc, handle=handle, ops=ops):
            for kind, key, payload in ops:
                yield "op"
                started = vc.clock.now_ms
                if kind == "get":
                    handle.get(Get(key))
                elif kind == "put":
                    p = Put(key)
                    p.add(b"cf", b"v", payload)
                    handle.put(p)
                else:
                    for _ in handle.scan(Scan(start_row=key, limit=8)):
                        pass
                vc.stats.committed += 1
                vc.stats.response_times.append(vc.clock.now_ms - started)

        scheduler.add_client(f"client-{i}", program)
    report = scheduler.run()
    desc = cluster.descriptor("scale")
    return report, len(desc.regions), cluster.region_distribution()


def run_scaleout(
    server_counts: tuple[int, ...] = (1, 2, 4, 8),
    client_counts: tuple[int, ...] = (4, 16),
    ops_per_client: int = 60,
    preload_rows: int = 2048,
    split_threshold: int = 8 * 1024,
    value_bytes: int = 16,
    seed: int = 20170904,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Aggregate throughput and tail latency vs region-server count.

    Every cell loads the same table through the size-triggered split
    path (one region recursively splits into dozens), rebalances the
    daughters across the cell's servers with the load-aware policy, and
    drives N closed-loop virtual clients through the deterministic
    scheduler. Operations queue on the region server hosting the
    addressed region, so the throughput curve directly measures how
    much parallelism the region layout exposes. Everything derives from
    virtual time and seeded draws: reruns are byte-identical.
    """
    say = progress or (lambda _m: None)
    results = {
        "throughput": ExperimentResult(
            "ScaleoutThroughput",
            "Aggregate committed ops per second vs region servers",
            "region servers",
            unit="ops/s (virtual)",
        ),
        "p99": ExperimentResult(
            "ScaleoutP99",
            "99th percentile operation response time vs region servers",
            "region servers",
        ),
    }
    for r in results.values():
        r.x_values = list(server_counts)
    series = {
        metric: {
            n: r.add_series(f"{n} clients") for n in client_counts
        }
        for metric, r in results.items()
    }
    layout_notes: list[str] = []
    for clients in client_counts:
        for servers in server_counts:
            say(f"[scaleout] {servers} servers x {clients} clients")
            report, regions, distribution = _scaleout_cell(
                servers, clients, ops_per_client, preload_rows,
                split_threshold, value_bytes, seed,
            )
            ops = report.committed
            throughput = (
                ops / (report.makespan_ms / 1000.0)
                if report.makespan_ms > 0 else 0.0
            )
            rts = report.response_times
            series["throughput"][clients].set(servers, Stat(throughput, 0.0, 1))
            series["p99"][clients].set(
                servers, Stat(percentile(rts, 0.99) if rts else 0.0, 0.0, ops)
            )
            if clients == client_counts[-1]:
                spread = (
                    f"{min(distribution.values())}-{max(distribution.values())}"
                )
                layout_notes.append(
                    f"{servers} servers: {regions} regions after auto-split "
                    f"({spread} per server), {report.serial_wait_count} "
                    f"server-queue waits @ {clients} clients"
                )
    config_note = (
        f"{preload_rows} preloaded rows, {split_threshold}B split threshold, "
        f"{ops_per_client} ops/client (70/20/10 get/put/scan), seed {seed}; "
        "closed loop, zero think time, load-aware balancing"
    )
    for r in results.values():
        r.note(config_note)
        for note in layout_notes:
            r.note(note)
    return results


# ------------------------------------------------------------ fault injection
def run_faults(
    cycle_counts: tuple[int, ...] = (0, 1, 2, 4),
    client_counts: tuple[int, ...] = (4, 8),
    ops_per_client: int = 64,
    num_servers: int = 3,
    preload_rows: int = 240,
    chaos_horizon_ms: float = 160.0,
    seed: int = 20170904,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Chaos sweep: crash rate (crash/recover cycles) x client count.

    Every cell preloads the same pre-split table and drives N chaos
    clients (put/get/scan with bounded failover retry) while the
    deterministic fault injector crashes, fails over and restarts
    region servers at seeded virtual timestamps. The requested cycle
    count is compressed into a fixed ``chaos_horizon_ms`` window, so
    the x-axis is a genuine crash *rate*: more cycles = denser faults
    over the same workload, not extra faults after it ended. Reported
    per cell: committed ops per virtual second, p99 op response time
    (failover stalls included), and the mean client-observed recovery
    stall. A cell with any durability/scan-consistency invariant
    violation aborts the experiment — chaos is a correctness gate, not
    just a perf curve. Everything derives from virtual time and seeded
    draws: reruns are byte-identical.
    """
    say = progress or (lambda _m: None)
    results = {
        "throughput": ExperimentResult(
            "FaultsThroughput",
            "Committed ops per second vs injected crash/recover cycles",
            "crash cycles",
            unit="ops/s (virtual)",
        ),
        "p99": ExperimentResult(
            "FaultsP99",
            "99th percentile op response time vs injected crash cycles",
            "crash cycles",
        ),
        "recovery": ExperimentResult(
            "FaultsRecovery",
            "Mean client-observed failover stall vs injected crash cycles",
            "crash cycles",
        ),
    }
    for r in results.values():
        r.x_values = list(cycle_counts)
    series = {
        metric: {n: r.add_series(f"{n} clients") for n in client_counts}
        for metric, r in results.items()
    }
    chaos_notes: list[str] = []
    for clients in client_counts:
        for cycles in cycle_counts:
            say(f"[faults] {cycles} crash cycles x {clients} clients")
            run = run_chaos_cell(
                num_servers=num_servers,
                clients=clients,
                ops_per_client=ops_per_client,
                preload_rows=preload_rows,
                fault_config=FaultConfig(
                    cycles=cycles,
                    first_crash_ms=25.0,
                    crash_interval_ms=chaos_horizon_ms / max(cycles, 1),
                ),
                seed=seed,
            )
            if run.violations:
                raise RuntimeError(
                    f"chaos cell ({cycles} cycles, {clients} clients) "
                    f"violated invariants: {run.violations}"
                )
            report = run.report
            throughput = (
                report.committed / (report.makespan_ms / 1000.0)
                if report.makespan_ms > 0 else 0.0
            )
            rts = report.response_times
            stalls = run.history.stalls_ms
            series["throughput"][clients].set(
                cycles, Stat(throughput, 0.0, 1)
            )
            series["p99"][clients].set(
                cycles,
                Stat(percentile(rts, 0.99) if rts else 0.0, 0.0, len(rts)),
            )
            series["recovery"][clients].set(
                cycles,
                Stat(
                    sum(stalls) / len(stalls) if stalls else 0.0,
                    0.0,
                    len(stalls),
                ),
            )
            if clients == client_counts[-1]:
                h = run.history
                chaos_notes.append(
                    f"{cycles} cycles @ {clients} clients: {h.crash_count} "
                    f"crashes, {h.regions_recovered} regions recovered, "
                    f"{h.failover_retries} failover retries, "
                    f"{len(stalls)} stalled ops, 0 invariant violations"
                )
    config_note = (
        f"{num_servers} servers, {preload_rows} preloaded rows, "
        f"{ops_per_client} ops/client (55/30/15 put/get/scan), seed {seed}; "
        "closed loop, bounded backoff-and-retry failover"
    )
    for r in results.values():
        r.note(config_note)
        for note in chaos_notes:
            r.note(note)
    return results


def faults_smoke(
    clients: int = 8,
    cycles: int = 3,
    ops_per_client: int = 32,
    seed: int = 20170904,
) -> dict[str, int]:
    """CI smoke: one high-contention chaos cell; returns the fault and
    invariant counters (the job asserts real crash/recover cycles were
    ridden out with zero violations)."""
    run = run_chaos_cell(
        clients=clients,
        ops_per_client=ops_per_client,
        fault_config=FaultConfig(cycles=cycles),
        seed=seed,
    )
    return {
        "crashes": run.history.crash_count,
        "recoveries": run.history.recover_count + run.quiesce_recoveries,
        "regions_recovered": run.history.regions_recovered,
        "failover_retries": run.history.failover_retries,
        "stalled_ops": len(run.history.stalls_ms),
        "committed": run.report.committed,
        "violations": len(run.violations),
    }


# ------------------------------------------------------------------- serving
SERVING_MODES = ("baseline", "cache", "cache+shed")


def _serving_config(
    mode: str,
    cache_bytes: int,
    queue_ms: float,
    p99_budget_ms: float,
    qos_weights: tuple[tuple[str, float], ...] = (),
) -> ServingConfig:
    """Map a bench mode name onto a :class:`ServingConfig`."""
    if mode == "baseline":
        return ServingConfig()
    if mode == "cache":
        return ServingConfig(row_cache_bytes=cache_bytes)
    if mode == "cache+shed":
        return ServingConfig(
            row_cache_bytes=cache_bytes,
            admission_queue_ms=queue_ms,
            p99_budget_ms=p99_budget_ms,
            qos_weights=qos_weights,
        )
    raise ValueError(f"unknown serving mode {mode!r}")


def _serving_cell(
    clients: int,
    ops_per_client: int,
    mode: str,
    *,
    num_servers: int = 4,
    key_space: int = 2048,
    population: int = 1_000_000,
    zipf_s: float = 1.1,
    read_fraction: float = 0.9,
    value_bytes: int = 96,
    cache_bytes: int = 64 * 1024,
    queue_ms: float = 8.0,
    p99_budget_ms: float = 6.0,
    max_shed_retries: int = 3,
    seed: int = 20170904,
    zipf: ZipfianPopulation | None = None,
) -> dict[str, float | int]:
    """One serving-grid cell: ``clients`` closed-loop virtual clients
    replaying their personal Zipfian streams against a pre-split table
    under one serving ``mode``.

    Sheds surface to the client program as ``ServerOverloadedError``;
    the program backs off ``retry_after_ms * attempt`` (virtual time),
    retries up to ``max_shed_retries`` times, then drops the op. Every
    committed op is recorded into a :class:`ChaosHistory` and the cell
    ends with a full durability / read-oracle invariant check, so the
    cache and admission layers are correctness-gated, not just timed.
    All metrics derive from virtual time and seeded draws: reruns are
    byte-identical.
    """
    serving = _serving_config(mode, cache_bytes, queue_ms, p99_budget_ms)
    sim = Simulation(seed=seed)
    config = ClusterConfig(
        num_region_servers=num_servers, seed=seed, serving=serving
    )
    cluster = HBaseCluster(sim, config)
    client = HBaseClient(cluster)
    regions = num_servers * 2
    split_keys = [
        b"%08d" % (i * key_space // regions) for i in range(1, regions)
    ]
    table = client.create_table("serve", split_keys=split_keys)

    history = ChaosHistory()
    puts = []
    for i in range(key_space):
        row = b"%08d" % i
        value = (b"seed-%08d" % i).ljust(value_bytes, b".")
        p = Put(row)
        p.add(FAMILY, QUALIFIER, value)
        puts.append(p)
        history.record_ack(row, value)
    table.put_batch(puts)
    sim.reset_clock()

    if zipf is None:
        zipf = ZipfianPopulation(population, zipf_s)
    workload = ServingWorkload(zipf, key_space, seed, read_fraction)
    shed_retries = [0]
    dropped = [0]
    scheduler = DeterministicScheduler(sim)
    for i in range(clients):
        # stream label excludes clients/mode: client i replays the same
        # mix in every cell, so modes differ only in serving machinery
        ops = workload.ops_for_client(i, ops_per_client)
        handle = HTable(cluster, "serve")

        def program(vc, handle=handle, ops=ops, client_id=i):
            for op_index, (kind, row) in enumerate(ops):
                yield "op"
                started = vc.clock.now_ms
                attempts = 0
                while True:
                    try:
                        if kind == "get":
                            result = handle.get(Get(row))
                            history.record_get(
                                row,
                                result.value(FAMILY, QUALIFIER)
                                if result is not None else None,
                            )
                        else:
                            value = (
                                b"c%06d-%04d" % (client_id, op_index)
                            ).ljust(value_bytes, b".")
                            p = Put(row)
                            p.add(FAMILY, QUALIFIER, value)
                            handle.put(p)
                            history.record_ack(row, value)
                        vc.stats.committed += 1
                        vc.stats.response_times.append(
                            vc.clock.now_ms - started
                        )
                        break
                    except ServerOverloadedError as shed:
                        attempts += 1
                        shed_retries[0] += 1
                        if attempts > max_shed_retries:
                            dropped[0] += 1
                            vc.stats.failed += 1
                            break
                        vc.clock.advance(shed.retry_after_ms * attempts)
                        yield "shed-backoff"

        scheduler.add_client(f"serve-{i}", program)
    report = scheduler.run()

    violations = check_invariants(history, HTable(cluster, "serve"))
    totals = cluster.serving_stats()["totals"]
    rts = report.response_times
    goodput = (
        report.committed / (report.makespan_ms / 1000.0)
        if report.makespan_ms > 0 else 0.0
    )
    return {
        "mode": mode,
        "clients": clients,
        "committed": report.committed,
        "goodput": goodput,
        "p50": percentile(rts, 0.50) if rts else 0.0,
        "p99": percentile(rts, 0.99) if rts else 0.0,
        "hit_ratio": totals["cache_hit_ratio"],
        "cache_hits": totals["cache_hits"],
        "cache_evictions": totals["cache_evictions"],
        "shed": totals["shed"],
        "shed_rate": totals["shed_rate"],
        "shed_retries": shed_retries[0],
        "dropped": dropped[0],
        "queue_waits": report.serial_wait_count,
        "violations": len(violations),
        "violation_detail": list(violations),
    }


def run_serving(
    client_counts: tuple[int, ...] = (64, 256, 1024),
    ops_per_client: int = 6,
    modes: tuple[str, ...] = SERVING_MODES,
    num_servers: int = 4,
    key_space: int = 2048,
    population: int = 1_000_000,
    zipf_s: float = 1.1,
    cache_bytes: int = 64 * 1024,
    queue_ms: float = 8.0,
    p99_budget_ms: float = 6.0,
    seed: int = 20170904,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Serving sweep: offered load (virtual clients) x serving mode.

    The workload is the million-user Zipfian population folded onto the
    profile key space — the hot head lands on a handful of rows, so one
    region server saturates long before the cluster does. The sweep
    reports, per mode: goodput (committed ops/s, drops excluded), p50
    and p99 response time (shed-retry backoff included), cache hit
    ratio and shed rate. A cell with any durability or read-oracle
    violation aborts the experiment. Reruns are byte-identical.
    """
    say = progress or (lambda _m: None)
    results = {
        "goodput": ExperimentResult(
            "ServingGoodput",
            "Committed ops per second vs offered load (Zipfian users)",
            "virtual clients",
            unit="ops/s (virtual)",
        ),
        "p50": ExperimentResult(
            "ServingP50",
            "Median op response time vs offered load (Zipfian users)",
            "virtual clients",
        ),
        "p99": ExperimentResult(
            "ServingP99",
            "99th percentile op response time vs offered load",
            "virtual clients",
        ),
        "hit_ratio": ExperimentResult(
            "ServingHitRatio",
            "Row-cache hit ratio vs offered load",
            "virtual clients",
            unit="fraction",
        ),
        "shed_rate": ExperimentResult(
            "ServingShedRate",
            "Admission-control shed rate vs offered load",
            "virtual clients",
            unit="fraction",
        ),
    }
    for r in results.values():
        r.x_values = list(client_counts)
    series = {
        metric: {m: r.add_series(m) for m in modes}
        for metric, r in results.items()
    }
    zipf = ZipfianPopulation(population, zipf_s)
    mode_notes: list[str] = []
    for mode in modes:
        for clients in client_counts:
            say(f"[serving] {clients} clients, mode={mode}")
            cell = _serving_cell(
                clients, ops_per_client, mode,
                num_servers=num_servers, key_space=key_space,
                population=population, zipf_s=zipf_s,
                cache_bytes=cache_bytes, queue_ms=queue_ms,
                p99_budget_ms=p99_budget_ms, seed=seed, zipf=zipf,
            )
            if cell["violations"]:
                raise RuntimeError(
                    f"serving cell ({clients} clients, {mode}) violated "
                    f"invariants: {cell['violation_detail']}"
                )
            series["goodput"][mode].set(
                clients, Stat(cell["goodput"], 0.0, 1)
            )
            series["p50"][mode].set(
                clients, Stat(cell["p50"], 0.0, cell["committed"])
            )
            series["p99"][mode].set(
                clients, Stat(cell["p99"], 0.0, cell["committed"])
            )
            series["hit_ratio"][mode].set(
                clients, Stat(cell["hit_ratio"], 0.0, 1)
            )
            series["shed_rate"][mode].set(
                clients, Stat(cell["shed_rate"], 0.0, 1)
            )
            if clients == client_counts[-1]:
                mode_notes.append(
                    f"{mode} @ {clients} clients: p99 {cell['p99']:.2f} ms, "
                    f"goodput {cell['goodput']:.0f} ops/s, hit ratio "
                    f"{cell['hit_ratio']:.3f}, shed {cell['shed']} "
                    f"({cell['shed_rate']:.3f}), dropped {cell['dropped']}, "
                    "0 invariant violations"
                )
    config_note = (
        f"Zipf(s={zipf_s}) over {population} users folded onto "
        f"{key_space} profile rows, {num_servers} servers, "
        f"{ops_per_client} ops/client (90/10 get/put), cache "
        f"{cache_bytes}B, queue bound {queue_ms} ms, p99 budget "
        f"{p99_budget_ms} ms, seed {seed}; closed loop, bounded "
        "shed-retry backoff"
    )
    for r in results.values():
        r.note(config_note)
        for note in mode_notes:
            r.note(note)
    return results


def serving_smoke(
    clients: int = 1024,
    ops_per_client: int = 4,
    seed: int = 20170904,
) -> dict[str, float | int]:
    """CI smoke: one overloaded serving cell per mode; returns the
    counters the job asserts on (shedding engaged, cache hit ratio
    positive, shed p99 no worse than unshed p99, goodput within 10%,
    zero invariant violations)."""
    zipf = ZipfianPopulation()
    cells = {
        mode: _serving_cell(
            clients, ops_per_client, mode, seed=seed, zipf=zipf
        )
        for mode in SERVING_MODES
    }
    return {
        "clients": clients,
        "committed_baseline": cells["baseline"]["committed"],
        "committed_shed": cells["cache+shed"]["committed"],
        "goodput_baseline": cells["baseline"]["goodput"],
        "goodput_cache": cells["cache"]["goodput"],
        "goodput_shed": cells["cache+shed"]["goodput"],
        "p99_baseline": cells["baseline"]["p99"],
        "p99_cache": cells["cache"]["p99"],
        "p99_shed": cells["cache+shed"]["p99"],
        "hit_ratio": cells["cache+shed"]["hit_ratio"],
        "shed": cells["cache+shed"]["shed"],
        "shed_rate": cells["cache+shed"]["shed_rate"],
        "dropped": cells["cache+shed"]["dropped"],
        "violations": sum(c["violations"] for c in cells.values()),
    }


# ----------------------------------------------------------------- replication
def run_replication(
    replica_counts: tuple[int, ...] = (1, 2, 3),
    cycle_counts: tuple[int, ...] = (0, 2, 4),
    clients: int = 6,
    ops_per_client: int = 48,
    num_servers: int = 4,
    preload_rows: int = 240,
    chaos_horizon_ms: float = 160.0,
    recovery_replay_ms_per_entry: float = 0.4,
    seed: int = 20170904,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Replication sweep: replica count x crash rate.

    Same chaos cell as :func:`run_faults` — pre-split preloaded table,
    closed-loop put/get/scan clients with bounded failover retry,
    seeded fault plan — but with a nonzero per-entry recovery replay
    cost, so the unavailability window is proportional to the state
    master failover must replay. That is where replication earns its
    keep: with ``replica_count >= 2`` a crashed primary is *promoted*
    from its most-caught-up follower (replaying only the un-shipped
    ship-log suffix) instead of rebuilt from the dead server's whole
    pending WAL, and follower reads keep serving through the outage.
    Reported per replica count: throughput, p99 op response time and
    the mean client-observed recovery stall — the single-copy series is
    the baseline the replicated ones must beat. Every cell is checked
    against the full durability *and* staleness oracle and aborts the
    experiment on any violation. Byte-identical across reruns.
    """
    say = progress or (lambda _m: None)
    results = {
        "throughput": ExperimentResult(
            "ReplicationThroughput",
            "Committed ops per second vs crash cycles, by replica count",
            "crash cycles",
            unit="ops/s (virtual)",
        ),
        "p99": ExperimentResult(
            "ReplicationP99",
            "99th percentile op response time vs crash cycles, by replica count",
            "crash cycles",
        ),
        "recovery": ExperimentResult(
            "ReplicationRecovery",
            "Mean client-observed recovery stall vs crash cycles, by replica count",
            "crash cycles",
        ),
    }
    for r in results.values():
        r.x_values = list(cycle_counts)
    series = {
        metric: {
            n: r.add_series(f"{n} replica{'s' if n != 1 else ''}")
            for n in replica_counts
        }
        for metric, r in results.items()
    }
    mean_stalls: dict[int, dict[int, float]] = {}
    rep_notes: list[str] = []
    for replicas in replica_counts:
        mean_stalls[replicas] = {}
        for cycles in cycle_counts:
            say(f"[replication] {replicas} replicas x {cycles} crash cycles")
            run = run_chaos_cell(
                num_servers=num_servers,
                clients=clients,
                ops_per_client=ops_per_client,
                preload_rows=preload_rows,
                fault_config=FaultConfig(
                    cycles=cycles,
                    first_crash_ms=25.0,
                    crash_interval_ms=chaos_horizon_ms / max(cycles, 1),
                    recovery_replay_ms_per_entry=recovery_replay_ms_per_entry,
                ),
                seed=seed,
                replication=(
                    ReplicationConfig(replica_count=replicas)
                    if replicas >= 2
                    else None
                ),
            )
            if run.violations:
                raise RuntimeError(
                    f"replication cell ({replicas} replicas, {cycles} "
                    f"cycles) violated invariants: {run.violations}"
                )
            report = run.report
            throughput = (
                report.committed / (report.makespan_ms / 1000.0)
                if report.makespan_ms > 0 else 0.0
            )
            rts = report.response_times
            stalls = run.history.stalls_ms
            mean_stall = sum(stalls) / len(stalls) if stalls else 0.0
            mean_stalls[replicas][cycles] = mean_stall
            series["throughput"][replicas].set(
                cycles, Stat(throughput, 0.0, 1)
            )
            series["p99"][replicas].set(
                cycles,
                Stat(percentile(rts, 0.99) if rts else 0.0, 0.0, len(rts)),
            )
            series["recovery"][replicas].set(
                cycles, Stat(mean_stall, 0.0, len(stalls))
            )
            if cycles == cycle_counts[-1] and run.replication is not None:
                s = run.replication
                rep_notes.append(
                    f"{replicas} replicas @ {cycles} cycles: "
                    f"{s['promotions']} promotions, "
                    f"{s['followers_rebuilt']} followers rebuilt, "
                    f"{s['entries_shipped']} entries shipped, "
                    f"{s['follower_gets']} follower gets, "
                    f"{s['follower_scan_windows']} follower scan windows, "
                    "0 violations (durability + staleness)"
                )
    crashiest = cycle_counts[-1]
    baseline = mean_stalls.get(1, {}).get(crashiest)
    if baseline:
        for replicas in replica_counts:
            if replicas < 2:
                continue
            stall = mean_stalls[replicas][crashiest]
            rep_notes.append(
                f"mean recovery stall @ {crashiest} cycles: "
                f"{stall:.2f} ms with {replicas} replicas vs "
                f"{baseline:.2f} ms single-copy "
                f"({stall / baseline:.2f}x)"
            )
    config_note = (
        f"{num_servers} servers, {preload_rows} preloaded rows, "
        f"{clients} clients x {ops_per_client} ops (55/30/15 put/get/scan), "
        f"replay cost {recovery_replay_ms_per_entry} ms/entry, seed {seed}; "
        "promotion-on-crash + bounded-staleness follower reads"
    )
    for r in results.values():
        r.note(config_note)
        for note in rep_notes:
            r.note(note)
    return results


def replication_smoke(
    replica_count: int = 2,
    clients: int = 8,
    cycles: int = 3,
    ops_per_client: int = 32,
    seed: int = 20170904,
) -> dict[str, int]:
    """CI smoke: one replicated high-contention chaos cell; returns the
    replication and invariant counters (the job asserts promotions and
    follower reads actually happened, with zero violations on the
    durability *and* staleness axes)."""
    run = run_chaos_cell(
        num_servers=4,
        clients=clients,
        ops_per_client=ops_per_client,
        fault_config=FaultConfig(
            cycles=cycles, recovery_replay_ms_per_entry=0.4
        ),
        seed=seed,
        replication=ReplicationConfig(replica_count=replica_count),
    )
    stats = run.replication or {}
    return {
        "crashes": run.history.crash_count,
        "recoveries": run.history.recover_count + run.quiesce_recoveries,
        "promotions": stats.get("promotions", 0),
        "followers_rebuilt": stats.get("followers_rebuilt", 0),
        "entries_shipped": stats.get("entries_shipped", 0),
        "follower_gets": stats.get("follower_gets", 0),
        "follower_scan_windows": stats.get("follower_scan_windows", 0),
        "stalled_ops": len(run.history.stalls_ms),
        "committed": run.report.committed,
        "violations": len(run.violations),
    }


# --------------------------------------------------------------------- Table I
def run_table1() -> str:
    """Qualitative comparison (Table I) — documented properties."""
    rows = [
        [
            "NoSQL (HBase)", "Linear scale out", "SQL",
            "ACID, snapshot isolation (Tephra)", "higher than NewSQL",
        ],
        [
            "NewSQL (VoltDB)", "Linear scale out",
            "SQL, joins limited to partition keys",
            "ACID, serializable", "lowest",
        ],
        [
            "Synergy", "Linear scale out",
            "SQL, MVs limited to key/foreign-key joins",
            "ACID, read committed", "highest",
        ],
    ]
    return render_table(
        [
            "System", "Scalability", "Query Expressiveness",
            "Transaction Support", "Disk Utilization",
        ],
        rows,
    )


# --------------------------------------------------------------------- Table II
def run_table2(lab: TpcwLab, progress=None) -> ExperimentResult:
    """Sum of RT of all statements (Table II). VoltDB excluded — it does
    not support all benchmark queries."""
    measurements = lab.measure_all(progress)
    result = ExperimentResult(
        "TableII",
        "Sum of response times of all TPC-W statements",
        "system",
        unit="s",
    )
    names = ["Synergy", "MVCC-A", "MVCC-UA", "Baseline"]
    result.x_values = names
    series = result.add_series("Total RT (s)")
    for name in names:
        m = measurements[name]
        totals_s = [t / 1000.0 for t in m.total_times]
        series.set(name, summarize(totals_s))
    base = series.points["Baseline"]
    syn = series.points["Synergy"]
    if base and syn and base.mean:
        result.note(
            f"Synergy improves on Baseline by "
            f"{100 * (1 - syn.mean / base.mean):.1f}% (paper: 80.5%)"
        )
    for other, paper in (("MVCC-UA", 74.5), ("MVCC-A", 56.3)):
        o = series.points[other]
        if o and syn and o.mean:
            result.note(
                f"Synergy improves on {other} by "
                f"{100 * (1 - syn.mean / o.mean):.1f}% (paper: {paper}%)"
            )
    result.note("paper (1M customers): 33.7 / 77.4 / 132.4 / 173.4 s")
    return result


# --------------------------------------------------------------------- Table III
def run_table3(lab: TpcwLab, progress=None) -> ExperimentResult:
    """Database sizes across systems (Table III)."""
    measurements = lab.measure_all(progress)
    result = ExperimentResult(
        "TableIII", "Database sizes across evaluated systems", "system",
        unit="MB",
    )
    names = ["VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline"]
    result.x_values = names
    series = result.add_series("DB size (MB)")
    for name in names:
        mb = measurements[name].db_size_bytes / 1e6
        series.set(name, Stat(mb, 0.0, 1))
    baseline = measurements["Baseline"].db_size_bytes
    for name in names:
        ratio = measurements[name].db_size_bytes / baseline
        result.note(f"{name}: {ratio:.2f}x Baseline")
    result.note(
        "paper (1M customers, GB): 31.8 / 92 / 91.8 / 45.73 / 43.8 "
        "=> ratios vs Baseline: 0.73 / 2.10 / 2.10 / 1.04 / 1.00"
    )
    return result


# ----------------------------------------------------------- orchestration
def run_orchestration_cell(
    cycles: int,
    clients: int = 4,
    ops_per_client: int = 48,
    preload_rows: int = 120,
    seed: int = 20170904,
    with_rollout: bool = True,
    target_servers: int = 4,
    target_replicas: int = 3,
    rollout_start_ms: float = 10.0,
):
    """One orchestration chaos cell: a closed-loop chaos workload rides
    through a staged rolling scale-out (add servers -> raise replicas ->
    rebalance) while the fault injector crashes region servers.

    Starts from a 2-server cluster with ``replica_count=2`` on a
    pre-split, preloaded table; the orchestrator joins the scheduler as
    a non-daemon participant, so rollout steps interleave with client
    ops and fault events at their virtual timestamps. After the run the
    full durability + staleness oracle and the cluster-layout
    invariants are checked. Everything derives from virtual time and
    seeded draws: reruns are byte-identical.

    Returns ``(scheduler_report, rollout_report_or_None, history,
    violations, layout_issues)``.
    """
    from repro.hbase.replication import ReplicationShipper
    from repro.orchestration import (
        ClusterPlan,
        Orchestrator,
        RolloutPolicy,
        TablePlan,
        verify_cluster,
    )
    from repro.sim.faults import (
        FAMILY,
        QUALIFIER,
        ChaosHistory,
        FailoverPolicy,
        FaultInjector,
        build_chaos_ops,
        chaos_client_program,
        check_invariants,
    )

    sim = Simulation(seed=seed)
    cluster = HBaseCluster(sim, ClusterConfig(
        num_region_servers=2,
        seed=seed,
        replication=ReplicationConfig(replica_count=2),
    ))
    client = HBaseClient(cluster)
    split_keys = [b"%08d" % (preload_rows * i // 4) for i in range(1, 4)]
    table = client.create_table("orch", families=(FAMILY,), split_keys=split_keys)
    # followers must exist before the first edit: the ship log is the
    # region's complete history
    cluster.replication.replicate_table("orch")
    history = ChaosHistory()
    puts = []
    for i in range(preload_rows):
        row = b"%08d" % i
        value = b"seed-%06d" % i
        history.record_ack(row, value)
        puts.append(Put(row).add(FAMILY, QUALIFIER, value))
    table.put_batch(puts)
    sim.reset_clock()

    scheduler = DeterministicScheduler(sim)
    policy = FailoverPolicy()
    for i in range(clients):
        rng = derive_rng(seed, f"orchestration/chaos-client-{i}")
        ops = build_chaos_ops(rng, ops_per_client, preload_rows, 16)
        handle = HTable(cluster, "orch", follower_reads=True)
        tag = b"c%02d" % i

        def program(vc, handle=handle, ops=ops, tag=tag):
            yield from chaos_client_program(
                vc, handle, ops, history, policy, tag
            )

        scheduler.add_client(f"chaos-{i}", program)
    injector = FaultInjector(
        cluster, FaultConfig(cycles=cycles, label="orchestration"), history
    )
    injector.install(scheduler)
    ReplicationShipper(cluster.replication).install(scheduler)

    orchestrator = None
    if with_rollout:
        plan = ClusterPlan(
            servers=target_servers,
            tables={"orch": TablePlan(replicas=target_replicas)},
            balance="load-aware",
        )
        orchestrator = Orchestrator(
            cluster, plan=plan,
            policy=RolloutPolicy(start_delay_ms=rollout_start_ms),
        )
        orchestrator.install(scheduler)
    report = scheduler.run()

    # quiesce: finish any failover the injector never got to
    for server in cluster.servers:
        if not server.alive and not server.recovered:
            history.regions_recovered += cluster.recover_server(server)
    violations = check_invariants(
        history, HTable(cluster, "orch"),
        staleness_bound=cluster.replication.config.staleness_bound_entries,
    )
    # a workload can end mid-outage (crashed process not yet
    # restarted): short replication groups are then expected transient
    # state, not corruption — only *fatal* layout issues gate the cell
    _transient, fatal = verify_cluster(cluster)
    rollout = orchestrator.report if orchestrator is not None else None
    return report, rollout, history, violations, fatal


def run_orchestration(
    cycle_counts: tuple[int, ...] = (0, 2),
    clients: int = 4,
    ops_per_client: int = 48,
    seed: int = 20170904,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Rolling-operations experiment: staged scale-out under chaos.

    Each cell drives the same chaos workload twice — once with the
    orchestrated rollout (2 -> 4 servers, 2 -> 3 replicas, rebalance)
    installed and once without — at each crash-cycle count. Reported:
    rollout duration (virtual ms, only the rollout runs) and client p99
    with vs without the rollout, so the cost a rolling operation
    imposes on the workload is the visible delta. Any durability /
    staleness / layout violation, or a stage that fails to commit,
    aborts the experiment. Byte-identical across reruns.
    """
    say = progress or (lambda _m: None)
    results = {
        "duration": ExperimentResult(
            "OrchestrationDuration",
            "Staged rollout duration vs injected crash cycles",
            "crash cycles",
            unit="virtual ms",
        ),
        "p99": ExperimentResult(
            "OrchestrationP99",
            "Client p99 op response time, with vs without a rolling rollout",
            "crash cycles",
        ),
    }
    for r in results.values():
        r.x_values = list(cycle_counts)
    duration_series = results["duration"].add_series("staged rollout")
    p99_with = results["p99"].add_series("with rollout")
    p99_without = results["p99"].add_series("no rollout")
    notes: list[str] = []
    for cycles in cycle_counts:
        say(f"[orchestration] rollout under {cycles} crash cycles")
        report, rollout, history, violations, layout = run_orchestration_cell(
            cycles, clients=clients, ops_per_client=ops_per_client, seed=seed,
        )
        if violations or layout:
            raise RuntimeError(
                f"orchestration cell ({cycles} cycles) violated invariants: "
                f"{violations + layout}"
            )
        if rollout.status != "committed":
            raise RuntimeError(
                f"orchestration cell ({cycles} cycles): rollout "
                f"{rollout.status}, stages "
                f"{[(s.name, s.status, s.error) for s in rollout.stages]}"
            )
        base_report, _, _, base_violations, base_layout = (
            run_orchestration_cell(
                cycles, clients=clients, ops_per_client=ops_per_client,
                seed=seed, with_rollout=False,
            )
        )
        if base_violations or base_layout:
            raise RuntimeError(
                f"orchestration baseline ({cycles} cycles) violated "
                f"invariants: {base_violations + base_layout}"
            )
        duration_series.set(
            cycles, Stat(rollout.duration_ms, 0.0, len(rollout.stages))
        )
        rts = report.response_times
        base_rts = base_report.response_times
        p99_with.set(
            cycles, Stat(percentile(rts, 0.99) if rts else 0.0, 0.0, len(rts))
        )
        p99_without.set(
            cycles,
            Stat(
                percentile(base_rts, 0.99) if base_rts else 0.0,
                0.0, len(base_rts),
            ),
        )
        notes.append(
            f"{cycles} cycles: {rollout.committed_stages}/"
            f"{len(rollout.stages)} stages committed in "
            f"{rollout.duration_ms:.2f} virtual ms, "
            f"{history.crash_count} crashes ridden out, "
            f"{rollout.as_dict()['stages'][-1]['epoch']} layout epochs, "
            "0 violations (durability + staleness + layout)"
        )
    config_note = (
        f"2 -> 4 servers, 2 -> 3 replicas + load-aware rebalance; "
        f"{clients} clients x {ops_per_client} ops (55/30/15 put/get/scan), "
        f"seed {seed}; orchestrator is a scheduler participant "
        "(steps interleave with chaos at virtual timestamps)"
    )
    for r in results.values():
        r.note(config_note)
        for note in notes:
            r.note(note)
    return results


def orchestration_smoke(
    cycles: int = 2,
    clients: int = 4,
    ops_per_client: int = 64,
    seed: int = 20170904,
) -> dict[str, int]:
    """CI smoke: one 3-stage rollout (add servers -> raise replicas ->
    rebalance) under chaos; returns the rollout and invariant counters
    (the job asserts every stage committed with zero violations)."""
    report, rollout, history, violations, layout = run_orchestration_cell(
        cycles, clients=clients, ops_per_client=ops_per_client, seed=seed,
    )
    return {
        "stages_committed": rollout.committed_stages,
        "stages_total": len(rollout.stages),
        "rollout_committed": int(rollout.status == "committed"),
        "crashes": history.crash_count,
        "recoveries": history.recover_count,
        "failover_retries": history.failover_retries,
        "committed_ops": report.committed,
        "violations": len(violations),
        "layout_issues": len(layout),
    }


def orchestration_rollback_smoke(seed: int = 20170904) -> dict[str, int]:
    """CI fault drill: a stage that mixes real steps with a poisoned
    step must roll back to *exactly* the pre-rollout state — compared
    row-for-row (cell snapshots) and by layout fingerprint."""
    from repro.orchestration import (
        AddServers,
        Orchestrator,
        PoisonStep,
        SetReplicas,
        SplitRegion,
        cluster_snapshot,
    )
    from repro.sim.faults import FAMILY, QUALIFIER

    sim = Simulation(seed=seed)
    cluster = HBaseCluster(
        sim, ClusterConfig(num_region_servers=2, seed=seed)
    )
    client = HBaseClient(cluster)
    table = client.create_table("drill", families=(FAMILY,))
    puts = []
    for i in range(60):
        puts.append(
            Put(b"%08d" % i).add(FAMILY, QUALIFIER, b"v-%06d" % i)
        )
    table.put_batch(puts)
    client.create_table("empty", families=(FAMILY,))
    before_rows = cluster_snapshot(cluster)
    before_layout = cluster.layout_fingerprint()
    orch = Orchestrator(cluster, stages=[
        ("1:drill", [
            AddServers(2),
            SplitRegion("drill", b"%08d" % 30),
            SetReplicas("empty", 2),
            PoisonStep(),
        ]),
    ])
    rollout = orch.run()
    rows_intact = cluster_snapshot(cluster) == before_rows
    layout_intact = cluster.layout_fingerprint() == before_layout
    return {
        "rolled_back": int(rollout.status == "rolled-back"),
        "stages_total": len(rollout.stages),
        "rows_intact": int(rows_intact),
        "layout_intact": int(layout_intact),
    }


# ------------------------------------------------------------ query engine
#: Engine modes swept by the QueryEngine experiment. "legacy" is the
#: anchored materializing executor; "streaming" runs the *same* plans
#: through the pull-based operator pipeline; "streaming+cbo" additionally
#: lets the cost-based planner pick access paths and join orders.
QUERY_ENGINE_MODES = (
    ("legacy", "legacy", False),
    ("streaming", "streaming", False),
    ("streaming+cbo", "streaming", True),
)

#: The Fig. 12 join path that separates the two hash-join algorithms: a
#: broadcast-shaped equi-join on an unindexed attribute under a LIMIT
#: without ORDER BY. The legacy broadcast join must finish the whole
#: build-side scan before its first output row; the streaming symmetric
#: hash join emits matches while both scans interleave, so the LIMIT
#: closes the operator tree after a fraction of either scan.
LIMITED_JOIN_ID = "LIMIT-join"
LIMITED_JOIN_SQL = (
    "SELECT o.o_id, o2.o_id FROM Orders as o, Orders as o2 "
    "WHERE o.o_date = o2.o_date and o.o_id <> o2.o_id LIMIT 64"
)


def _canonical_rows(rows: list[dict]) -> list[tuple]:
    """Order-independent digest of a result set (multiset of rows)."""
    return sorted(tuple(sorted(r.items())) for r in rows)


def _query_cell(
    mode: str,
    engine: str,
    cost_based: bool,
    num_customers: int,
    repetitions: int,
    seed: int,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Populate one Baseline system under the given engine mode and run
    the Fig. 12 join battery plus the limited broadcast join. Virtual
    times are deterministic per mode; wall-clock numbers are best-of-rep
    and never enter the JSON trajectory."""
    say = progress or (lambda _msg: None)
    say(f"[query:{mode}] populating Baseline scale={num_customers}")
    lab = TpcwLab(
        num_customers=num_customers, repetitions=repetitions, seed=seed,
        query_engine=engine, cost_based_planner=cost_based,
    )
    system = lab.build_system("Baseline")
    lab.populate(system)

    times: dict[str, list[float]] = {}
    digests: dict[str, list[tuple]] = {}
    for rep in range(repetitions):
        for qid in JOIN_QUERIES:
            params = lab.generator.params_for_query(qid, rep)
            rows, ms = system.timed_id(qid, params)
            times.setdefault(qid, []).append(ms)
            if rep == 0:
                digests[qid] = _canonical_rows(rows)

    limited_times: list[float] = []
    limited_wall_s = float("inf")
    limited_rows = 0
    for _ in range(max(repetitions, 3)):
        sw = system.sim.stopwatch()
        t0 = time.perf_counter()
        rows = system.conn.execute_query(LIMITED_JOIN_SQL)
        limited_wall_s = min(limited_wall_s, time.perf_counter() - t0)
        limited_times.append(sw.stop())
        limited_rows = len(rows)
    say(
        f"[query:{mode}] {LIMITED_JOIN_ID}: {limited_rows} rows, "
        f"best wall-clock {limited_wall_s * 1000:.2f}ms"
    )
    return {
        "mode": mode,
        "times": times,
        "digests": digests,
        "limited_times": limited_times,
        "limited_rows": limited_rows,
        "limited_wall_s": limited_wall_s,
    }


def run_query(
    num_customers: int = 200,
    repetitions: int = 5,
    seed: int = 171001792,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Legacy vs streaming execution engine over the Fig. 12 join
    battery ("QueryEngine" — deliberately NOT an anchored experiment;
    every anchored figure runs the legacy engine).

    The emitted series are virtual-time only, so two runs with the same
    seed produce byte-identical JSON. The wall-clock race on the
    limited broadcast join (symmetric hash join vs blocking broadcast
    join) is reported via ``progress`` and asserted by ``query_smoke``
    in CI, never recorded in the trajectory."""
    say = progress or (lambda _msg: None)
    result = ExperimentResult(
        "QueryEngine", "Execution engines on the TPC-W join battery", "query"
    )
    result.x_values = list(JOIN_QUERIES) + [LIMITED_JOIN_ID]
    cells: dict[str, dict] = {}
    for mode, engine, cost_based in QUERY_ENGINE_MODES:
        cell = _query_cell(
            mode, engine, cost_based, num_customers, repetitions, seed,
            progress,
        )
        cells[mode] = cell
        series = result.add_series(mode)
        for qid in JOIN_QUERIES:
            series.set(qid, summarize(cell["times"][qid]))
        series.set(LIMITED_JOIN_ID, summarize(cell["limited_times"]))

    legacy = cells["legacy"]
    for mode in cells:
        if mode == "legacy":
            continue
        matched = sum(
            1
            for qid in JOIN_QUERIES
            if cells[mode]["digests"][qid] == legacy["digests"][qid]
        )
        result.note(
            f"{mode}: rows identical to legacy on "
            f"{matched}/{len(JOIN_QUERIES)} join queries"
        )
    result.note(
        f"{LIMITED_JOIN_ID} = same-day-orders self-join, LIMIT without "
        "ORDER BY: legacy broadcasts the full build side before row one; "
        "the symmetric join stops both scans early (wall-clock race on "
        "stderr; virtual time reflects rows actually scanned)"
    )
    for mode, cell in cells.items():
        say(
            f"[query] {mode}: {LIMITED_JOIN_ID} best wall-clock "
            f"{cell['limited_wall_s'] * 1000:.2f}ms"
        )
    return result


def query_smoke(
    num_customers: int = 200,
    repetitions: int = 2,
    seed: int = 171001792,
) -> dict:
    """CI smoke: engine row parity on the join battery plus the
    acceptance gate — the streaming symmetric hash join must beat the
    legacy broadcast join in wall-clock on the limited join path."""
    cells = {
        mode: _query_cell(
            mode, engine, cost_based, num_customers, repetitions, seed
        )
        for mode, engine, cost_based in QUERY_ENGINE_MODES
    }
    legacy = cells["legacy"]
    out: dict = {"queries": len(JOIN_QUERIES)}
    for mode in ("streaming", "streaming+cbo"):
        out[f"rows_match[{mode}]"] = sum(
            1
            for qid in JOIN_QUERIES
            if cells[mode]["digests"][qid] == legacy["digests"][qid]
        )
    out["limited_rows_legacy"] = legacy["limited_rows"]
    out["limited_rows_streaming"] = cells["streaming"]["limited_rows"]
    out["legacy_limited_wall_ms"] = round(legacy["limited_wall_s"] * 1000, 3)
    out["streaming_limited_wall_ms"] = round(
        cells["streaming"]["limited_wall_s"] * 1000, 3
    )
    out["streaming_beats_legacy"] = (
        cells["streaming"]["limited_wall_s"] < legacy["limited_wall_s"]
    )
    return out


# ------------------------------------------------------------ federation
#: Routing modes swept by the Federation experiment. The pinned modes
#: run the identical mediator code path restricted to one backend in
#: whole-statement mode — the single-system baseline the routed modes
#: are compared against (and must match row for row).
FEDERATION_MODES = ("routed-auto", "routed-split", "pin-Synergy", "pin-VoltDB")

#: Identifying columns per query, shared by every backend's result
#: shape. Q10 compares on i_id only: the aggregate's *name* differs
#: between view-rewritten and base-table plans (``SUM(v0.ol_qty)`` vs
#: ``SUM(ol.ol_qty)``) even though its value is identical. Q11 compares
#: the sorted aggregate *scores*: its ``ORDER BY SUM(..) DESC LIMIT 5``
#: can tie at the rank-5 boundary, where engines legitimately pick
#: different tie members — the score multiset is the invariant.
FEDERATION_QUERY_KEYS = {
    "Q1": ("ol_o_id", "ol_id", "i_id"),
    "Q2": ("o_id", "c_id"),
    "Q3": ("c_id", "addr_id", "co_id"),
    "Q4": ("i_id", "a_id"),
    "Q5": ("i_id", "a_id"),
    "Q6": ("i_id", "a_id"),
    "Q7": ("o_id", "c_id"),
    "Q8": ("scl_sc_id", "scl_i_id", "i_id"),
    "Q9": ("i_id",),
    "Q10": ("i_id",),
    "Q11": None,  # tie-prone top-5: compare aggregate scores
}


def _federation_canonical(qid: str, rows: list[dict]) -> list[tuple]:
    keys = FEDERATION_QUERY_KEYS[qid]
    if keys is None:
        return sorted(
            (v,)
            for r in rows
            for k, v in r.items()
            if k.startswith("SUM(")
        )
    return sorted(tuple(r.get(k) for k in keys) for r in rows)


def _federation_backends(lab: TpcwLab, progress=None) -> dict:
    say = progress or (lambda _msg: None)
    backends = {}
    for name in SYSTEM_NAMES:
        say(f"[federation] populating {name}")
        system = lab.build_system(name)
        lab.populate(system)
        backends[name] = system
    return backends


def _federation_mediator(mode: str, backends: dict, lab: TpcwLab, seed: int):
    from repro.federation import Mediator

    if mode == "routed-auto":
        return Mediator(backends, lab.schema, lab.workload, seed=seed, mode="auto")
    if mode == "routed-split":
        return Mediator(backends, lab.schema, lab.workload, seed=seed, mode="split")
    assert mode.startswith("pin-"), mode
    return Mediator(
        backends, lab.schema, lab.workload, seed=seed,
        mode="whole", pin=mode[len("pin-"):],
    )


def _federation_battery(mediator, lab: TpcwLab, repetitions: int):
    """(virtual times per qid, rep-0 canonical digests) for every query
    the mediator supports under its routing mode."""
    times: dict[str, list[float]] = {}
    digests: dict[str, list[tuple]] = {}
    for rep in range(repetitions):
        for qid in JOIN_QUERIES:
            if not mediator.supports(qid):
                continue
            params = lab.generator.params_for_query(qid, rep)
            rows, ms = mediator.timed_id(qid, params)
            times.setdefault(qid, []).append(ms)
            if rep == 0:
                digests[qid] = _federation_canonical(qid, rows)
    return times, digests


def _federation_schedule(mediator, clients: int, txns_per_client: int):
    """A multi-client federated write/read mix over DISJOINT key slices
    (client i owns item/customer/cart i+1), driven through the
    deterministic scheduler with one FederatedSession per client. Writes
    broadcast to every backend, so the backends stay convergent."""
    scheduler = DeterministicScheduler(mediator.sim)
    for c in range(clients):
        session = mediator.open_session(f"c{c}")
        i_id, c_id, sc_id = c + 1, c + 1, c + 1
        txns = []
        for t in range(txns_per_client):
            stamp = 1000 * (c + 1) + t
            txns.append([
                ("SELECT * FROM Item WHERE i_id = ?", (i_id,)),
                (WRITE_STATEMENTS["W9"], (stamp, i_id)),
            ])
            txns.append([
                (WRITE_STATEMENTS["W13"],
                 (float(stamp), float(stamp) / 2, float(t), c_id)),
            ])
            txns.append([(WRITE_STATEMENTS["W11"], (float(stamp), sc_id))])

        def program(client, session=session, txns=txns):
            for txn in txns:
                yield from run_transaction(client, session, txn)

        scheduler.add_client(f"c{c}", program)
    return scheduler.run()


def run_federation(
    num_customers: int = 30,
    repetitions: int = 4,
    seed: int = 171001792,
    clients: int = 4,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Routed vs pinned-single-system execution through the federation
    mediator ("Federation" — deliberately NOT an anchored experiment).

    One set of populated backends is shared by every mode: the query
    battery is read-only, so routed results must match the pinned
    references row for row (asserted here, not just noted). All series
    are virtual-time only, so two runs with the same seed produce
    byte-identical JSON. A scheduled multi-client write mix runs last —
    it mutates the shared backends through broadcast writes."""
    say = progress or (lambda _msg: None)
    lab = TpcwLab(num_customers=num_customers, repetitions=repetitions, seed=seed)
    backends = _federation_backends(lab, progress)

    result = ExperimentResult(
        "Federation",
        "Federated routing vs pinned single-system execution",
        "query",
    )
    result.x_values = list(JOIN_QUERIES)
    digests: dict[str, dict] = {}
    for mode in FEDERATION_MODES:
        say(f"[federation] battery mode={mode}")
        mediator = _federation_mediator(mode, backends, lab, seed)
        times, digests[mode] = _federation_battery(mediator, lab, repetitions)
        series = result.add_series(mode)
        for qid in JOIN_QUERIES:
            series.set(qid, summarize(times[qid]) if qid in times else None)
        routed = {}
        for record in mediator.route_log:
            for a in record.assignments:
                routed[a["backend"]] = routed.get(a["backend"], 0) + 1
        reroutes = sum(
            1 for d in mediator.advisor.decision_log if d.rerouted
        )
        result.note(
            f"{mode}: {len(times)}/{len(JOIN_QUERIES)} queries, "
            f"sub-plans per backend {routed}, "
            f"{reroutes} advisor decisions used the observed EWMA"
        )

    reference = digests["pin-Synergy"]
    for mode, battery in digests.items():
        for qid, rows in battery.items():
            if qid not in reference:
                continue
            if rows != reference[qid]:
                raise AssertionError(
                    f"federation: {mode} disagrees with pin-Synergy on {qid}"
                )
    result.note(
        "row parity: every routed result matches the pinned Synergy "
        "reference row for row (asserted)"
    )

    say(f"[federation] scheduled mix: {clients} clients")
    mediator = _federation_mediator("routed-auto", backends, lab, seed)
    report = _federation_schedule(mediator, clients, txns_per_client=3)
    result.note(
        f"scheduled mix: {clients} clients, {report.committed} transactions "
        f"committed in {report.steps} interleaved steps, "
        f"{len(mediator.route_log)} routed statements"
    )
    return result


def federation_smoke(
    num_customers: int = 25,
    repetitions: int = 4,
    seed: int = 171001792,
) -> dict:
    """CI smoke: routed-vs-pinned row parity, genuine multi-backend
    statement spread under split routing, and byte-identical advisor
    decision logs across two independently built runs."""
    import json as _json

    def one_run():
        lab = TpcwLab(
            num_customers=num_customers, repetitions=repetitions, seed=seed
        )
        backends = _federation_backends(lab)
        mediator = _federation_mediator("routed-split", backends, lab, seed)
        times, digests = _federation_battery(mediator, lab, repetitions)
        pinned = _federation_mediator("pin-Synergy", backends, lab, seed)
        _, reference = _federation_battery(pinned, lab, repetitions=1)
        return lab, backends, mediator, digests, reference

    _, _, mediator, digests, reference = one_run()
    out: dict = {"queries": len(JOIN_QUERIES)}
    out["rows_match[routed-split]"] = sum(
        1 for qid, rows in digests.items() if rows == reference.get(qid)
    )
    used: dict[str, set] = {}
    for record in mediator.route_log:
        for a in record.assignments:
            used.setdefault(record.statement_id, set()).add(a["backend"])
    out["statements_spanning_2_backends"] = sum(
        1 for backends_used in used.values() if len(backends_used) >= 2
    )
    out["decisions"] = len(mediator.advisor.decision_log)
    out["reroutes"] = sum(
        1 for d in mediator.advisor.decision_log if d.rerouted
    )

    _, _, mediator2, _, _ = one_run()
    log_a = _json.dumps(mediator.advisor.log_dicts(), sort_keys=True)
    log_b = _json.dumps(mediator2.advisor.log_dicts(), sort_keys=True)
    out["decision_log_deterministic"] = log_a == log_b
    return out
