"""CLI: regenerate every table and figure.

    python -m repro.bench --scale 200 --reps 10 --out results.txt
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import (
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_table1,
    run_table2,
    run_table3,
)
from repro.bench.tpcw_lab import TpcwLab


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument("--scale", type=int, default=200,
                        help="TPC-W customers (paper: 1,000,000)")
    parser.add_argument("--reps", type=int, default=10,
                        help="repetitions per measurement (paper: 10)")
    parser.add_argument("--micro-scales", type=str, default="50,500,5000",
                        help="comma-separated micro-benchmark scales")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    say = (lambda _m: None) if args.quiet else (
        lambda m: print(f"  .. {m}", file=sys.stderr)
    )
    sections: list[str] = []

    sections.append("Table I — qualitative comparison\n" + run_table1())
    sections.append("Fig. 13 — evaluated configurations\n" + run_fig13())

    micro_scales = tuple(int(s) for s in args.micro_scales.split(","))
    for r in run_fig10(micro_scales, args.reps, progress=say).values():
        sections.append(r.to_text())
    sections.append(run_fig11(repetitions=args.reps).to_text())

    lab = TpcwLab(num_customers=args.scale, repetitions=args.reps)
    sections.append(run_fig12(lab, progress=say).to_text())
    sections.append(run_fig14(lab, progress=say).to_text())
    sections.append(run_table2(lab, progress=say).to_text())
    sections.append(run_table3(lab, progress=say).to_text())

    report = "\n\n".join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
