"""CLI: regenerate every table and figure.

    python -m repro.bench --scale 200 --reps 10 --out results.txt

``--emit-json PATH`` additionally writes a machine-readable trajectory
file recording, per experiment, the wall-clock seconds the simulator
itself burned plus the simulated-latency statistics (the paper's
metric). ``--baseline-json PATH`` merges a previously emitted file in
as the comparison baseline and reports wall-clock speedups against it.
``--only a,b,c`` restricts the run to a subset of experiments
(``table1, fig10, fig11, fig12, fig13, fig14, table2, table3,
storage, concurrency, scaleout, faults, replication,
orchestration, query, serving, federation``) — handy for quick perf
checks. An unknown or empty selection exits nonzero with the valid
list, and a suite-specific flag combined with an ``--only`` that does
not select its suite is rejected instead of silently ignored.

``--only concurrency --emit-json`` (likewise ``scaleout``, ``faults``,
``replication``, ``orchestration`` and ``query``) emits a fully deterministic
trajectory (virtual-time metrics only, no wall-clock entries): two
runs with the same seed produce byte-identical JSON. The ``faults``
experiment additionally verifies the chaos invariants (no acked write
lost, no scan duplication/loss) and aborts on any violation;
``replication`` sweeps replica count x crash rate with a nonzero
recovery-replay cost and further enforces the bounded-staleness
follower-read oracle; ``orchestration`` drives a staged rolling
scale-out (plan -> diff -> apply/verify/commit) through the same
chaos harness and aborts if any stage fails to commit.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.experiments import (
    run_concurrency,
    run_faults,
    run_federation,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_orchestration,
    run_query,
    run_replication,
    run_scaleout,
    run_serving,
    run_storage_perf,
    run_table1,
    run_table2,
    run_table3,
)
from repro.bench.tpcw_lab import TpcwLab

ALL_EXPERIMENTS = (
    "table1", "fig13", "storage", "fig10", "fig11", "fig12", "fig14",
    "table2", "table3", "concurrency", "scaleout", "faults", "replication",
    "orchestration", "query", "serving", "federation",
)

#: Suite-specific flags (argparse dest -> suite). A non-default value
#: for one of these combined with an explicit ``--only`` that does NOT
#: select its suite is a contradiction: the flag would be silently
#: ignored, so the CLI refuses it instead.
SUITE_FLAGS = {
    "micro_scales": "fig10",
    "storage_rows": "storage",
    "clients": "concurrency",
    "concurrency_txns": "concurrency",
    "concurrency_scale": "concurrency",
    "servers": "scaleout",
    "scaleout_clients": "scaleout",
    "scaleout_ops": "scaleout",
    "crash_cycles": "faults",
    "faults_clients": "faults",
    "faults_ops": "faults",
    "replicas": "replication",
    "replication_cycles": "replication",
    "replication_clients": "replication",
    "replication_ops": "replication",
    "orchestration_cycles": "orchestration",
    "orchestration_clients": "orchestration",
    "orchestration_ops": "orchestration",
    "serving_clients": "serving",
    "serving_ops": "serving",
    "serving_population": "serving",
    "serving_zipf_s": "serving",
    "query_scale": "query",
    "query_reps": "query",
    "federation_scale": "federation",
    "federation_reps": "federation",
    "federation_clients": "federation",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument("--scale", type=int, default=200,
                        help="TPC-W customers (paper: 1,000,000)")
    parser.add_argument("--reps", type=int, default=10,
                        help="repetitions per measurement (paper: 10)")
    parser.add_argument("--micro-scales", type=str, default="50,500,5000",
                        help="comma-separated micro-benchmark scales")
    parser.add_argument("--storage-rows", type=int, default=50_000,
                        help="rows for the storage-layer perf experiment")
    parser.add_argument("--clients", type=str, default="1,4,16,64",
                        help="comma-separated client counts for the "
                             "concurrency experiment")
    parser.add_argument("--concurrency-txns", type=int, default=8,
                        help="transactions per virtual client")
    parser.add_argument("--concurrency-scale", type=int, default=40,
                        help="TPC-W customers for the concurrency experiment")
    parser.add_argument("--servers", type=str, default="1,2,4,8",
                        help="comma-separated region-server counts for the "
                             "scale-out experiment")
    parser.add_argument("--scaleout-clients", type=str, default="4,16",
                        help="comma-separated client counts for the "
                             "scale-out experiment")
    parser.add_argument("--scaleout-ops", type=int, default=60,
                        help="operations per virtual client in the "
                             "scale-out experiment")
    parser.add_argument("--crash-cycles", type=str, default="0,1,2,4",
                        help="comma-separated crash/recover cycle counts "
                             "for the fault-injection experiment")
    parser.add_argument("--faults-clients", type=str, default="4,8",
                        help="comma-separated client counts for the "
                             "fault-injection experiment")
    parser.add_argument("--faults-ops", type=int, default=64,
                        help="operations per virtual client in the "
                             "fault-injection experiment")
    parser.add_argument("--replicas", type=str, default="1,2,3",
                        help="comma-separated replica counts for the "
                             "replication experiment (1 = no replication)")
    parser.add_argument("--replication-cycles", type=str, default="0,2,4",
                        help="comma-separated crash cycle counts for the "
                             "replication experiment")
    parser.add_argument("--replication-clients", type=int, default=6,
                        help="virtual clients in the replication experiment")
    parser.add_argument("--replication-ops", type=int, default=48,
                        help="operations per virtual client in the "
                             "replication experiment")
    parser.add_argument("--orchestration-cycles", type=str, default="0,2",
                        help="comma-separated crash cycle counts for the "
                             "orchestration experiment (0 = no chaos)")
    parser.add_argument("--orchestration-clients", type=int, default=4,
                        help="virtual clients in the orchestration experiment")
    parser.add_argument("--orchestration-ops", type=int, default=48,
                        help="operations per virtual client in the "
                             "orchestration experiment")
    parser.add_argument("--serving-clients", type=str, default="64,256,1024",
                        help="comma-separated virtual-client counts "
                             "(offered load) for the serving experiment")
    parser.add_argument("--serving-ops", type=int, default=6,
                        help="operations per virtual client in the "
                             "serving experiment")
    parser.add_argument("--serving-population", type=int, default=1_000_000,
                        help="Zipfian user population for the serving "
                             "experiment (paper: millions of users)")
    parser.add_argument("--serving-zipf-s", type=float, default=1.1,
                        help="Zipf skew parameter s for the serving "
                             "experiment")
    parser.add_argument("--query-scale", type=int, default=200,
                        help="TPC-W customers for the query-engine "
                             "experiment")
    parser.add_argument("--query-reps", type=int, default=5,
                        help="repetitions per query in the query-engine "
                             "experiment")
    parser.add_argument("--federation-scale", type=int, default=30,
                        help="TPC-W customers for the federation "
                             "experiment")
    parser.add_argument("--federation-reps", type=int, default=4,
                        help="repetitions per query in the federation "
                             "experiment")
    parser.add_argument("--federation-clients", type=int, default=4,
                        help="virtual clients in the federated "
                             "scheduled write mix")
    parser.add_argument("--only", type=str, default=None,
                        help="comma-separated subset of experiments to run: "
                             + ",".join(ALL_EXPERIMENTS))
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--emit-json", type=str, default=None,
                        help="write wall-clock + simulated-latency trajectory "
                             "JSON to this file")
    parser.add_argument("--baseline-json", type=str, default=None,
                        help="previously emitted JSON to compare wall-clock "
                             "against (recorded in the output)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    say = (lambda _m: None) if args.quiet else (
        lambda m: print(f"  .. {m}", file=sys.stderr)
    )
    selected = (
        set(ALL_EXPERIMENTS)
        if args.only is None
        else {s.strip() for s in args.only.split(",") if s.strip()}
    )
    unknown = selected - set(ALL_EXPERIMENTS)
    if unknown:
        parser.error(
            f"unknown experiments: {sorted(unknown)} "
            f"(valid: {', '.join(ALL_EXPERIMENTS)})"
        )
    if not selected:
        parser.error(
            "--only selected no experiments "
            f"(valid: {', '.join(ALL_EXPERIMENTS)})"
        )
    if args.only is not None:
        contradictory = sorted(
            f"--{dest.replace('_', '-')} (belongs to {suite!r})"
            for dest, suite in SUITE_FLAGS.items()
            if suite not in selected
            and getattr(args, dest) != parser.get_default(dest)
        )
        if contradictory:
            parser.error(
                "flags for experiments not selected by --only would be "
                "silently ignored: " + ", ".join(contradictory)
            )
    baseline = None
    if args.baseline_json:
        # fail before the (potentially long) run, not after it
        try:
            with open(args.baseline_json) as f:
                baseline = json.load(f)
        except (OSError, ValueError) as e:
            parser.error(f"cannot read --baseline-json: {e}")

    sections: list[str] = []
    wall_clock_s: dict[str, float] = {}
    experiments: dict[str, dict] = {}

    def timed(name: str, fn):
        t0 = time.perf_counter()
        out = fn()
        wall_clock_s[name] = round(time.perf_counter() - t0, 4)
        return out

    def record(result) -> None:
        experiments[result.experiment_id] = result.to_dict()
        sections.append(result.to_text())

    if "table1" in selected:
        sections.append("Table I — qualitative comparison\n"
                        + timed("table1", run_table1))
    if "fig13" in selected:
        sections.append("Fig. 13 — evaluated configurations\n"
                        + timed("fig13", run_fig13))
    if "storage" in selected:
        say(f"[storage] load + scan {args.storage_rows} rows")
        record(timed("storage", lambda: run_storage_perf(
            num_rows=args.storage_rows, repetitions=min(args.reps, 5))))
    if "fig10" in selected:
        micro_scales = tuple(int(s) for s in args.micro_scales.split(","))
        fig10 = timed("fig10", lambda: run_fig10(
            micro_scales, args.reps, progress=say))
        for r in fig10.values():
            record(r)
    if "fig11" in selected:
        record(timed("fig11", lambda: run_fig11(repetitions=args.reps)))
    if "concurrency" in selected:
        # deliberately NOT wall-clock-timed: the concurrency trajectory
        # must be byte-identical across runs with the same seed, and the
        # experiment itself reports only virtual-time metrics
        client_counts = tuple(
            int(s) for s in args.clients.split(",") if s.strip() and int(s) > 0
        )
        for r in run_concurrency(
            client_counts,
            txns_per_client=args.concurrency_txns,
            num_customers=args.concurrency_scale,
            progress=say,
        ).values():
            record(r)
    if "scaleout" in selected:
        # like concurrency: virtual-time metrics only, never wall-clock
        # timed, so the emitted trajectory is byte-identical across runs
        server_counts = tuple(
            int(s) for s in args.servers.split(",") if s.strip() and int(s) > 0
        )
        scaleout_clients = tuple(
            int(s)
            for s in args.scaleout_clients.split(",")
            if s.strip() and int(s) > 0
        )
        for r in run_scaleout(
            server_counts,
            scaleout_clients,
            ops_per_client=args.scaleout_ops,
            progress=say,
        ).values():
            record(r)
    if "faults" in selected:
        # chaos trajectory: virtual-time metrics only, never wall-clock
        # timed, so the emitted JSON is byte-identical across runs; any
        # durability/scan-consistency invariant violation aborts the run
        cycle_counts = tuple(
            int(s)
            for s in args.crash_cycles.split(",")
            if s.strip() and int(s) >= 0
        )
        faults_clients = tuple(
            int(s)
            for s in args.faults_clients.split(",")
            if s.strip() and int(s) > 0
        )
        for r in run_faults(
            cycle_counts,
            faults_clients,
            ops_per_client=args.faults_ops,
            progress=say,
        ).values():
            record(r)
    if "replication" in selected:
        # replication trajectory: virtual-time metrics only, never
        # wall-clock timed, so the emitted JSON is byte-identical across
        # runs; any durability/staleness violation aborts the run
        replica_counts = tuple(
            int(s)
            for s in args.replicas.split(",")
            if s.strip() and int(s) > 0
        )
        replication_cycles = tuple(
            int(s)
            for s in args.replication_cycles.split(",")
            if s.strip() and int(s) >= 0
        )
        for r in run_replication(
            replica_counts,
            replication_cycles,
            clients=args.replication_clients,
            ops_per_client=args.replication_ops,
            progress=say,
        ).values():
            record(r)
    if "orchestration" in selected:
        # rolling-operations trajectory: virtual-time metrics only,
        # never wall-clock timed, so the emitted JSON is byte-identical
        # across runs; an uncommitted stage or any durability/layout
        # violation aborts the run
        orchestration_cycles = tuple(
            int(s)
            for s in args.orchestration_cycles.split(",")
            if s.strip() and int(s) >= 0
        )
        for r in run_orchestration(
            orchestration_cycles,
            clients=args.orchestration_clients,
            ops_per_client=args.orchestration_ops,
            progress=say,
        ).values():
            record(r)
    if "serving" in selected:
        # serving trajectory: virtual-time metrics only, never
        # wall-clock timed, so the emitted JSON is byte-identical across
        # runs; any durability/read-oracle violation aborts the run
        serving_clients = tuple(
            int(s)
            for s in args.serving_clients.split(",")
            if s.strip() and int(s) > 0
        )
        for r in run_serving(
            serving_clients,
            ops_per_client=args.serving_ops,
            population=args.serving_population,
            zipf_s=args.serving_zipf_s,
            progress=say,
        ).values():
            record(r)
    if "federation" in selected:
        # routed vs pinned single-system execution: virtual-time series
        # only, never wall-clock timed, so the emitted JSON is
        # byte-identical across runs; any routed/pinned row divergence
        # aborts the run
        record(run_federation(
            num_customers=args.federation_scale,
            repetitions=args.federation_reps,
            clients=args.federation_clients,
            progress=say,
        ))
    if "query" in selected:
        # engine comparison: virtual-time series only, never wall-clock
        # timed, so the emitted JSON is byte-identical across runs; the
        # wall-clock engine race on the limited broadcast join goes to
        # stderr and is asserted by query_smoke in CI
        record(run_query(
            num_customers=args.query_scale,
            repetitions=args.query_reps,
            progress=say,
        ))

    lab_needed = selected & {"fig12", "fig14", "table2", "table3"}
    if lab_needed:
        lab = TpcwLab(num_customers=args.scale, repetitions=args.reps)
        runners = {
            "fig12": run_fig12, "fig14": run_fig14,
            "table2": run_table2, "table3": run_table3,
        }
        for name in ("fig12", "fig14", "table2", "table3"):
            if name in selected:
                record(timed(name, lambda r=runners[name]: r(lab, progress=say)))

    report = "\n\n".join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report + "\n")
    if args.emit_json:
        payload = {
            # the output path is stripped so two runs of the same
            # experiment emit byte-identical files wherever they land
            "generated_by": "python -m repro.bench " + " ".join(
                _without_output_paths(
                    argv if argv is not None else sys.argv[1:]
                )
            ),
            "config": {
                "scale": args.scale,
                "reps": args.reps,
                "micro_scales": args.micro_scales,
                "storage_rows": args.storage_rows,
            },
            "wall_clock_s": wall_clock_s,
            "experiments": experiments,
        }
        if baseline is not None:
            payload["baseline"] = baseline
            payload["wall_clock_speedup_vs_baseline"] = _speedups(
                baseline, experiments, wall_clock_s
            )
        with open(args.emit_json, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
    return 0


def _without_output_paths(argv: list[str]) -> list[str]:
    out: list[str] = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg in ("--emit-json", "--out"):
            skip = True
            continue
        if arg.startswith(("--emit-json=", "--out=")):
            continue
        out.append(arg)
    return out


def _speedups(
    baseline: dict, experiments: dict, wall_clock_s: dict
) -> dict[str, float]:
    """baseline wall-clock / current wall-clock, per experiment that
    both runs measured. The storage phases use the noise-robust
    best-of-reps series when both sides recorded it."""
    out: dict[str, float] = {}
    for name, now_s in wall_clock_s.items():
        base_s = baseline.get("wall_clock_s", {}).get(name)
        if base_s is not None and now_s:  # skip only unmeasured/zero denominators
            out[name] = round(base_s / now_s, 2)
    base = baseline.get("experiments", {}).get("StoragePerf", {})
    cur = experiments.get("StoragePerf", {})
    for label in ("Best wall-clock (s)", "Wall-clock (s)"):
        base_series = base.get("series", {}).get(label, {})
        cur_series = cur.get("series", {}).get(label, {})
        if base_series and cur_series:
            for phase, stat in base_series.items():
                now = cur_series.get(phase)
                if stat and now and now.get("mean"):
                    out[f"storage_{phase}"] = round(stat["mean"] / now["mean"], 2)
            break
    return out


if __name__ == "__main__":
    raise SystemExit(main())
