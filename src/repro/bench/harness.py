"""Result containers, statistics and text rendering for the experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class Stat:
    """Mean and standard error of repeated measurements."""

    mean: float
    stderr: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.1f}±{self.stderr:.1f}"


def summarize(samples: Sequence[float]) -> Stat:
    n = len(samples)
    if n == 0:
        return Stat(float("nan"), float("nan"), 0)
    mean = sum(samples) / n
    if n < 2:
        return Stat(mean, 0.0, n)
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    return Stat(mean, math.sqrt(var / n), n)


@dataclass
class Series:
    """One labelled series of (x -> Stat) points, e.g. one system."""

    label: str
    points: dict[Any, Stat | None] = field(default_factory=dict)

    def set(self, x: Any, stat: Stat | None) -> None:
        self.points[x] = stat


@dataclass
class ExperimentResult:
    """A rendered experiment: series over shared x-values plus notes."""

    experiment_id: str
    title: str
    x_label: str
    x_values: list[Any] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    unit: str = "ms"

    def add_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def get(self, label: str, x: Any) -> Stat | None:
        for s in self.series:
            if s.label == label:
                return s.points.get(x)
        return None

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (for ``--emit-json`` trajectory files)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "unit": self.unit,
            "x_values": [str(x) for x in self.x_values],
            "series": {
                s.label: {
                    str(x): (
                        None
                        if stat is None
                        else {"mean": stat.mean, "stderr": stat.stderr, "n": stat.n}
                    )
                    for x, stat in s.points.items()
                }
                for s in self.series
            },
            "notes": list(self.notes),
        }

    # -- rendering --------------------------------------------------------------------
    def to_text(self) -> str:
        headers = [self.x_label] + [s.label for s in self.series]
        rows: list[list[str]] = []
        for x in self.x_values:
            row = [str(x)]
            for s in self.series:
                stat = s.points.get(x)
                if stat is None:
                    row.append("X")
                else:
                    row.append(f"{stat.mean:,.1f} ± {stat.stderr:,.1f}")
            rows.append(row)
        table = render_table(headers, rows)
        lines = [f"== {self.experiment_id}: {self.title} (unit: {self.unit}) ==", table]
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Iterable[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [fmt(headers), sep]
    out.extend(fmt(r) for r in rows)
    return "\n".join(out)


def ratio_of_means(
    result: ExperimentResult, numerator: str, denominator: str
) -> float:
    """Mean over shared x-values of (numerator mean / denominator mean)."""
    ratios = []
    for x in result.x_values:
        a = result.get(numerator, x)
        b = result.get(denominator, x)
        if a is None or b is None or b.mean == 0:
            continue
        ratios.append(a.mean / b.mean)
    return sum(ratios) / len(ratios) if ratios else float("nan")
