"""TpcwLab: populate each evaluated system and measure the workload.

Systems are built, populated, measured and released **sequentially** so
peak memory stays bounded at one simulated cluster. All five systems are
populated from the same deterministic generator stream; statement
parameters are drawn per (statement, repetition), so repetitions have
realistic variance and insert repetitions never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import ClusterConfig, CostModel, DEFAULT_COST_MODEL
from repro.sim.clock import Simulation
from repro.systems import (
    BaselineSystem,
    EvaluatedSystem,
    MvccASystem,
    MvccUASystem,
    SynergyEvaluatedSystem,
    VoltDBEvaluatedSystem,
)
from repro.tpcw import (
    TPCW_ROOTS,
    TpcwDataGenerator,
    tpcw_schema,
    tpcw_workload,
)
from repro.tpcw.queries import JOIN_QUERIES
from repro.tpcw.writes import WRITE_STATEMENTS

SYSTEM_NAMES = ("VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline")


@dataclass
class SystemMeasurement:
    """Everything recorded for one system before it is released."""

    name: str
    query_times: dict[str, list[float]] = field(default_factory=dict)
    write_times: dict[str, list[float]] = field(default_factory=dict)
    unsupported: set[str] = field(default_factory=set)
    db_size_bytes: int = 0
    total_times: list[float] = field(default_factory=list)
    """Per repetition: sum of RT of every supported statement."""


class TpcwLab:
    """Builds, populates and measures the five systems at one scale."""

    def __init__(
        self,
        num_customers: int = 200,
        repetitions: int = 10,
        seed: int = 171001792,
        jitter_fraction: float = 0.02,
        cost: CostModel = DEFAULT_COST_MODEL,
        query_engine: str = "legacy",
        cost_based_planner: bool = False,
    ) -> None:
        self.num_customers = num_customers
        self.repetitions = repetitions
        self.seed = seed
        self.jitter_fraction = jitter_fraction
        self.cost = cost
        self.query_engine = query_engine
        self.cost_based_planner = cost_based_planner
        self.schema = tpcw_schema()
        self.workload = tpcw_workload()
        self.generator = TpcwDataGenerator(num_customers, seed=seed)
        self._measurements: dict[str, SystemMeasurement] = {}

    # -- system construction ------------------------------------------------------------
    def row_estimates(self) -> dict[str, int]:
        g = self.generator
        return {
            "Country": 92,
            "Address": g.num_addresses,
            "Customer": g.num_customers,
            "Author": g.num_authors,
            "Item": g.num_items,
            "Orders": g.num_orders,
            "Order_line": 3 * g.num_orders,
            "CC_Xacts": g.num_orders,
            "Shopping_cart": g.num_carts,
            "Shopping_cart_line": 3 * g.num_carts,
        }

    def _sim(self) -> Simulation:
        return Simulation(
            cost=self.cost, seed=self.seed, jitter_fraction=self.jitter_fraction
        )

    def build_system(self, name: str) -> EvaluatedSystem:
        cluster_config = ClusterConfig(cost=self.cost)
        if name == "Synergy":
            return SynergyEvaluatedSystem(
                self.schema, self.workload, TPCW_ROOTS,
                sim=self._sim(), cluster_config=cluster_config,
            )
        if name == "MVCC-A":
            return MvccASystem(
                self.schema, self.workload, TPCW_ROOTS,
                sim=self._sim(), cluster_config=cluster_config,
            )
        if name == "MVCC-UA":
            return MvccUASystem(
                self.schema, self.workload, self.row_estimates(),
                sim=self._sim(), cluster_config=cluster_config,
            )
        if name == "Baseline":
            return BaselineSystem(
                self.schema, self.workload,
                sim=self._sim(), cluster_config=cluster_config,
            )
        if name == "VoltDB":
            return VoltDBEvaluatedSystem(
                self.schema, self.workload, sim=self._sim()
            )
        raise KeyError(name)

    def _configure_engine(self, system: EvaluatedSystem) -> None:
        """Apply the lab's engine/planner mode to Phoenix-backed
        systems (VoltDB has no Phoenix connection). The defaults leave
        every system on the anchored legacy path."""
        conn = getattr(system, "conn", None)
        if conn is not None and (
            self.query_engine != "legacy" or self.cost_based_planner
        ):
            conn.configure_engine(
                engine=self.query_engine, cost_based=self.cost_based_planner
            )

    def populate(self, system: EvaluatedSystem) -> None:
        gen = TpcwDataGenerator(self.num_customers, seed=self.seed)
        system.load(gen.all_rows())
        system.finish_load()
        self._configure_engine(system)

    # -- measurement ----------------------------------------------------------------------
    def measure_system(
        self,
        name: str,
        progress: Callable[[str], None] | None = None,
    ) -> SystemMeasurement:
        """Build + populate + run the full workload; release the system."""
        if name in self._measurements:
            return self._measurements[name]
        say = progress or (lambda _msg: None)
        say(f"[{name}] building and populating scale={self.num_customers}")
        system = self.build_system(name)
        self.populate(system)
        m = SystemMeasurement(name=name, db_size_bytes=system.db_size_bytes())

        statement_ids = list(JOIN_QUERIES) + list(WRITE_STATEMENTS)
        for sid in statement_ids:
            if not system.supports(sid):
                m.unsupported.add(sid)
        for rep in range(self.repetitions):
            total = 0.0
            for qid in JOIN_QUERIES:
                if qid in m.unsupported:
                    continue
                params = self.generator.params_for_query(qid, rep)
                _, ms = system.timed_id(qid, params)
                m.query_times.setdefault(qid, []).append(ms)
                total += ms
            for wid in WRITE_STATEMENTS:
                if wid in m.unsupported:
                    continue
                params = self.generator.params_for_write(wid, rep)
                _, ms = system.timed_id(wid, params)
                m.write_times.setdefault(wid, []).append(ms)
                total += ms
            m.total_times.append(total)
            say(f"[{name}] rep {rep + 1}/{self.repetitions} total={total:.0f}ms")
        self._measurements[name] = m
        del system  # release the simulated cluster before the next one
        return m

    def measure_all(
        self, progress: Callable[[str], None] | None = None
    ) -> dict[str, SystemMeasurement]:
        for name in SYSTEM_NAMES:
            self.measure_system(name, progress)
        return dict(self._measurements)
