"""Benchmark harness: one runner per table/figure of the paper.

=============  ========================================  =====================
Experiment     Paper result                              Runner
=============  ========================================  =====================
Fig. 10(a,b)   micro-benchmark: view scan vs join        :func:`run_fig10`
Fig. 11        row-locking overhead vs lock count        :func:`run_fig11`
Fig. 12        TPC-W join queries across 5 systems       :func:`run_fig12`
Fig. 13        mechanism matrix                          :func:`run_fig13`
Fig. 14        TPC-W write statements across 5 systems   :func:`run_fig14`
Table I        qualitative comparison                    :func:`run_table1`
Table II       sum of all statement response times       :func:`run_table2`
Table III      database sizes                            :func:`run_table3`
=============  ========================================  =====================

``python -m repro.bench --scale 200`` regenerates everything and prints
the paper-style rows.
"""

from repro.bench.harness import ExperimentResult, Series, summarize
from repro.bench.tpcw_lab import TpcwLab
from repro.bench.experiments import (
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_table1,
    run_table2,
    run_table3,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "TpcwLab",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_table1",
    "run_table2",
    "run_table3",
    "summarize",
]
