"""A simulated, multi-node HBase.

Faithful to the architecture the paper relies on (Sec. II-C):

* tables of rows **sorted by row key**, columns grouped into column
  families, cells carrying multiple timestamped versions;
* a data-manipulation API of five primitives — :class:`Get`,
  :class:`Put`, :class:`Scan`, :class:`Delete`, :class:`Increment` —
  plus the atomic ``checkAndPut`` used for row locks;
* region servers hosting key-ranged regions (memstore + HFiles + WAL),
  a master assigning regions, and major compaction;
* single-row ACID with read-committed semantics.

Every operation charges virtual time through the owning
:class:`~repro.sim.clock.Simulation`: RPC round trips, server-side row
work, WAL syncs and result-transfer bytes. Response-time experiments
measure elapsed virtual time.
"""

from repro.hbase.bytes_util import decode_key, encode_key
from repro.hbase.cell import Cell, Result
from repro.hbase.client import HBaseClient, HTable
from repro.hbase.cluster import HBaseCluster, RegionBalancer
from repro.hbase.ops import Delete, Get, Increment, Put, Scan
from repro.hbase.filters import (
    ColumnValueFilter,
    FilterBase,
    PrefixFilter,
    RowRangeFilter,
)
from repro.hbase.replication import (
    ReplicationManager,
    ReplicationShipper,
)

__all__ = [
    "Cell",
    "ColumnValueFilter",
    "Delete",
    "FilterBase",
    "Get",
    "HBaseClient",
    "HBaseCluster",
    "HTable",
    "Increment",
    "PrefixFilter",
    "Put",
    "RegionBalancer",
    "ReplicationManager",
    "ReplicationShipper",
    "Result",
    "RowRangeFilter",
    "Scan",
    "decode_key",
    "encode_key",
]
