"""Write-ahead log for a region server.

Every mutation is appended (and charged as a synchronous HDFS sync)
before being applied to the memstore; entries are truncated per region
when its memstore flushes, and replayed on recovery after a simulated
region-server crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class WalEntry:
    """One logged mutation."""

    region_name: str
    kind: str  # "put" | "delete"
    row: bytes
    payload: Any  # put: list[(family, qualifier, value, ts)]; delete: columns|None
    timestamp: int


class WriteAheadLog:
    """Per-server WAL with per-region truncation."""

    def __init__(self) -> None:
        self._entries: dict[str, list[WalEntry]] = {}
        self.total_appends = 0

    def append(self, entry: WalEntry) -> None:
        self._entries.setdefault(entry.region_name, []).append(entry)
        self.total_appends += 1

    def entries_for(self, region_name: str) -> list[WalEntry]:
        return list(self._entries.get(region_name, ()))

    def truncate(self, region_name: str) -> None:
        """Discard entries persisted by a memstore flush."""
        self._entries.pop(region_name, None)

    def pending_count(self, region_name: str | None = None) -> int:
        if region_name is not None:
            return len(self._entries.get(region_name, ()))
        return sum(len(v) for v in self._entries.values())
