"""Write-ahead log for a region server.

Every mutation is appended (and charged as a synchronous HDFS sync)
before being applied to the memstore; entries are truncated per region
when its memstore flushes, and replayed on recovery after a simulated
region-server crash.
"""

from __future__ import annotations

from typing import Any


class WalEntry:
    """One logged mutation. A ``__slots__`` class with a plain
    positional constructor: one is appended on every write, so
    construction cost matters (≈2x cheaper than a NamedTuple), and
    unlike a ``tuple.__new__`` bypass it stays correct if fields are
    ever added. Treated as immutable once logged."""

    __slots__ = ("region_name", "kind", "row", "payload", "timestamp")

    def __init__(
        self,
        region_name: str,
        kind: str,  # "put" | "delete"
        row: bytes,
        payload: Any,  # put: list[(family, qualifier, value, ts)]; delete: columns|None
        timestamp: int,
    ) -> None:
        self.region_name = region_name
        self.kind = kind
        self.row = row
        self.payload = payload
        self.timestamp = timestamp

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WalEntry({self.region_name!r}, {self.kind!r}, {self.row!r}, "
            f"{self.payload!r}, {self.timestamp})"
        )


class _TapBuffer(list):
    """A per-region WAL buffer with a replication tap: every entry
    appended is also pushed to the tap callback (the primary-side feed
    of a replication group's ship log). A ``list`` subclass so the hot
    batched write path — which binds ``buffer_for(...).append`` once
    per batch — keeps working unchanged; only regions with a tap
    installed ever pay the extra call."""

    __slots__ = ("_tap",)

    def __init__(self, tap, initial=()) -> None:
        super().__init__(initial)
        self._tap = tap

    def append(self, entry: WalEntry) -> None:
        list.append(self, entry)
        self._tap(entry)


class WriteAheadLog:
    """Per-server WAL with per-region truncation."""

    def __init__(self) -> None:
        self._entries: dict[str, list[WalEntry]] = {}
        self._taps: dict[str, Any] = {}
        self.total_appends = 0

    def _new_buffer(self, region_name: str) -> list[WalEntry]:
        tap = self._taps.get(region_name)
        return [] if tap is None else _TapBuffer(tap)

    def append(self, entry: WalEntry) -> None:
        per_region = self._entries.get(entry.region_name)
        if per_region is None:
            per_region = self._entries[entry.region_name] = (
                self._new_buffer(entry.region_name)
            )
        per_region.append(entry)
        self.total_appends += 1

    def buffer_for(self, region_name: str) -> list[WalEntry]:
        """The live append buffer for one region (batched write path:
        the caller appends entries directly and accounts
        ``total_appends`` itself). Invalidated by :meth:`truncate` —
        re-fetch after a flush."""
        per_region = self._entries.get(region_name)
        if per_region is None:
            per_region = self._entries[region_name] = (
                self._new_buffer(region_name)
            )
        return per_region

    # -- replication taps ------------------------------------------------------
    def install_tap(self, region_name: str, tap) -> None:
        """Feed every future append under ``region_name`` to ``tap``
        (entries already buffered are NOT replayed — the installer owns
        catching a follower up from the region's current state). The
        tap survives flush truncation: a fresh buffer created after
        :meth:`truncate` is tapped again."""
        self._taps[region_name] = tap
        existing = self._entries.get(region_name)
        if existing is not None and not isinstance(existing, _TapBuffer):
            self._entries[region_name] = _TapBuffer(tap, existing)

    def remove_tap(self, region_name: str) -> None:
        self._taps.pop(region_name, None)
        existing = self._entries.get(region_name)
        if isinstance(existing, _TapBuffer):
            self._entries[region_name] = list(existing)

    def entries_for(self, region_name: str) -> list[WalEntry]:
        return list(self._entries.get(region_name, ()))

    def entries_for_range(
        self,
        region_name: str,
        start: bytes,
        stop: bytes | None,
    ) -> list[WalEntry]:
        """Entries logged under ``region_name`` whose row falls in
        ``[start, stop)`` — how a region that split since the write
        recovers its half of an ancestor's log."""
        return [
            e
            for e in self._entries.get(region_name, ())
            if e.row >= start and (stop is None or e.row < stop)
        ]

    def truncate(self, region_name: str) -> None:
        """Discard entries persisted by a memstore flush."""
        self._entries.pop(region_name, None)

    def truncate_range(
        self,
        region_name: str,
        start: bytes,
        stop: bytes | None,
    ) -> None:
        """Drop the ``[start, stop)`` slice of one region's buffer: when
        a daughter region flushes, the rows it just persisted must also
        leave the log its split ancestors wrote them to."""
        buffer = self._entries.get(region_name)
        if not buffer:
            return
        kept = [
            e
            for e in buffer
            if e.row < start or (stop is not None and e.row >= stop)
        ]
        if kept:
            tap = self._taps.get(region_name)
            # rebuild without re-tapping: the kept entries were already
            # fed to the tap when they were first appended
            self._entries[region_name] = (
                kept if tap is None else _TapBuffer(tap, kept)
            )
        else:
            del self._entries[region_name]

    def clear(self) -> None:
        """Drop every buffered entry (server restart after failover:
        the old log was already replayed — or abandoned — elsewhere).
        Replication taps are dropped too — a restarted server hosts
        nothing, so any tap left here points at a region that was
        promoted or recovered onto another server's log.
        ``total_appends`` is lifetime accounting and survives."""
        self._entries = {}
        self._taps = {}

    def pending_count(self, region_name: str | None = None) -> int:
        if region_name is not None:
            return len(self._entries.get(region_name, ()))
        return sum(len(v) for v in self._entries.values())
