"""Client API: connection + HTable with the five primitives.

The client charges what a real HBase client pays: one RPC round trip
per addressed region, result bytes over the wire, and scanner batches
(``Scan`` streams ``scan_batch_rows`` rows per ``next()`` round trip).
Server-side work (seeks, per-row materialization, WAL syncs) is charged
by the region server it lands on.

Region locations are cached client-side (mirroring real HBase meta
caching): point ops consult the last-hit region first and fall back to
the table descriptor's binary search only on a range miss or when the
descriptor's region layout version moved (split/drop/recovery). A
cached location can still go stale *mid-operation* — a region can split
or fail over between resolution and execution — in which case the op
observes the offline region, pays one extra meta round trip,
re-resolves, and retries against the live successor (real HBase's
NotServingRegionException dance). Scans do the same: a split or a
completed recovery under an open scanner makes the client reopen at
the next undelivered row on whichever region now owns it, so one
logical scan seamlessly crosses split and failover boundaries. A
region that is down with no successor yet (crashed, master recovery
pending) propagates `RegionUnavailableError` to the caller — under a
scheduled chaos run the client program backs off, yields and retries
(see ``repro.sim.faults``) — and the per-operation relocation budget
is bounded by ``MAX_LOCATION_RETRIES``, surfacing a typed
`RegionRetriesExhaustedError` instead of an unbounded meta-retry loop.

Under a multi-client scheduler (``sim.concurrency`` installed) every
operation additionally queues on the region server that hosts the
addressed region — per-partition work routes to its owning server, so
scale-out genuinely parallelizes. Single-client runs skip all of it and
stay bit-identical.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import RegionRetriesExhaustedError, RegionUnavailableError
from repro.hbase.cell import Result
from repro.hbase.cluster import HBaseCluster
from repro.hbase.ops import Delete, Get, Increment, Put, Scan
from repro.hbase.region import Region
from repro.sim.latency import LatencyCharger


_FOLLOWER_MISS = object()
"""Sentinel: no eligible follower served the read — use the primary."""


class HTable:
    """Client-side view of one table."""

    MAX_LOCATION_RETRIES = 16
    """Relocations one operation may pay before giving up with a
    :class:`~repro.errors.RegionRetriesExhaustedError` — bounds the
    meta-retry loop when a key range keeps resolving to regions that
    turn out to be unavailable (deep split chains, repeated failover).
    This class attribute is the documented default; each instance
    shadows it with ``ClusterConfig.max_location_retries`` at
    construction time, so the budget is a cluster-level knob."""

    def __init__(
        self,
        cluster: HBaseCluster,
        name: str,
        follower_reads: bool = False,
    ) -> None:
        self.cluster = cluster
        self.name = name
        self.desc = cluster.descriptor(name)
        self.charge = LatencyCharger(cluster.sim, "client")
        self._cached_region: Region | None = None
        self._cached_version = -1
        self.MAX_LOCATION_RETRIES = cluster.config.max_location_retries
        self.follower_reads = follower_reads
        """Opt-in bounded-staleness reads: gets and scan windows are
        served by the most-caught-up region replica within the
        configured staleness bound, falling back to the primary when no
        follower qualifies. Reads are pinned to the follower's
        applied-WAL watermark — a prefix of acknowledged writes — so a
        follower can never return a never-acked value."""
        self.last_follower_lag: tuple[int, int] | None = None
        """After a follower-served :meth:`get`: ``(row_lag,
        entry_lag)`` — edits to the read row, and log entries overall,
        the serving follower had not yet applied. None when the primary
        served (reset at the start of every get). The chaos harness
        records this so the staleness oracle can check the exact value
        a bounded-lag read must have returned."""
        self.follower_scan_lag: list[tuple[int, dict[bytes, int]]] = []
        """One ``(entry_lag, missing_rows)`` record per follower-served
        scan window: the follower's total lag and, per row in the
        window's range, how many acked edits its watermark had not yet
        applied when the window opened."""

    # -- region-location cache --------------------------------------------------------
    def _locate(self, row: bytes) -> Region:
        """Resolve the region for ``row`` via the client-side location
        cache; invalidated whenever the descriptor's layout version moves."""
        region = self._cached_region
        if (
            region is not None
            and self._cached_version == self.desc.version
            and region.contains(row)
        ):
            return region
        region = self.desc.region_for(row)
        self._cached_region = region
        self._cached_version = self.desc.version
        return region

    def _relocate(self, region: Region, row: bytes) -> None:
        """A located region turned out to be offline mid-operation.

        When the meta table already knows a live successor for ``row``
        — the region split (daughters own the range) or master failover
        reopened it elsewhere (recovery swapped a fresh incarnation into
        the descriptor) — drop the cached location and pay one meta
        round trip so the caller retries against the successor. A region
        that is down with *no* successor yet propagates unchanged:
        recovery is the master's job, and waiting it out is the caller's
        (a chaos client program backs off, yields to the scheduler and
        retries — see ``repro.sim.faults``)."""
        if region.split_daughters is None:
            fresh = (
                self.desc.region_for(row) if self.desc.regions else None
            )
            if fresh is None or fresh is region or not fresh.online:
                # still down: nothing to relocate to yet
                raise  # noqa: PLE0704 - re-raise the active RegionUnavailableError
        self._cached_region = None
        self.charge.rpc()  # meta lookup to refresh the location

    # -- scheduled-run routing ----------------------------------------------------------
    def _enter_server(self, server, admission: bool = True):
        """Queue on the owning region server when a scheduler is
        driving multiple clients; no-op (and no cost) otherwise.

        When the server runs an admission controller, the request is
        offered to it *before* it queues: a request arriving past the
        queue bound is shed with a typed retryable
        :class:`~repro.errors.ServerOverloadedError` without consuming
        any server capacity. Returns ``(ctx, token)``; the token (the
        admission timestamp) must be handed back to
        :meth:`_exit_server` so the controller can observe the
        request's completed latency for its p99 estimate."""
        ctx = self.cluster.sim.concurrency
        token = None
        if ctx is not None:
            sim = self.cluster.sim
            if admission and server.admission is not None:
                now = sim.clock.now_ms
                token = server.admission.admit(
                    self.name, now, ctx.backlog_ms(server, now)
                )
            ctx.serial_enter((server,), sim)
        return ctx, token

    def _exit_server(self, server, ctx, token) -> None:
        """Settle one server window opened by :meth:`_enter_server`."""
        if ctx is not None:
            sim = self.cluster.sim
            ctx.serial_exit((server,), sim)
            if token is not None:
                server.admission.complete(token, sim.clock.now_ms)

    def _routed(self, row: bytes, op_at):
        """Run ``op_at(region)`` against the located region, retrying
        through :meth:`_relocate` whenever the location was stale. The
        retry budget is bounded: an operation that keeps resolving to
        unavailable regions surfaces a typed
        :class:`~repro.errors.RegionRetriesExhaustedError` instead of
        looping on meta lookups forever."""
        for _ in range(self.MAX_LOCATION_RETRIES):
            region = self._locate(row)
            try:
                return op_at(region)
            except RegionUnavailableError:
                self._relocate(region, row)
        raise RegionRetriesExhaustedError(
            f"operation on row {row!r} of table {self.name} gave up "
            f"after {self.MAX_LOCATION_RETRIES} relocation attempts"
        )

    # -- point ops --------------------------------------------------------------------
    def get(self, op: Get) -> Result | None:
        if self.follower_reads:
            self.last_follower_lag = None
            rep = self.cluster.replication
            if rep is not None:
                result = self._follower_get(rep, op)
                if result is not _FOLLOWER_MISS:
                    return result
        return self._routed(op.row, lambda region: self._get_at(region, op))

    def _follower_get(self, rep, op: Get):
        """Serve ``op`` from the most-caught-up in-bound follower of the
        addressed region, or return the miss sentinel (no group, no
        follower within the staleness bound, or the follower died under
        the read) so the caller takes the primary path. Charges mirror
        :meth:`_get_at`, landed on the follower's server — which keeps
        serving while the primary's server is down: the whole point."""
        region = self._locate(op.row)
        follower = rep.follower_for_read(region)
        if follower is None:
            return _FOLLOWER_MISS
        self.charge.rpc()
        server = follower.server
        # no admission on the follower path: a shed would be raised
        # before the try below and so escape instead of falling back to
        # the primary — and bounding follower staleness, not follower
        # load, is this path's contract
        ctx, token = self._enter_server(server, admission=False)
        try:
            server.charge.seek()
            result = follower.region.read_row(
                op.row, op.columns, op.max_versions, op.time_range
            )
            if result is not None:
                server.charge.rows_read(1)
                self.charge.transfer(result.size_bytes)
            # pin the observation: nothing yields between the read and
            # these counters, so they describe exactly the prefix read
            group = rep.groups[region.name]
            self.last_follower_lag = (
                rep.row_lag(region, follower, op.row),
                len(group.log) - follower.applied,
            )
            return result
        except RegionUnavailableError:
            return _FOLLOWER_MISS
        finally:
            self._exit_server(server, ctx, token)

    def _get_at(self, region: Region, op: Get) -> Result | None:
        # the round trip is charged before resolving the host: a stale
        # location still pays the wasted RPC that discovers it is stale
        self.charge.rpc()
        server = self.cluster.server_for(region)
        ctx, token = self._enter_server(server)
        try:
            result = server.serve_get(
                region, op.row, op.columns, op.max_versions, op.time_range
            )
            if result is not None:
                self.charge.transfer(result.size_bytes)
            return result
        finally:
            self._exit_server(server, ctx, token)

    def put(self, op: Put) -> None:
        self._routed(op.row, lambda region: self._put_at(region, op))

    def _put_at(self, region: Region, op: Put) -> None:
        self.charge.rpc()
        server = self.cluster.server_for(region)
        ctx, token = self._enter_server(server)
        try:
            ts = self.cluster.next_timestamp()
            server.apply_put(region, op.row, op.cells, ts)
            rep = self.cluster.replication
            if rep is not None:
                rep.after_write(region)  # ack_mode="all": sync ship
        finally:
            self._exit_server(server, ctx, token)

    def put_batch(self, ops: list[Put], _depth: int = 0) -> None:
        """Buffered multi-put: one RPC per addressed region, WAL batched.

        Relocation retries (a group's region splitting or failing over
        under the batch) share the bounded budget point ops have:
        re-dispatch depth past ``MAX_LOCATION_RETRIES`` surfaces a
        typed :class:`~repro.errors.RegionRetriesExhaustedError`."""
        if not ops:
            return
        if _depth >= self.MAX_LOCATION_RETRIES:
            raise RegionRetriesExhaustedError(
                f"put_batch on table {self.name} gave up after {_depth} "
                "relocation attempts"
            )
        regions = self.desc.regions
        if len(regions) == 1:
            # single-region table: every row lands there by definition
            grouped: list[tuple[Region, list[Put]]] = [(regions[0], ops)]
        else:
            # group by region in first-appearance order; consecutive
            # puts usually hit the same region, so test bounds inline
            groups: dict[int, tuple[Region, list[Put]]] = {}
            cur_region: Region | None = None
            cur_start: bytes = b""
            cur_end: bytes | None = None
            cur_append = None
            for op in ops:
                row = op.row
                if (
                    cur_append is None
                    or row < cur_start
                    or (cur_end is not None and row >= cur_end)
                ):
                    cur_region = self._locate(row)
                    cur_start = cur_region.start_key
                    cur_end = cur_region.end_key
                    group = groups.get(id(cur_region))
                    if group is None:
                        cur_list: list[Put] = []
                        groups[id(cur_region)] = (cur_region, cur_list)
                    else:
                        cur_list = group[1]
                    cur_append = cur_list.append
                cur_append(op)
            grouped = list(groups.values())
        for region, puts in grouped:
            try:
                self.charge.rpc()
                server = self.cluster.server_for(region)
                ctx, token = self._enter_server(server)
                try:
                    server.charge.wal_append()  # one group sync per batch
                    first_ts = self.cluster.reserve_timestamps(len(puts))
                    server.apply_puts(region, puts, first_ts)
                    rep = self.cluster.replication
                    if rep is not None:
                        rep.after_write(region)  # ack_mode="all"
                finally:
                    self._exit_server(server, ctx, token)
            except RegionUnavailableError:
                # the group's region split (or failed over) under the
                # batch: re-dispatch just these puts, regrouped against
                # the fresh layout
                self._relocate(region, puts[0].row)
                self.put_batch(puts, _depth + 1)

    def delete(self, op: Delete) -> None:
        self._routed(op.row, lambda region: self._delete_at(region, op))

    def _delete_at(self, region: Region, op: Delete) -> None:
        self.charge.rpc()
        server = self.cluster.server_for(region)
        ctx, token = self._enter_server(server)
        try:
            ts = self.cluster.next_timestamp()
            server.apply_delete(region, op.row, op.columns, ts)
            rep = self.cluster.replication
            if rep is not None:
                rep.after_write(region)  # ack_mode="all": sync ship
        finally:
            self._exit_server(server, ctx, token)

    def increment(self, op: Increment) -> int:
        """Atomic read-add-write on an 8-byte big-endian counter."""
        return self._routed(op.row, lambda region: self._increment_at(region, op))

    def _increment_at(self, region: Region, op: Increment) -> int:
        self.charge.rpc()
        server = self.cluster.server_for(region)
        ctx, token = self._enter_server(server)
        try:
            server.charge.seek()
            result = region.read_row(op.row, [(op.family, op.qualifier)])
            current = 0
            if result is not None:
                raw = result.value(op.family, op.qualifier)
                if raw:
                    current = struct.unpack(">q", raw)[0]
            new_value = current + op.amount
            ts = self.cluster.next_timestamp()
            server.apply_put(
                region,
                op.row,
                [(op.family, op.qualifier, struct.pack(">q", new_value), None)],
                ts,
            )
            rep = self.cluster.replication
            if rep is not None:
                rep.after_write(region)  # ack_mode="all": sync ship
            return new_value
        finally:
            self._exit_server(server, ctx, token)

    def check_and_put(
        self,
        row: bytes,
        family: bytes,
        qualifier: bytes,
        expected: bytes | None,
        put: Put,
    ) -> bool:
        """Atomically: if current value of (family, qualifier) == expected
        (None = column absent), apply ``put`` and return True."""
        return self._routed(
            row,
            lambda region: self._check_and_put_at(
                region, row, family, qualifier, expected, put
            ),
        )

    def _check_and_put_at(
        self,
        region: Region,
        row: bytes,
        family: bytes,
        qualifier: bytes,
        expected: bytes | None,
        put: Put,
    ) -> bool:
        self.charge.check_and_put()
        server = self.cluster.server_for(region)
        ctx, token = self._enter_server(server)
        try:
            # the read half of the RMW pays what a Get pays: a server-
            # side seek plus, when the row exists, row materialization
            # and the compared bytes over the wire
            server.charge.seek()
            result = region.read_row(row, [(family, qualifier)])
            current = None
            if result is not None:
                server.charge.rows_read(1)
                self.charge.transfer(result.size_bytes)
                current = result.value(family, qualifier)
            if current != expected:
                return False
            ts = self.cluster.next_timestamp()
            server.apply_put(region, put.row, put.cells, ts)
            rep = self.cluster.replication
            if rep is not None:
                rep.after_write(region)  # ack_mode="all": sync ship
            return True
        finally:
            self._exit_server(server, ctx, token)

    # -- scans -------------------------------------------------------------------------
    def scan(self, op: Scan | None = None) -> Iterator[Result]:
        """Stream rows in key order across all overlapping regions.

        One streaming merged cursor per region (memstore + HFiles heap-
        merged), with the requested column set pushed down into the
        merge. Charges: per region one open RPC + seek; one RPC per
        ``scan_batch_rows`` rows transferred; server-side per-row read
        work for every row *examined* (filtered and deleted rows still
        cost reads).

        The region to read next is resolved lazily against the live
        layout, and the cursor tracks the next undelivered row key: when
        a region splits under the open scanner the client pays one meta
        round trip and reopens on the daughter that owns the cursor, so
        the merged stream crosses split boundaries without dropping or
        repeating rows.
        """
        op = op or Scan()
        batch_size = self.cluster.config.cost.scan_batch_rows
        emitted = 0
        wanted = frozenset(op.columns) if op.columns else None
        scan_filter = op.filter
        limit = op.limit
        unlimited = limit is None
        charge_rpc = self.charge.rpc
        charge_transfer = self.charge.transfer
        size_bytes_of = Result.size_bytes.fget  # skip descriptor per row
        cursor = op.start_row  # next row key still to be examined
        stop_row = op.stop_row or None
        rep = self.cluster.replication if self.follower_reads else None
        skip_follower = False  # set when a follower died under a window
        while True:
            if not self.desc.regions:  # dropped table, stale handle
                return
            # regions tile the key space, so the next region to read is
            # a single O(log R) lookup, not a pass over the region list
            region = self.desc.region_for(cursor)
            if stop_row is not None and region.start_key >= stop_row:
                return
            start = max(cursor, region.start_key)
            stop = _min_stop(stop_row, region.end_key)
            follower = None
            if rep is not None and not skip_follower:
                follower = rep.follower_for_read(region)
            skip_follower = False
            if follower is not None:
                # serve this window from the follower, pinned to its
                # applied watermark; record the pinning (total lag +
                # per-row un-applied edit counts inside the window) so
                # the staleness oracle knows which rows the window was
                # allowed to be missing or behind on
                source = follower.region
                server = follower.server
                group = rep.groups[region.name]
                self.follower_scan_lag.append(
                    (
                        len(group.log) - follower.applied,
                        rep.missing_rows(region, follower, start, stop),
                    )
                )
            else:
                source = region
                server = self.cluster.server_for(region)
            ctx, token = self._enter_server(server)
            charge_rpc()  # open scanner on this region
            server.charge.seek()
            row_read = server.charge.row_read
            batch_rows = 0
            batch_bytes = 0
            relocate = False
            # the finally settles this region window on every exit —
            # normal completion, limit reached, split relocation, crash,
            # and a consumer abandoning the generator mid-iteration
            try:
                for key, result in source.scan(
                    start, stop, wanted, op.max_versions, op.time_range
                ):
                    cursor = key + b"\x00"  # resume point past this row
                    row_read()
                    if result is None:
                        continue
                    if scan_filter is not None and not scan_filter.accept(result):
                        continue
                    batch_rows += 1
                    batch_bytes += size_bytes_of(result)
                    if batch_rows >= batch_size:
                        charge_rpc()
                        charge_transfer(batch_bytes)
                        batch_rows = 0
                        batch_bytes = 0
                    emitted += 1
                    yield result
                    if not unlimited and emitted >= limit:
                        return
            except RegionUnavailableError:
                if follower is not None:
                    # the follower died under its window: retry the
                    # window (from the cursor) on the primary, without
                    # paying a meta relocation — the primary's location
                    # was never stale
                    skip_follower = True
                else:
                    # re-raises an unrecovered crash; on a split or a
                    # completed recovery: drops the cached location and
                    # pays the meta round trip, after which we reopen at
                    # the cursor on the region now owning it — one
                    # logical scan crosses split *and* failover
                    # boundaries seamlessly
                    self._relocate(region, cursor)
                    relocate = True
            finally:
                if batch_rows:  # rows yielded so far were delivered
                    charge_rpc()
                    charge_transfer(batch_bytes)
                self._exit_server(server, ctx, token)
            if relocate or skip_follower:
                continue
            if region.end_key is None or (
                stop_row is not None and region.end_key >= stop_row
            ):
                return
            cursor = region.end_key

    def scan_all(self, op: Scan | None = None) -> list[Result]:
        return list(self.scan(op))

    # -- stats -------------------------------------------------------------------------
    def row_count(self) -> int:
        return self.cluster.table_row_count(self.name)

    def size_bytes(self) -> int:
        return self.cluster.table_size_bytes(self.name)


def _min_stop(a: bytes | None, b: bytes | None) -> bytes | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


class HBaseClient:
    """Connection façade: table handles + DDL passthrough."""

    def __init__(self, cluster: HBaseCluster) -> None:
        self.cluster = cluster
        self._tables: dict[str, HTable] = {}

    def table(self, name: str) -> HTable:
        if name not in self._tables:
            self._tables[name] = HTable(self.cluster, name)
        return self._tables[name]

    def create_table(
        self,
        name: str,
        families: tuple[bytes, ...] = (b"cf",),
        split_keys: list[bytes] | None = None,
        max_versions: int | None = None,
    ) -> HTable:
        self.cluster.create_table(name, families, split_keys, max_versions)
        return self.table(name)

    def drop_table(self, name: str) -> None:
        self.cluster.drop_table(name)
        self._tables.pop(name, None)

    def has_table(self, name: str) -> bool:
        return self.cluster.has_table(name)
