"""Client API: connection + HTable with the five primitives.

The client charges what a real HBase client pays: one RPC round trip
per addressed region, result bytes over the wire, and scanner batches
(``Scan`` streams ``scan_batch_rows`` rows per ``next()`` round trip).
Server-side work (seeks, per-row materialization, WAL syncs) is charged
by the region server it lands on.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator

from repro.hbase.cell import Result
from repro.hbase.cluster import HBaseCluster
from repro.hbase.ops import Delete, Get, Increment, Put, Scan
from repro.sim.latency import LatencyCharger


class HTable:
    """Client-side view of one table."""

    def __init__(self, cluster: HBaseCluster, name: str) -> None:
        self.cluster = cluster
        self.name = name
        self.desc = cluster.descriptor(name)
        self.charge = LatencyCharger(cluster.sim, "client")

    # -- point ops --------------------------------------------------------------------
    def get(self, op: Get) -> Result | None:
        region = self.desc.region_for(op.row)
        server = self.cluster.server_for(region)
        self.charge.rpc()
        server.charge.seek()
        result = region.read_row(
            op.row, op.columns, op.max_versions, op.time_range
        )
        if result is not None:
            server.charge.rows_read(1)
            self.charge.transfer(result.size_bytes)
        return result

    def put(self, op: Put) -> None:
        region = self.desc.region_for(op.row)
        server = self.cluster.server_for(region)
        self.charge.rpc()
        ts = self.cluster.next_timestamp()
        server.apply_put(region, op.row, op.cells, ts)

    def put_batch(self, ops: list[Put]) -> None:
        """Buffered multi-put: one RPC per addressed region, WAL batched."""
        by_region: dict[str, list[Put]] = {}
        regions = {}
        for op in ops:
            region = self.desc.region_for(op.row)
            regions[region.name] = region
            by_region.setdefault(region.name, []).append(op)
        for region_name, puts in by_region.items():
            region = regions[region_name]
            server = self.cluster.server_for(region)
            self.charge.rpc()
            server.charge.wal_append()  # one group sync per region batch
            for op in puts:
                ts = self.cluster.next_timestamp()
                server.apply_put(region, op.row, op.cells, ts, charge_wal=False)

    def delete(self, op: Delete) -> None:
        region = self.desc.region_for(op.row)
        server = self.cluster.server_for(region)
        self.charge.rpc()
        ts = self.cluster.next_timestamp()
        server.apply_delete(region, op.row, op.columns, ts)

    def increment(self, op: Increment) -> int:
        """Atomic read-add-write on an 8-byte big-endian counter."""
        region = self.desc.region_for(op.row)
        server = self.cluster.server_for(region)
        self.charge.rpc()
        server.charge.seek()
        result = region.read_row(op.row, [(op.family, op.qualifier)])
        current = 0
        if result is not None:
            raw = result.value(op.family, op.qualifier)
            if raw:
                current = struct.unpack(">q", raw)[0]
        new_value = current + op.amount
        ts = self.cluster.next_timestamp()
        server.apply_put(
            region,
            op.row,
            [(op.family, op.qualifier, struct.pack(">q", new_value), None)],
            ts,
        )
        return new_value

    def check_and_put(
        self,
        row: bytes,
        family: bytes,
        qualifier: bytes,
        expected: bytes | None,
        put: Put,
    ) -> bool:
        """Atomically: if current value of (family, qualifier) == expected
        (None = column absent), apply ``put`` and return True."""
        region = self.desc.region_for(row)
        server = self.cluster.server_for(region)
        self.charge.check_and_put()
        result = region.read_row(row, [(family, qualifier)])
        current = result.value(family, qualifier) if result is not None else None
        if current != expected:
            return False
        ts = self.cluster.next_timestamp()
        server.apply_put(region, put.row, put.cells, ts)
        return True

    # -- scans -------------------------------------------------------------------------
    def scan(self, op: Scan | None = None) -> Iterator[Result]:
        """Stream rows in key order across all overlapping regions.

        Charges: per region one open RPC + seek; one RPC per
        ``scan_batch_rows`` rows transferred; server-side per-row read
        work for every row *examined* (filtered rows still cost reads).
        """
        op = op or Scan()
        batch_size = self.cluster.config.cost.scan_batch_rows
        emitted = 0
        for region in self.desc.regions_overlapping(op.start_row, op.stop_row or None):
            server = self.cluster.server_for(region)
            self.charge.rpc()  # open scanner on this region
            server.charge.seek()
            batch_rows = 0
            batch_bytes = 0
            start = max(op.start_row, region.start_key)
            for row in region.iter_keys(start, _min_stop(op.stop_row, region.end_key)):
                result = region.read_row(
                    row, op.columns, op.max_versions, op.time_range
                )
                server.charge.rows_read(1)
                if result is None:
                    continue
                if op.filter is not None and not op.filter.accept(result):
                    continue
                batch_rows += 1
                batch_bytes += result.size_bytes
                if batch_rows >= batch_size:
                    self.charge.rpc()
                    self.charge.transfer(batch_bytes)
                    batch_rows = 0
                    batch_bytes = 0
                emitted += 1
                yield result
                if op.limit is not None and emitted >= op.limit:
                    if batch_rows:
                        self.charge.rpc()
                        self.charge.transfer(batch_bytes)
                    return
            if batch_rows:
                self.charge.rpc()
                self.charge.transfer(batch_bytes)

    def scan_all(self, op: Scan | None = None) -> list[Result]:
        return list(self.scan(op))

    # -- stats -------------------------------------------------------------------------
    def row_count(self) -> int:
        return self.cluster.table_row_count(self.name)

    def size_bytes(self) -> int:
        return self.cluster.table_size_bytes(self.name)


def _min_stop(a: bytes | None, b: bytes | None) -> bytes | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


class HBaseClient:
    """Connection façade: table handles + DDL passthrough."""

    def __init__(self, cluster: HBaseCluster) -> None:
        self.cluster = cluster
        self._tables: dict[str, HTable] = {}

    def table(self, name: str) -> HTable:
        if name not in self._tables:
            self._tables[name] = HTable(self.cluster, name)
        return self._tables[name]

    def create_table(
        self,
        name: str,
        families: tuple[bytes, ...] = (b"cf",),
        split_keys: list[bytes] | None = None,
        max_versions: int | None = None,
    ) -> HTable:
        self.cluster.create_table(name, families, split_keys, max_versions)
        return self.table(name)

    def drop_table(self, name: str) -> None:
        self.cluster.drop_table(name)
        self._tables.pop(name, None)

    def has_table(self, name: str) -> bool:
        return self.cluster.has_table(name)
