"""Per-server admission control with p99-targeted adaptive shedding.

Under the deterministic scheduler, every operation queues on its region
server through ``ConcurrencyContext.serial_enter``, so a server's
*virtual backlog* — how far its busy window extends past the arriving
client's clock — is an exact measure of queue depth in milliseconds of
work. The admission controller bounds that backlog:

* **Bounded request queue.** A request arriving when the backlog
  exceeds its bound is shed immediately with a typed, retryable
  :class:`~repro.errors.ServerOverloadedError` — *before* the server's
  busy window is touched, so a shed request consumes no server
  capacity (the client burned only its own RPC).
* **Per-table QoS weights.** A table with weight ``w`` tolerates
  ``w * admission_queue_ms`` of backlog. Under pressure, low-weight
  (batch) traffic is shed first; high-weight (interactive) traffic
  sheds last.
* **p99-targeted adaptation.** The controller keeps a sliding window
  of completed-request latencies (queue wait + service, measured in
  virtual time between admit and completion). Every
  ``p99_refresh_every`` completions it re-estimates the window's p99;
  when that exceeds ``p99_budget_ms`` the effective queue bound shrinks
  by the overshoot ratio (``pressure``), shedding harder until the tail
  returns to budget. All inputs are virtual-time quantities, so shed
  decisions are bit-identical across reruns at the same seed.
"""

from __future__ import annotations

import math

from collections import deque

from repro.config import ServingConfig
from repro.errors import ServerOverloadedError


def _percentile(samples, q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); mirrors
    ``repro.sim.scheduler.percentile`` without the import cycle."""
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class AdmissionController:
    """Deterministic bounded-queue admission with adaptive shedding."""

    __slots__ = (
        "server_name",
        "queue_bound_ms",
        "p99_budget_ms",
        "retry_after_ms",
        "pressure",
        "admitted",
        "shed",
        "shed_by_table",
        "shed_log",
        "_weights",
        "_window",
        "_refresh_every",
        "_since_refresh",
    )

    def __init__(self, server_name: str, config: ServingConfig) -> None:
        if config.admission_queue_ms is None:
            raise ValueError("admission control is disabled in this config")
        self.server_name = server_name
        self.queue_bound_ms = config.admission_queue_ms
        self.p99_budget_ms = config.p99_budget_ms
        self.retry_after_ms = config.shed_retry_after_ms
        self.pressure = 1.0
        self.admitted = 0
        self.shed = 0
        self.shed_by_table: dict[str, int] = {}
        self.shed_log: list[tuple[str, float, float, float]] | None = None
        self._weights = dict(config.qos_weights)
        self._window: deque[float] = deque(maxlen=config.p99_window)
        self._refresh_every = config.p99_refresh_every
        self._since_refresh = 0

    def weight_for(self, table: str) -> float:
        return self._weights.get(table, 1.0)

    def bound_ms(self, table: str) -> float:
        """Effective queue bound for one table at current pressure."""
        return self.queue_bound_ms * self.weight_for(table) / self.pressure

    def admit(self, table: str, now_ms: float, backlog_ms: float) -> float:
        """Admit (returning the arrival timestamp as the completion
        token) or shed with :class:`ServerOverloadedError`."""
        bound = self.bound_ms(table)
        if backlog_ms > bound:
            self.shed += 1
            self.shed_by_table[table] = self.shed_by_table.get(table, 0) + 1
            if self.shed_log is not None:
                self.shed_log.append((table, now_ms, backlog_ms, bound))
            raise ServerOverloadedError(
                f"server {self.server_name} shed {table!r} request: "
                f"backlog {backlog_ms:.3f} ms > bound {bound:.3f} ms "
                f"(pressure {self.pressure:.3f})",
                retry_after_ms=self.retry_after_ms,
            )
        self.admitted += 1
        return now_ms

    def complete(self, token_ms: float, now_ms: float) -> None:
        """Record one admitted request's virtual latency; periodically
        re-estimate tail pressure when a p99 budget is configured."""
        self._window.append(now_ms - token_ms)
        if self.p99_budget_ms is None:
            return
        self._since_refresh += 1
        if self._since_refresh >= self._refresh_every:
            self._since_refresh = 0
            p99 = _percentile(self._window, 0.99)
            self.pressure = max(1.0, p99 / self.p99_budget_ms)

    def stats(self) -> dict[str, int | float]:
        offered = self.admitted + self.shed
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_rate": (self.shed / offered) if offered else 0.0,
            "pressure": self.pressure,
            "shed_by_table": dict(sorted(self.shed_by_table.items())),
        }
