"""Row-key encoding: order-preserving delimited concatenation.

The baseline schema transformation (paper Sec. II-D) builds a row key as
"a delimited concatenation of the value of attributes" in the key. We
encode each component with the order-preserving codecs from
:mod:`repro.relational.datatypes` and join with a ``0x00`` delimiter;
``0x00`` bytes inside a component are escaped as ``0x00 0xFF`` so that
the concatenation remains prefix-safe and order-preserving for the
fixed-width numeric encodings used in keys.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.relational.datatypes import DataType, decode_value, encode_value

DELIM = b"\x00"
ESCAPE = b"\x00\xff"


def _escape(component: bytes) -> bytes:
    return component.replace(DELIM, ESCAPE)


def _unescape(component: bytes) -> bytes:
    return component.replace(ESCAPE, DELIM)


def encode_key(dtypes: Sequence[DataType], values: Iterable[Any]) -> bytes:
    """Encode a composite key from typed components."""
    values = list(values)
    if len(values) != len(dtypes):
        raise ValueError(f"key arity mismatch: {len(values)} values, {len(dtypes)} types")
    parts = [_escape(encode_value(dt, v)) for dt, v in zip(dtypes, values)]
    return DELIM.join(parts)


def split_key(key: bytes) -> list[bytes]:
    """Split a composite key into escaped components."""
    out: list[bytes] = []
    cur = bytearray()
    i = 0
    n = len(key)
    while i < n:
        b = key[i]
        if b == 0:
            if i + 1 < n and key[i + 1] == 0xFF:  # escaped 0x00
                cur.append(0)
                i += 2
                continue
            out.append(bytes(cur))
            cur.clear()
            i += 1
            continue
        cur.append(b)
        i += 1
    out.append(bytes(cur))
    return out


def decode_key(dtypes: Sequence[DataType], key: bytes) -> tuple[Any, ...]:
    """Inverse of :func:`encode_key`."""
    parts = split_key(key)
    if len(parts) != len(dtypes):
        raise ValueError(
            f"key arity mismatch: {len(parts)} components, {len(dtypes)} types"
        )
    return tuple(decode_value(dt, p) for dt, p in zip(dtypes, parts))


def next_key(key: bytes) -> bytes:
    """The smallest key strictly greater than every key with prefix ``key``.

    Used to turn a key prefix into an exclusive scan stop row.
    """
    return key + b"\xff"


def prefix_stop(prefix: bytes) -> bytes:
    """Exclusive stop row for scanning all keys starting with ``prefix``."""
    return prefix + b"\xff\xff\xff\xff\xff\xff\xff\xff"
