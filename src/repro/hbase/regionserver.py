"""Region servers: host regions, apply mutations through the WAL."""

from __future__ import annotations

from repro.config import ServingConfig
from repro.errors import HBaseError, RegionUnavailableError
from repro.hbase.admission import AdmissionController
from repro.hbase.cache import RowCache, missed
from repro.hbase.cell import Result
from repro.hbase.region import Region
from repro.hbase.wal import WalEntry, WriteAheadLog
from repro.sim.clock import Simulation
from repro.sim.latency import LatencyCharger


class RegionServer:
    """One simulated HBase RegionServer process.

    When a :class:`~repro.config.ServingConfig` enables them, the server
    carries a byte-bounded LRU row cache (point reads skip the store
    lookup on a hit) and an admission controller (arriving requests are
    shed before they queue once the virtual backlog exceeds the —
    possibly pressure-shrunk — bound). Both default off, leaving every
    charge on every pre-existing path bit-identical."""

    def __init__(
        self,
        name: str,
        sim: Simulation,
        serving: ServingConfig | None = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.charge = LatencyCharger(sim, f"rs.{name}")
        self.row_cache: RowCache | None = None
        self.admission: AdmissionController | None = None
        self._cache_hit_ms = 0.0
        self._cache_hit_what = f"rs.{name}.cache_hit"
        if serving is not None and serving.cache_enabled:
            self.row_cache = RowCache(
                serving.row_cache_bytes, serving.cache_entry_overhead_bytes
            )
            self._cache_hit_ms = serving.cache_hit_ms
        if serving is not None and serving.admission_enabled:
            self.admission = AdmissionController(name, serving)
        self.regions: dict[str, Region] = {}
        self.follower_regions: dict[str, Region] = {}
        """Follower replicas hosted here (``repro.hbase.replication``).
        Kept apart from ``regions`` on purpose: master failover must
        never treat a follower as a primary to re-open elsewhere, and
        the table descriptor never routes to one directly — but a crash
        still takes them offline with the process."""
        self.wal = WriteAheadLog()
        self.alive = True
        self.recovered = False
        """True once master failover has moved this (dead) server's
        regions elsewhere; cleared when the server process restarts."""
        self.draining = False
        """Decommission flag (``HBaseCluster.drain_server``): placement
        (assignment, balancing, follower top-up) skips draining servers.
        Deliberately survives a restart — a drained server that crashes
        and rejoins stays out of rotation until undrained."""
        self.on_region_grown = None
        """Master hook (set by the cluster): called with a region whose
        approximate size crossed its split threshold after a write."""

    def _check_alive(self) -> None:
        if not self.alive:
            # the client-visible failure of talking to a crashed
            # process: same relocation/retry path as an offline region
            raise RegionUnavailableError(
                f"region server {self.name} is down"
            )

    def host(self, region: Region) -> None:
        self.regions[region.name] = region

    def unhost(self, region_name: str) -> Region:
        if self.row_cache is not None:
            # the region is leaving this process (move / split retiring
            # the parent / recovery): its entries can never be read here
            # again, and must not alias a future re-host
            self.row_cache.invalidate_region(region_name)
        return self.regions.pop(region_name)

    # -- reads -------------------------------------------------------------------------
    def serve_get(
        self,
        region: Region,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None = None,
        max_versions: int = 1,
        time_range: tuple[int, int] | None = None,
    ) -> Result | None:
        """Point read through the (optional) row cache.

        Uncached — and for every multi-version or time-ranged read,
        which bypasses the cache because a compaction could change its
        answer — this charges exactly the pre-cache path: one store
        seek, plus one row materialization when the row exists. A hit
        charges ``cache_hit_ms`` instead and touches the store not at
        all."""
        cache = self.row_cache
        if cache is None or max_versions != 1 or time_range is not None:
            self.charge.seek()
            result = region.read_row(row, columns, max_versions, time_range)
            if result is not None:
                self.charge.rows_read(1)
            return result
        region._check_online()  # a cached row must not outlive its region
        variant = RowCache.variant(columns)
        cached = cache.lookup(region.name, row, variant)
        if not missed(cached):
            self.sim.charge(self._cache_hit_ms, self._cache_hit_what)
            return cached
        self.charge.seek()
        result = region.read_row(row, columns, max_versions, time_range)
        if result is not None:
            self.charge.rows_read(1)
        cache.insert(region.name, row, variant, result)
        return result

    # -- mutations (all WAL-first) ---------------------------------------------------
    def apply_put(
        self,
        region: Region,
        row: bytes,
        cells: list[tuple[bytes, bytes, bytes, int | None]],
        ts: int,
        charge_wal: bool = True,
    ) -> None:
        self._check_alive()
        if self.row_cache is not None:
            self.row_cache.invalidate_row(region.name, row)
        self.wal.append(WalEntry(region.name, "put", row, list(cells), ts))
        if charge_wal:
            self.charge.wal_append()
        region.put_row(row, cells, ts)
        self.charge.rows_written(1)
        if len(region.memstore) >= region.flush_threshold_rows:
            self.flush_region(region)
        self._maybe_split(region)

    def apply_puts(
        self,
        region: Region,
        puts,
        first_ts: int,
    ) -> None:
        """Batched ``apply_put`` with WAL sync charged by the caller
        (one group sync per region batch) and timestamps pre-reserved
        as a contiguous block starting at ``first_ts``. Emits the same
        WAL entries, per-row charges and flush checks as per-put
        application, with the per-put lookup overhead hoisted out of
        the loop."""
        self._check_alive()
        region._check_online()  # single-threaded: cannot flip mid-batch
        if self.row_cache is not None:
            cache_invalidate = self.row_cache.invalidate_row
            for op in puts:
                cache_invalidate(region.name, op.row)
        wal = self.wal
        wal_buffer_append = wal.buffer_for(region.name).append
        wal.total_appends += len(puts)  # accounted up front for the batch
        region_name = region.name
        memstore = region.memstore
        memstore_put = memstore.apply_put
        entries = memstore._entries  # flush-threshold check, C-level len
        threshold = region.flush_threshold_rows
        kv_overhead = region.kv_overhead_bytes
        size_delta = 0
        ts = first_ts - 1
        # two copies of the loop, selected once per batch: the jittered
        # variant must draw one RNG sample per row via row_written();
        # the jitter-free variant inlines the counter/clock bump using
        # the handles the charger itself vends (same numbers, no
        # per-row method call). Keep the bodies in sync.
        inline_charge = self.charge.row_written_inline()
        if inline_charge is None:
            row_written = self.charge.row_written
            for op in puts:
                ts += 1
                row = op.row
                cells = op.cells
                wal_buffer_append(
                    WalEntry(region_name, "put", row, list(cells), ts)
                )
                size_delta += memstore_put(row, cells, ts, len(row) + kv_overhead)
                row_written()
                if len(entries) >= threshold:
                    region._approx_size_bytes += size_delta
                    size_delta = 0
                    # the flush re-arms the same MemStore object with
                    # fresh containers and truncates this region's WAL
                    # buffer: re-fetch both hoisted references
                    self.flush_region(region)
                    entries = memstore._entries
                    wal_buffer_append = wal.buffer_for(region_name).append
        else:
            rows_written_counter, clock, write_row_ms = inline_charge
            for op in puts:
                ts += 1
                row = op.row
                cells = op.cells
                wal_buffer_append(
                    WalEntry(region_name, "put", row, list(cells), ts)
                )
                size_delta += memstore_put(row, cells, ts, len(row) + kv_overhead)
                rows_written_counter.value += 1
                clock._now_ms += write_row_ms
                if len(entries) >= threshold:
                    region._approx_size_bytes += size_delta
                    size_delta = 0
                    self.flush_region(region)
                    entries = memstore._entries
                    wal_buffer_append = wal.buffer_for(region_name).append
        region._approx_size_bytes += size_delta
        # split check once per batch, at a safe point: splitting inside
        # the loop would offline the region the remaining puts target
        self._maybe_split(region)

    def apply_delete(
        self,
        region: Region,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None,
        ts: int,
    ) -> None:
        self._check_alive()
        if self.row_cache is not None:
            self.row_cache.invalidate_row(region.name, row)
        self.wal.append(WalEntry(region.name, "delete", row, columns, ts))
        self.charge.wal_append()
        region.delete_row(row, columns, ts)
        self.charge.rows_written(1)

    def _maybe_split(self, region: Region) -> None:
        threshold = region.split_threshold_bytes
        if (
            threshold is not None
            and region._approx_size_bytes >= threshold
            and self.on_region_grown is not None
        ):
            self.on_region_grown(region)

    def flush_region(self, region: Region) -> None:
        self._check_alive()
        region.flush()
        self.wal.truncate(region.name)
        # rows this region inherited unflushed from split ancestors are
        # now persisted too: drop this key range from the ancestors' logs
        for ancestor in region.wal_ancestry:
            self.wal.truncate_range(ancestor, region.start_key, region.end_key)

    # -- failure simulation -----------------------------------------------------------
    def crash(self) -> None:
        """Lose all memstores; HFiles (on 'HDFS') and the WAL survive."""
        self.alive = False
        self.recovered = False
        if self.row_cache is not None:
            self.row_cache.clear()  # cache memory dies with the process
        for region in self.regions.values():
            region.online = False
        for region in self.follower_regions.values():
            region.online = False

    def restart(self) -> None:
        """The crashed process rejoins the cluster as an empty server:
        alive, hosting nothing, with a fresh WAL (its old log segments
        were consumed — or deliberately abandoned — by master failover).
        Follower replicas it held are gone too — they were pure derived
        state, and the replication manager rebuilds replacements from
        the primaries' ship logs. Only the master recovery path may
        move regions back onto it."""
        if self.alive:
            raise HBaseError(f"server {self.name} is already alive")
        self.regions = {}
        self.follower_regions = {}
        self.wal.clear()
        if self.row_cache is not None:
            self.row_cache.clear()
        self.alive = True
        self.recovered = False

    def replay_wal_into(self, region: Region) -> int:
        """Re-apply logged mutations (idempotent); returns entries replayed.

        Entries are routed by the region's *current key range*, not the
        region id they were recorded under: a write logged against a
        region that split (possibly repeatedly) since the write is
        replayed into whichever daughter now owns its row. Ancestor
        entries predate the region's own, so they replay first."""
        entries: list = []
        for ancestor in region.wal_ancestry:
            entries.extend(
                self.wal.entries_for_range(
                    ancestor, region.start_key, region.end_key
                )
            )
        entries.extend(self.wal.entries_for(region.name))
        for e in entries:
            if e.kind == "put":
                region.put_row(e.row, e.payload, e.timestamp)
            else:
                region.delete_row(e.row, e.payload, e.timestamp)
        return len(entries)
