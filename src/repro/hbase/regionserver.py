"""Region servers: host regions, apply mutations through the WAL."""

from __future__ import annotations

from repro.errors import HBaseError
from repro.hbase.region import Region
from repro.hbase.wal import WalEntry, WriteAheadLog
from repro.sim.clock import Simulation
from repro.sim.latency import LatencyCharger


class RegionServer:
    """One simulated HBase RegionServer process."""

    def __init__(self, name: str, sim: Simulation) -> None:
        self.name = name
        self.sim = sim
        self.charge = LatencyCharger(sim, f"rs.{name}")
        self.regions: dict[str, Region] = {}
        self.wal = WriteAheadLog()
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise HBaseError(f"region server {self.name} is down")

    def host(self, region: Region) -> None:
        self.regions[region.name] = region

    def unhost(self, region_name: str) -> Region:
        return self.regions.pop(region_name)

    # -- mutations (all WAL-first) ---------------------------------------------------
    def apply_put(
        self,
        region: Region,
        row: bytes,
        cells: list[tuple[bytes, bytes, bytes, int | None]],
        ts: int,
        charge_wal: bool = True,
    ) -> None:
        self._check_alive()
        self.wal.append(WalEntry(region.name, "put", row, list(cells), ts))
        if charge_wal:
            self.charge.wal_append()
        region.put_row(row, cells, ts)
        self.charge.rows_written(1)
        if len(region.memstore) >= region.flush_threshold_rows:
            self.flush_region(region)

    def apply_delete(
        self,
        region: Region,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None,
        ts: int,
    ) -> None:
        self._check_alive()
        self.wal.append(WalEntry(region.name, "delete", row, columns, ts))
        self.charge.wal_append()
        region.delete_row(row, columns, ts)
        self.charge.rows_written(1)

    def flush_region(self, region: Region) -> None:
        self._check_alive()
        region.flush()
        self.wal.truncate(region.name)

    # -- failure simulation -----------------------------------------------------------
    def crash(self) -> None:
        """Lose all memstores; HFiles (on 'HDFS') and the WAL survive."""
        self.alive = False
        for region in self.regions.values():
            region.online = False

    def replay_wal_into(self, region: Region) -> int:
        """Re-apply logged mutations (idempotent); returns entries replayed."""
        entries = self.wal.entries_for(region.name)
        for e in entries:
            if e.kind == "put":
                region.put_row(e.row, e.payload, e.timestamp)
            else:
                region.delete_row(e.row, e.payload, e.timestamp)
        return len(entries)
