"""Region replication: WAL shipping, follower reads, promotion-on-crash.

Each replicated region forms a :class:`ReplicationGroup`: the *primary*
(the region the table descriptor routes to) plus ``replica_count - 1``
:class:`FollowerReplica` copies hosted on other servers. The group owns
a **ship log** — the region's complete edit history, fed by a tap on
the primary's :class:`~repro.hbase.wal.WriteAheadLog` buffer — and each
follower is exactly a prefix of that log applied to an otherwise empty
region. That single invariant drives everything:

* **shipping** — the :class:`ReplicationShipper` scheduler daemon (same
  mechanism as the chaos engine's ``FaultInjector``) drains each
  follower's pending suffix in batches, advancing its ``applied``
  watermark; with ``ack_mode="all"`` the write path ships the suffix
  synchronously before the edit is acknowledged;
* **follower reads** — a read pinned to a follower's watermark sees the
  log prefix ``log[:applied]``: a pure subset of acknowledged writes,
  so a follower can never serve a never-acked or rolled-back value, and
  the client-side staleness bound is just ``len(log) - applied``;
* **promotion** — when the primary's server crashes, master failover
  promotes the most-caught-up live follower (deterministic tie-break
  through a SimRNG stream) and replays only ``log[applied:]`` — the
  un-shipped suffix — instead of the dead server's whole pending WAL;
* **rebuild** — a follower lost with its server is pure derived state:
  a replacement is a fresh region plus a full log replay.

With ``replica_count=1`` (the default) no manager is created at all:
no taps, no groups, no daemon — every pre-existing code path and its
simulated latency stays bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReplicationError
from repro.hbase.region import Region
from repro.hbase.wal import WalEntry
from repro.sim.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hbase.cluster import HBaseCluster
    from repro.hbase.regionserver import RegionServer


def _apply_entry(region: Region, entry: WalEntry) -> None:
    """Apply one shipped/replayed log entry (idempotent: entries carry
    their original timestamps, so re-application overwrites the same
    cell version)."""
    if entry.kind == "put":
        region.put_row(entry.row, entry.payload, entry.timestamp)
    else:
        region.delete_row(entry.row, entry.payload, entry.timestamp)


class FollowerReplica:
    """One follower copy: a region object that is exactly the group's
    log prefix ``log[:applied]``, hosted in a server's
    ``follower_regions`` (never in the table descriptor)."""

    __slots__ = ("region", "server", "applied")

    def __init__(
        self, region: Region, server: "RegionServer", applied: int
    ) -> None:
        self.region = region
        self.server = server
        self.applied = applied

    def is_live(self) -> bool:
        return self.server.alive and self.region.online

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FollowerReplica({self.region.name} on {self.server.name}, "
            f"applied={self.applied})"
        )


class ReplicationGroup:
    """Primary + followers + complete edit history for one key range."""

    def __init__(self, primary: Region) -> None:
        self.primary = primary
        self.log: list[WalEntry] = []
        self.followers: list[FollowerReplica] = []

    def lag_of(self, follower: FollowerReplica) -> int:
        return len(self.log) - follower.applied

    def live_followers(self) -> list[FollowerReplica]:
        return [f for f in self.followers if f.is_live()]


class ReplicationManager:
    """Owns every replication group of one cluster.

    Created by :class:`~repro.hbase.cluster.HBaseCluster` only when
    ``config.replication.replica_count >= 2``; every hook in the
    cluster/client layers is guarded on ``cluster.replication is not
    None``, so the unreplicated simulation never pays for it.
    """

    def __init__(
        self,
        cluster: "HBaseCluster",
        default_replica_count: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = cluster.config.replication
        if default_replica_count is None:
            default_replica_count = self.config.replica_count
            if default_replica_count < 2:  # pragma: no cover - guarded by cluster
                raise ReplicationError(
                    f"replica_count={default_replica_count}: a manager "
                    "needs at least a primary and one follower"
                )
        elif default_replica_count < 1:
            raise ReplicationError(
                f"default_replica_count must be >= 1, got "
                f"{default_replica_count}"
            )
        self.default_replica_count = default_replica_count
        """Replica target for tables without a per-table override. May
        be 1 when orchestration created this manager on an unreplicated
        cluster purely to raise individual tables' counts."""
        self.targets: dict[str, int] = {}
        """Per-table replica-count overrides (orchestration's online
        ``set_replica_count``); tables absent here use the default."""
        self.groups: dict[str, ReplicationGroup] = {}
        """Primary region name -> group (re-keyed on promotion/recovery)."""
        self._rng = derive_rng(cluster.config.seed, "replication")
        self.promotions = 0
        self.followers_rebuilt = 0
        self.entries_shipped = 0

    def target_for(self, table_name: str) -> int:
        """Total copies (primary included) this table should keep."""
        return self.targets.get(table_name, self.default_replica_count)

    def groups_for(self, table_name: str) -> list[ReplicationGroup]:
        """This table's groups, in insertion order (deterministic)."""
        return [
            g
            for g in self.groups.values()
            if g.primary.table_name == table_name
        ]

    # -- group creation ----------------------------------------------------------
    def replicate_table(self, table_name: str, count: int | None = None) -> int:
        """Create one group per region of ``table_name`` (targeting
        ``count`` total copies, default the manager default); returns
        the number of followers placed. Must run before any write
        lands: the ship log is the region's *complete* history, which
        is only true when it starts empty."""
        if count is not None:
            if count < 1:
                raise ReplicationError(
                    f"replica count must be >= 1, got {count}"
                )
            self.targets[table_name] = count
        desc = self.cluster.descriptor(table_name)
        placed = 0
        for region in desc.regions:
            placed += self._create_group(region)
        return placed

    def _create_group(self, region: Region) -> int:
        if region.name in self.groups:
            raise ReplicationError(f"region {region.name} already replicated")
        if len(region.memstore) > 0 or region.hfiles:
            raise ReplicationError(
                f"region {region.name} is not empty: the ship log must "
                "start at the region's first edit"
            )
        group = ReplicationGroup(region)
        self.groups[region.name] = group
        host = self.cluster.server_for(region)
        host.wal.install_tap(region.name, group.log.append)
        return self._top_up(group)

    def _follower_hosts(self, group: ReplicationGroup) -> list["RegionServer"]:
        """Eligible servers for a new follower of ``group``, least
        follower-loaded first (ties broken by cluster server order —
        fully deterministic)."""
        primary_host = self.cluster._region_host.get(group.primary.name)
        taken = {f.server.name for f in group.followers}
        out = []
        for server in self.cluster.servers:
            if not server.alive or server.draining or server.name in taken:
                continue
            if self.config.anti_affinity and server is primary_host:
                continue
            out.append(server)
        out.sort(key=lambda s: len(s.follower_regions))  # stable sort
        return out

    def _place_follower(self, group: ReplicationGroup, server) -> None:
        """Build one caught-up follower of ``group`` on ``server`` by
        replaying the full ship log into a fresh region."""
        primary = group.primary
        region = Region(
            table_name=primary.table_name,
            start_key=primary.start_key,
            end_key=primary.end_key,
            max_versions=primary.max_versions,
            kv_overhead_bytes=primary.kv_overhead_bytes,
            flush_threshold_rows=primary.flush_threshold_rows,
            # followers never split: the primary drives the layout
            split_threshold_bytes=None,
        )
        for entry in group.log:
            _apply_entry(region, entry)
        server.follower_regions[region.name] = region
        group.followers.append(
            FollowerReplica(region, server, len(group.log))
        )

    def _top_up(self, group: ReplicationGroup) -> int:
        """Place followers until the group holds its table's target
        minus one (or the cluster runs out of eligible servers — the
        group then runs short until :meth:`repair` finds capacity)."""
        added = 0
        want = self.target_for(group.primary.table_name) - 1
        while len(group.followers) < want:
            hosts = self._follower_hosts(group)
            if not hosts:
                break
            self._place_follower(group, hosts[0])
            added += 1
        return added

    def follower_placements(self, table_name: str) -> dict[bytes, list[str]]:
        """Current follower hosting per group, keyed by the primary's
        start key: the durable address that survives crash-time
        promotion renaming a group's primary."""
        return {
            group.primary.start_key: sorted(
                f.server.name for f in group.followers
            )
            for group in self.groups_for(table_name)
        }

    def reconcile_followers(
        self,
        table_name: str,
        placements: dict[bytes, list[str]],
        target: int,
    ) -> None:
        """Force this table's follower hosting back to an exact recorded
        layout — the orchestration-rollback inverse of an online
        replica-count change, which must restore the *same* placements
        rather than re-derive laggiest-first/least-loaded choices.
        Recorded hosts that are down or gone are skipped (the group runs
        short until :meth:`repair` finds capacity)."""
        self.targets[table_name] = target
        existing = {s.name for s in self.cluster.servers}
        for group in self.groups_for(table_name):
            want = list(placements.get(group.primary.start_key, ()))
            for follower in list(group.followers):
                if follower.server.name in want:
                    want.remove(follower.server.name)
                    continue
                follower.server.follower_regions.pop(
                    follower.region.name, None
                )
                follower.region.online = False
                group.followers.remove(follower)
            primary_host = self.cluster._region_host.get(group.primary.name)
            for name in want:
                if name not in existing:
                    continue
                server = self.cluster.server_named(name)
                if not server.alive or (
                    self.config.anti_affinity and server is primary_host
                ):
                    continue
                self._place_follower(group, server)

    # -- shipping ------------------------------------------------------------------
    def ship_pending(self, batch_entries: int | None = None) -> int:
        """One drain round: push up to ``batch_entries`` log entries to
        every live lagging follower; returns entries shipped. Group and
        follower iteration order is insertion order — deterministic."""
        if batch_entries is None:
            batch_entries = self.config.ship_batch_entries
        shipped = 0
        for group in self.groups.values():
            log = group.log
            for follower in group.followers:
                if not follower.is_live() or follower.applied >= len(log):
                    continue
                batch = log[follower.applied : follower.applied + batch_entries]
                for entry in batch:
                    _apply_entry(follower.region, entry)
                follower.applied += len(batch)
                shipped += len(batch)
        self.entries_shipped += shipped
        return shipped

    def after_write(self, region: Region) -> None:
        """Durable-ack hook, called by the client layer after the
        primary applied a write. In ``ack_mode="all"`` the un-shipped
        suffix goes to every live follower synchronously — one ship RPC
        plus per-entry apply cost charged to the *writing* client —
        before the write returns (and is acked). ``"primary"`` mode is
        a no-op here: the shipper daemon catches followers up."""
        if self.config.ack_mode != "all":
            return
        group = self.groups.get(region.name)
        if group is None:
            return
        sim = self.cluster.sim
        log = group.log
        for follower in group.followers:
            if not follower.is_live():
                continue
            pending = len(log) - follower.applied
            if pending <= 0:
                continue
            for entry in log[follower.applied :]:
                _apply_entry(follower.region, entry)
            follower.applied = len(log)
            self.entries_shipped += pending
            sim.charge(
                sim.cost.rpc_base_ms + self.config.ship_entry_ms * pending,
                "replication.sync_ship",
            )

    # -- follower reads ----------------------------------------------------------
    def follower_for_read(self, region: Region) -> FollowerReplica | None:
        """The most-caught-up live follower of ``region`` whose lag is
        within the configured staleness bound, or None (caller falls
        back to the primary). Ties keep the first-placed follower."""
        group = self.groups.get(region.name)
        if group is None:
            return None
        best: FollowerReplica | None = None
        for follower in group.followers:
            if not follower.is_live():
                continue
            if group.lag_of(follower) > self.config.staleness_bound_entries:
                continue
            if best is None or follower.applied > best.applied:
                best = follower
        return best

    def row_lag(self, region: Region, follower: FollowerReplica, row: bytes) -> int:
        """Edits to ``row`` still missing from ``follower`` — the exact
        pinning the staleness oracle checks: the follower's view of the
        row is its (total - row_lag)-th acknowledged value."""
        group = self.groups[region.name]
        return sum(1 for e in group.log[follower.applied :] if e.row == row)

    def missing_rows(
        self,
        region: Region,
        follower: FollowerReplica,
        start: bytes,
        stop: bytes | None,
    ) -> dict[bytes, int]:
        """Per-row count of un-applied edits inside ``[start, stop)`` at
        the moment a follower scan window opens (the scan-side staleness
        pinning)."""
        group = self.groups[region.name]
        missing: dict[bytes, int] = {}
        for e in group.log[follower.applied :]:
            if e.row >= start and (stop is None or e.row < stop):
                missing[e.row] = missing.get(e.row, 0) + 1
        return missing

    # -- promotion & repair --------------------------------------------------------
    def promote(self, old_primary: Region) -> FollowerReplica | None:
        """Master failover hook: promote the most-caught-up live
        follower of ``old_primary`` (ties broken via the manager's
        SimRNG stream), replaying only the un-shipped log suffix.
        Returns the promoted replica — already detached from follower
        hosting, not yet registered as a primary (the cluster does
        that) — or None when no live follower exists."""
        group = self.groups.get(old_primary.name)
        if group is None or group.primary is not old_primary:
            return None
        live = group.live_followers()
        if not live:
            return None
        del self.groups[old_primary.name]
        best_applied = max(f.applied for f in live)
        tied = [f for f in live if f.applied == best_applied]
        choice = (
            tied[int(self._rng.integers(len(tied)))] if len(tied) > 1 else tied[0]
        )
        for entry in group.log[choice.applied :]:
            _apply_entry(choice.region, entry)
        choice.applied = len(group.log)
        del choice.server.follower_regions[choice.region.name]
        group.followers.remove(choice)
        group.primary = choice.region
        self.groups[choice.region.name] = group
        choice.server.wal.install_tap(choice.region.name, group.log.append)
        self.promotions += 1
        return choice

    def promotion_replay_estimate(self, old_primary: Region) -> int | None:
        """Log entries a promotion of ``old_primary`` would replay (the
        best live follower's lag), or None when the region would take
        the full-WAL-replay recovery path instead."""
        group = self.groups.get(old_primary.name)
        if group is None or group.primary is not old_primary:
            return None
        live = group.live_followers()
        if not live:
            return None
        return len(group.log) - max(f.applied for f in live)

    def on_primary_recovered(
        self, old: Region, fresh: Region, host: "RegionServer"
    ) -> None:
        """Re-key a group whose primary took the full-replay recovery
        path (no live follower to promote): the fresh incarnation is
        the new primary. Its replayed edits were already tapped when
        first written, so the log needs nothing."""
        group = self.groups.pop(old.name, None)
        if group is None:
            return
        group.primary = fresh
        self.groups[fresh.name] = group
        host.wal.install_tap(fresh.name, group.log.append)

    def on_region_moved(
        self, region: Region, source: "RegionServer", target: "RegionServer"
    ) -> None:
        """Keep the ship-log tap on the WAL the primary now writes to."""
        group = self.groups.get(region.name)
        if group is None:
            return
        if self.config.anti_affinity and any(
            f.server is target for f in group.followers
        ):
            raise ReplicationError(
                f"moving primary {region.name} onto {target.name} would "
                "co-host it with its own follower"
            )
        source.wal.remove_tap(region.name)
        target.wal.install_tap(region.name, group.log.append)

    def allows_move(self, region: Region, target: "RegionServer") -> bool:
        """Balancer filter: may ``region`` (if it is a replicated
        primary) move to ``target`` without violating anti-affinity?"""
        if not self.config.anti_affinity:
            return True
        group = self.groups.get(region.name)
        if group is None:
            return True
        return all(f.server is not target for f in group.followers)

    def set_replica_count(self, table_name: str, count: int) -> int:
        """Online replica-count change for one table; returns the net
        follower delta (placed minus dropped).

        Raising the target rebuilds new followers from the group ship
        logs (fresh region + full-history replay). Lowering it drops
        the laggiest followers first (ties drop the latest-placed).
        ``count=1`` keeps the groups — taps installed, complete logs
        still growing — with zero followers, so a later raise needs no
        empty-region precondition; note such a table still refuses
        splits like any replicated table. Enabling replication on a
        table with *no* groups requires its regions to be empty (the
        log must be the complete history) and raises
        :class:`~repro.errors.ReplicationError` otherwise."""
        if count < 1:
            raise ReplicationError(f"replica count must be >= 1, got {count}")
        groups = self.groups_for(table_name)
        if not groups:
            if count == 1:
                self.targets[table_name] = count
                return 0
            return self.replicate_table(table_name, count)
        self.targets[table_name] = count
        want = count - 1
        delta = 0
        for group in groups:
            while len(group.followers) > want:
                victim = min(
                    enumerate(group.followers),
                    key=lambda kv: (kv[1].applied, -kv[0]),
                )[1]
                victim.server.follower_regions.pop(victim.region.name, None)
                victim.region.online = False
                group.followers.remove(victim)
                delta -= 1
            if len(group.followers) < want:
                added = self._top_up(group)
                self.followers_rebuilt += added
                delta += added
        return delta

    def dereplicate_table(self, table_name: str) -> int:
        """Remove this table's groups entirely: drop followers, remove
        the ship-log taps, forget the logs. The exact inverse of
        enabling replication on a previously unmanaged table (used by
        orchestration rollback); returns groups removed. Unlike
        ``set_replica_count(table, 1)`` this discards the complete
        history, so re-replicating later needs empty regions again."""
        removed = 0
        for group in self.groups_for(table_name):
            for follower in group.followers:
                follower.server.follower_regions.pop(
                    follower.region.name, None
                )
                follower.region.online = False
            host = self.cluster._region_host.get(group.primary.name)
            if host is not None:
                host.wal.remove_tap(group.primary.name)
            del self.groups[group.primary.name]
            removed += 1
        self.targets.pop(table_name, None)
        return removed

    def evacuate_followers(self, server: "RegionServer") -> int:
        """Drain hook: drop every follower hosted on ``server`` and
        rebuild replacements elsewhere (fresh region + full log replay);
        returns followers rebuilt. The caller marks the server draining
        first, so replacements never land back on it."""
        rebuilt = 0
        for group in self.groups.values():
            for follower in list(group.followers):
                if follower.server is not server:
                    continue
                server.follower_regions.pop(follower.region.name, None)
                follower.region.online = False
                group.followers.remove(follower)
                rebuilt += self._top_up(group)
        self.followers_rebuilt += rebuilt
        return rebuilt

    def repair(self) -> int:
        """Drop dead followers and rebuild replacements on live servers
        (fresh region + full log replay). Run after recovery/restart so
        every group heads back to full strength; returns followers
        rebuilt."""
        rebuilt = 0
        for group in self.groups.values():
            kept = []
            for follower in group.followers:
                if follower.is_live():
                    kept.append(follower)
                else:
                    follower.server.follower_regions.pop(
                        follower.region.name, None
                    )
            group.followers = kept
            rebuilt += self._top_up(group)
        self.followers_rebuilt += rebuilt
        return rebuilt


class ReplicationShipper:
    """Daemon scheduler participant that drains the ship queues.

    Installed like the chaos engine's ``FaultInjector``: a background
    virtual client whose clock interleaves with the workload by the
    min-virtual-timestamp rule. Each round ships one batch per lagging
    follower, charges the per-entry apply cost on its own timeline
    (asynchronous replication never blocks the writer) and sleeps for
    the configured ship interval.
    """

    def __init__(self, manager: ReplicationManager) -> None:
        self.manager = manager

    def install(self, scheduler):
        return scheduler.add_client(
            "replication-shipper", self.program, daemon=True
        )

    def program(self, vc):
        config = self.manager.config
        while True:
            shipped = self.manager.ship_pending(config.ship_batch_entries)
            if shipped:
                vc.clock.advance(shipped * config.ship_entry_ms)
            vc.clock.advance(config.ship_interval_ms)
            yield "ship"
