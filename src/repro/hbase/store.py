"""Region-internal storage: memstore and HFiles (LSM semantics).

Both the mutable memstore and immutable HFiles share one row-entry
representation; the region read path merges entries newest-to-oldest,
honouring row/column tombstones, exactly as an LSM tree does. Major
compaction folds everything into a single HFile, dropping tombstones
and versions beyond ``max_versions``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class RowEntry:
    """Versions and tombstones for one row within one store component."""

    cells: dict[tuple[bytes, bytes], list[tuple[int, bytes]]] = field(
        default_factory=dict
    )
    row_tombstone_ts: int | None = None
    col_tombstones: dict[tuple[bytes, bytes], int] = field(default_factory=dict)

    def put_cell(self, family: bytes, qualifier: bytes, ts: int, value: bytes) -> None:
        versions = self.cells.setdefault((family, qualifier), [])
        versions.append((ts, value))
        versions.sort(key=lambda tv: -tv[0])

    def delete_row(self, ts: int) -> None:
        if self.row_tombstone_ts is None or ts > self.row_tombstone_ts:
            self.row_tombstone_ts = ts

    def delete_column(self, family: bytes, qualifier: bytes, ts: int) -> None:
        key = (family, qualifier)
        if key not in self.col_tombstones or ts > self.col_tombstones[key]:
            self.col_tombstones[key] = ts

    def size_bytes(self, row: bytes, kv_overhead: int) -> int:
        total = 0
        for (family, qualifier), versions in self.cells.items():
            for _, value in versions:
                total += (
                    len(row) + len(family) + len(qualifier) + len(value) + kv_overhead
                )
        return total

    @property
    def is_empty(self) -> bool:
        return (
            not self.cells
            and self.row_tombstone_ts is None
            and not self.col_tombstones
        )


class MemStore:
    """Mutable sorted map row-key -> :class:`RowEntry`."""

    def __init__(self) -> None:
        self._entries: dict[bytes, RowEntry] = {}
        self._sorted_keys: list[bytes] = []

    def entry(self, row: bytes, create: bool = False) -> RowEntry | None:
        e = self._entries.get(row)
        if e is None and create:
            e = RowEntry()
            self._entries[row] = e
            bisect.insort(self._sorted_keys, row)
        return e

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, row: bytes) -> bool:
        return row in self._entries

    def keys_in_range(self, start: bytes, stop: bytes | None) -> Iterator[bytes]:
        i = bisect.bisect_left(self._sorted_keys, start)
        while i < len(self._sorted_keys):
            k = self._sorted_keys[i]
            if stop is not None and k >= stop:
                return
            yield k
            i += 1

    def clear(self) -> None:
        self._entries.clear()
        self._sorted_keys.clear()

    def items(self) -> Iterator[tuple[bytes, RowEntry]]:
        for k in self._sorted_keys:
            yield k, self._entries[k]


class HFile:
    """Immutable sorted store file produced by a memstore flush."""

    _seq = 0

    def __init__(self, entries: dict[bytes, RowEntry]) -> None:
        HFile._seq += 1
        self.file_id = HFile._seq
        self._entries = entries
        self._sorted_keys = sorted(entries)

    def entry(self, row: bytes) -> RowEntry | None:
        return self._entries.get(row)

    def __len__(self) -> int:
        return len(self._entries)

    def keys_in_range(self, start: bytes, stop: bytes | None) -> Iterator[bytes]:
        i = bisect.bisect_left(self._sorted_keys, start)
        while i < len(self._sorted_keys):
            k = self._sorted_keys[i]
            if stop is not None and k >= stop:
                return
            yield k
            i += 1

    def items(self) -> Iterator[tuple[bytes, RowEntry]]:
        for k in self._sorted_keys:
            yield k, self._entries[k]


def merge_row(
    sources: list[RowEntry],
    max_versions: int,
    time_range: tuple[int, int] | None = None,
) -> dict[tuple[bytes, bytes], list[tuple[int, bytes]]] | None:
    """Merge one row's entries (newest component first) into visible cells.

    Returns None when the row has no visible cells (fully deleted/absent).
    """
    row_ts = max(
        (s.row_tombstone_ts for s in sources if s.row_tombstone_ts is not None),
        default=None,
    )
    col_ts: dict[tuple[bytes, bytes], int] = {}
    for s in sources:
        for key, ts in s.col_tombstones.items():
            if key not in col_ts or ts > col_ts[key]:
                col_ts[key] = ts

    merged: dict[tuple[bytes, bytes], list[tuple[int, bytes]]] = {}
    for s in sources:
        for key, versions in s.cells.items():
            merged.setdefault(key, []).extend(versions)

    visible: dict[tuple[bytes, bytes], list[tuple[int, bytes]]] = {}
    for key, versions in merged.items():
        kept = []
        for ts, value in sorted(versions, key=lambda tv: -tv[0]):
            if row_ts is not None and ts <= row_ts:
                continue
            if key in col_ts and ts <= col_ts[key]:
                continue
            if time_range is not None and not (time_range[0] <= ts < time_range[1]):
                continue
            kept.append((ts, value))
            if len(kept) >= max_versions:
                break
        if kept:
            visible[key] = kept
    return visible or None
