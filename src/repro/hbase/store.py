"""Region-internal storage: memstore, HFiles and the streaming scan engine.

Both the mutable memstore and immutable HFiles share one row-entry
representation; the region read path merges entries newest-to-oldest,
honouring row/column tombstones, exactly as an LSM tree does. Major
compaction folds everything into a single HFile, dropping tombstones
and versions beyond ``max_versions``.

Write-path invariants (amortized-O(1) puts):

* ``RowEntry.put_cell`` appends and marks the entry dirty; per-column
  version lists are sorted newest-first *lazily*, on first read through
  the ``cells`` property. A stable sort keyed on descending timestamp
  reproduces exactly the ordering the old sort-on-every-put maintained
  (equal timestamps keep insertion order).
* ``MemStore`` keeps only a dict while absorbing writes; its sorted key
  list is (re)built lazily when a scan, flush or range read needs it.
* A flush hands the memstore's entry dict and already-sorted key list
  to the new :class:`HFile` wholesale — no copy, no re-sort — and the
  memstore re-arms with fresh containers, so cursors snapshotted before
  the flush keep reading the frozen generation safely.

Read path: :class:`RegionScanner` k-way-merges one cursor per store
component (memstore first, then HFiles newest flush first) with
``heapq.merge``, grouping runs of equal row keys and merging versions
incrementally. A scan is therefore a single pass over each component
instead of one point-get per row. ``merge_row`` is the per-row merge
used by both point reads and the scanner; its ``columns`` parameter is
the column-pushdown contract — untouched column families cost nothing.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Iterator

from repro.errors import RegionUnavailableError
from repro.hbase.cell import Result

CellKey = tuple[bytes, bytes]
Versions = list[tuple[int, bytes]]


def _neg_ts(tv: tuple[int, bytes]) -> int:
    return -tv[0]


_SHARED_EMPTY_TOMBSTONES: dict[CellKey, int] = {}
"""Class-level default for entries that never saw a column delete —
one RowEntry is built per freshly written row, so construction cost
matters. ``delete_column`` copies-on-write before touching it."""


class RowEntry:
    """Versions and tombstones for one row within one store component."""

    # class-attribute defaults: a new entry allocates only its cell map;
    # the write path shadows these with instance attributes on demand
    _dirty = False
    row_tombstone_ts: int | None = None
    col_tombstones: dict[CellKey, int] = _SHARED_EMPTY_TOMBSTONES

    def __init__(self) -> None:
        self._cells: dict[CellKey, Versions] = {}

    @property
    def cells(self) -> dict[CellKey, Versions]:
        """Per-column version lists, newest first (sorted lazily)."""
        if self._dirty:
            for versions in self._cells.values():
                versions.sort(key=_neg_ts)
            self._dirty = False
        return self._cells

    @classmethod
    def from_sorted_cells(cls, cells: dict[CellKey, Versions]) -> "RowEntry":
        """Adopt already-newest-first version lists (compaction output)."""
        entry = cls.__new__(cls)
        entry._cells = cells
        return entry

    def put_cell(self, family: bytes, qualifier: bytes, ts: int, value: bytes) -> None:
        versions = self._cells.get((family, qualifier))
        if versions is None:
            self._cells[(family, qualifier)] = [(ts, value)]
        else:
            versions.append((ts, value))
            self._dirty = True

    def delete_row(self, ts: int) -> None:
        if self.row_tombstone_ts is None or ts > self.row_tombstone_ts:
            self.row_tombstone_ts = ts

    def delete_column(self, family: bytes, qualifier: bytes, ts: int) -> None:
        if self.col_tombstones is _SHARED_EMPTY_TOMBSTONES:
            self.col_tombstones = {}
        key = (family, qualifier)
        if key not in self.col_tombstones or ts > self.col_tombstones[key]:
            self.col_tombstones[key] = ts

    def size_bytes(self, row: bytes, kv_overhead: int) -> int:
        row_len = len(row) + kv_overhead
        total = 0
        for (family, qualifier), versions in self._cells.items():
            base = row_len + len(family) + len(qualifier)
            for _, value in versions:
                total += base + len(value)
        return total

    @property
    def is_empty(self) -> bool:
        return (
            not self._cells
            and self.row_tombstone_ts is None
            and not self.col_tombstones
        )


class MemStore:
    """Mutable map row-key -> :class:`RowEntry`; key order built lazily."""

    def __init__(self) -> None:
        self._entries: dict[bytes, RowEntry] = {}
        self._sorted_keys: list[bytes] = []
        self._sorted = True

    def entry(self, row: bytes, create: bool = False) -> RowEntry | None:
        e = self._entries.get(row)
        if e is None and create:
            e = RowEntry()
            self._entries[row] = e
            self._sorted = False
        return e

    def apply_put(
        self,
        row: bytes,
        cells: list[tuple[bytes, bytes, bytes, int | None]],
        default_ts: int,
        base_bytes: int,
    ) -> int:
        """Upsert + per-cell append fused into one call — the write
        hot path (one method call per Put). Returns the approximate
        byte delta; ``base_bytes`` is the row-key + KV-framing
        overhead charged per cell."""
        entries = self._entries
        entry = entries.get(row)
        if entry is None:
            entry = RowEntry.__new__(RowEntry)  # skip __init__ dispatch
            _cells = entry._cells = {}
            entries[row] = entry
            self._sorted = False
        else:
            _cells = entry._cells
        size = 0
        for family, qualifier, value, ts in cells:
            stamp = ts if ts is not None else default_ts
            key = (family, qualifier)
            versions = _cells.get(key)
            if versions is None:
                _cells[key] = [(stamp, value)]
            else:
                versions.append((stamp, value))
                entry._dirty = True
            size += base_bytes + len(family) + len(qualifier) + len(value)
        return size

    def _ensure_sorted(self) -> list[bytes]:
        if not self._sorted:
            self._sorted_keys = sorted(self._entries)
            self._sorted = True
        return self._sorted_keys

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, row: bytes) -> bool:
        return row in self._entries

    def keys_in_range(self, start: bytes, stop: bytes | None) -> Iterator[bytes]:
        for key, _ in self.items_in_range(start, stop):
            yield key

    def items_in_range(
        self, start: bytes, stop: bytes | None
    ) -> Iterator[tuple[bytes, RowEntry]]:
        return _range_cursor(self._ensure_sorted(), self._entries, start, stop)

    def split(self, split_key: bytes) -> tuple["MemStore", "MemStore"]:
        """Partition into two memstores at ``split_key`` (low half gets
        rows < split_key). The :class:`RowEntry` objects — and with them
        every cell payload — are handed over by reference; only the key
        containers are rebuilt."""
        keys = self._ensure_sorted()
        idx = bisect.bisect_left(keys, split_key)
        entries = self._entries
        low, high = MemStore(), MemStore()
        low._sorted_keys = keys[:idx]
        low._entries = {k: entries[k] for k in low._sorted_keys}
        high._sorted_keys = keys[idx:]
        high._entries = {k: entries[k] for k in high._sorted_keys}
        return low, high

    def take_frozen(self) -> tuple[list[bytes], dict[bytes, RowEntry]]:
        """Hand the current generation (sorted keys + entries) to a flush
        and re-arm empty. Snapshots taken before the flush stay valid
        because the old containers are never mutated again."""
        keys = self._ensure_sorted()
        entries = self._entries
        self._entries = {}
        self._sorted_keys = []
        self._sorted = True
        return keys, entries

    def clear(self) -> None:
        self._entries = {}
        self._sorted_keys = []
        self._sorted = True

    def items(self) -> Iterator[tuple[bytes, RowEntry]]:
        entries = self._entries
        for k in self._ensure_sorted():
            yield k, entries[k]


class HFile:
    """Immutable sorted store file produced by a memstore flush."""

    _seq = 0

    def __init__(
        self,
        entries: dict[bytes, RowEntry],
        sorted_keys: list[bytes] | None = None,
    ) -> None:
        HFile._seq += 1
        self.file_id = HFile._seq
        self._entries = entries
        self._sorted_keys = (
            sorted(entries) if sorted_keys is None else sorted_keys
        )

    def entry(self, row: bytes) -> RowEntry | None:
        return self._entries.get(row)

    def __len__(self) -> int:
        # a split view shares the full entry dict but only covers its
        # sorted-key slice, so the key list is the truthful row count
        return len(self._sorted_keys)

    def split_view(
        self, split_key: bytes
    ) -> tuple["HFile | None", "HFile | None"]:
        """Reference files for a region split: two HFiles sharing this
        file's entry dict wholesale (zero payload copies), each covering
        one side of ``split_key`` via a sliced key list. A side with no
        rows is returned as None. Point lookups through a view rely on
        the region routing layer only asking for rows inside the view's
        range — exactly the contract real HBase reference files have."""
        keys = self._sorted_keys
        idx = bisect.bisect_left(keys, split_key)
        bottom = HFile(self._entries, sorted_keys=keys[:idx]) if idx else None
        top = (
            HFile(self._entries, sorted_keys=keys[idx:])
            if idx < len(keys)
            else None
        )
        return bottom, top

    def keys_in_range(self, start: bytes, stop: bytes | None) -> Iterator[bytes]:
        for key, _ in self.items_in_range(start, stop):
            yield key

    def items_in_range(
        self, start: bytes, stop: bytes | None
    ) -> Iterator[tuple[bytes, RowEntry]]:
        return _range_cursor(self._sorted_keys, self._entries, start, stop)

    def items(self) -> Iterator[tuple[bytes, RowEntry]]:
        entries = self._entries
        for k in self._sorted_keys:
            yield k, entries[k]


def _range_cursor(
    keys: list[bytes],
    entries: dict[bytes, RowEntry],
    start: bytes,
    stop: bytes | None,
) -> Iterator[tuple[bytes, RowEntry]]:
    """C-level (zip+map) cursor over one component's ``[start, stop)``
    slice. The key slice snapshots the component's current generation,
    so concurrent writes/flushes never corrupt a running scan."""
    lo = bisect.bisect_left(keys, start)
    hi = len(keys) if stop is None else bisect.bisect_left(keys, stop, lo)
    window = keys[lo:hi]
    return zip(window, map(entries.__getitem__, window))


def merge_row(
    sources: list[RowEntry],
    max_versions: int,
    time_range: tuple[int, int] | None = None,
    columns: frozenset[CellKey] | set[CellKey] | None = None,
) -> dict[CellKey, Versions] | None:
    """Merge one row's entries (newest component first) into visible cells.

    ``columns`` restricts the merge to the given (family, qualifier)
    keys — the column-pushdown contract: unrequested columns are never
    touched, so they cost nothing. Returns None when the row has no
    visible cells (fully deleted/absent/projected away).
    """
    if len(sources) == 1:
        s = sources[0]
        if (
            s.row_tombstone_ts is None
            and not s.col_tombstones
            and time_range is None
        ):
            # fast path: no tombstones, no time filter — slice the
            # (lazily sorted) newest-first version lists directly.
            # RegionScanner inlines this logic per row; keep both in sync.
            cells = s.cells
            visible: dict[CellKey, Versions] = {}
            if columns is None:
                for key, versions in cells.items():
                    if versions:
                        visible[key] = versions[:max_versions]
            else:
                for key in columns:
                    versions = cells.get(key)
                    if versions:
                        visible[key] = versions[:max_versions]
            return visible or None

    row_ts = max(
        (s.row_tombstone_ts for s in sources if s.row_tombstone_ts is not None),
        default=None,
    )
    col_ts: dict[CellKey, int] = {}
    for s in sources:
        for key, ts in s.col_tombstones.items():
            if key not in col_ts or ts > col_ts[key]:
                col_ts[key] = ts

    merged: dict[CellKey, Versions] = {}
    for s in sources:
        for key, versions in s.cells.items():
            if columns is not None and key not in columns:
                continue
            existing = merged.get(key)
            if existing is None:
                merged[key] = list(versions)
            else:
                existing.extend(versions)

    visible = {}
    lo, hi = time_range if time_range is not None else (0, 0)
    for key, versions in merged.items():
        kept: Versions = []
        key_col_ts = col_ts.get(key)
        versions.sort(key=_neg_ts)
        for ts, value in versions:
            if row_ts is not None and ts <= row_ts:
                continue
            if key_col_ts is not None and ts <= key_col_ts:
                continue
            if time_range is not None and not (lo <= ts < hi):
                continue
            kept.append((ts, value))
            if len(kept) >= max_versions:
                break
        if kept:
            visible[key] = kept
    return visible or None


class _AlwaysOnline:
    """Stand-in owner for scanners created without a region (tests)."""

    online = True
    name = "<unowned>"


_ALWAYS_ONLINE = _AlwaysOnline()


def _tagged(
    stream: Iterator[tuple[bytes, RowEntry]], priority: int
) -> Iterator[tuple[bytes, int, RowEntry]]:
    """Tag a component cursor with its merge priority (newest = 0), so
    ``heapq.merge`` orders ties by component age and never compares
    :class:`RowEntry` objects."""
    for key, entry in stream:
        yield key, priority, entry


class RegionScanner:
    """Streaming merged cursor over one region's store components.

    Yields ``(row_key, Result | None)`` for every distinct row key
    examined in ``[start, stop)`` — ``None`` marks a row whose cells are
    all deleted or projected away (callers still account the row as
    examined, mirroring HBase's server-side read cost). When owned by a
    region, the component list is resolved at iteration start and each
    component's contents snapshot their current generation, so flushes
    before or during iteration are both safe; the region's liveness is
    re-checked per row, so a crash while a cursor is open raises
    instead of yielding phantom rows.
    """

    __slots__ = ("_components", "_start", "_stop", "_max_versions",
                 "_time_range", "_columns", "_owner")

    def __init__(
        self,
        components: list[MemStore | HFile],
        start: bytes,
        stop: bytes | None,
        columns: frozenset[CellKey] | set[CellKey] | None = None,
        max_versions: int = 1,
        time_range: tuple[int, int] | None = None,
        owner=None,
    ) -> None:
        self._components = components  # newest first
        self._start = start
        self._stop = stop
        self._columns = columns
        self._max_versions = max(max_versions, 1)
        self._time_range = time_range
        self._owner = owner  # region whose .online gates each row

    def __iter__(self) -> Iterator[tuple[bytes, Result | None]]:
        max_versions = self._max_versions
        time_range = self._time_range
        columns = self._columns
        if self._owner is not None:
            owner = self._owner
            # resolve components now, not at construction: a flush
            # between the two would otherwise hide the re-armed
            # memstore's rows behind a stale component list
            candidates: list = [owner.memstore]
            candidates.extend(reversed(owner.hfiles))
        else:
            owner = _ALWAYS_ONLINE
            candidates = self._components
        components = [c for c in candidates if len(c) > 0]
        if not components:
            return
        if len(components) == 1:
            # single-component fast path: no heap, no grouping, and the
            # merge + Result construction inlined for untombstoned rows
            # (same module, so the RowEntry/Result internals are fair
            # game). Keep the visibility logic in sync with merge_row's
            # single-source fast path — the property suite
            # (tests/test_scanner_property.py) cross-checks both.
            result_new = Result.__new__
            from_sorted = Result.from_sorted
            plain = time_range is None
            for key, entry in components[0].items_in_range(self._start, self._stop):
                if not owner.online:
                    raise RegionUnavailableError(
                        f"region {owner.name} went offline mid-scan"
                    )
                if plain and entry.row_tombstone_ts is None and not entry.col_tombstones:
                    if entry._dirty:
                        for versions in entry._cells.values():
                            versions.sort(key=_neg_ts)
                        entry._dirty = False
                    cells = entry._cells
                    visible = {}
                    if columns is None:
                        for ckey, versions in cells.items():
                            if versions:
                                visible[ckey] = versions[:max_versions]
                    else:
                        for ckey in columns:
                            versions = cells.get(ckey)
                            if versions:
                                visible[ckey] = versions[:max_versions]
                    if visible:
                        result = result_new(Result)
                        result.row = key
                        result._cells = visible
                        yield key, result
                    else:
                        yield key, None
                else:
                    visible = merge_row([entry], max_versions, time_range, columns)
                    yield key, (
                        None if visible is None else from_sorted(key, visible)
                    )
            return

        streams = [
            _tagged(component.items_in_range(self._start, self._stop), priority)
            for priority, component in enumerate(components)
        ]
        merged = heapq.merge(*streams)  # orders by (key, priority)
        try:
            cur_key, _, entry = next(merged)
        except StopIteration:
            return
        sources = [entry]
        for key, _, entry in merged:
            if key != cur_key:
                if not owner.online:
                    raise RegionUnavailableError(
                        f"region {owner.name} went offline mid-scan"
                    )
                visible = merge_row(sources, max_versions, time_range, columns)
                yield cur_key, (
                    None if visible is None else Result.from_sorted(cur_key, visible)
                )
                cur_key = key
                sources = [entry]
            else:
                sources.append(entry)
        if not owner.online:
            raise RegionUnavailableError(
                f"region {owner.name} went offline mid-scan"
            )
        visible = merge_row(sources, max_versions, time_range, columns)
        yield cur_key, (
            None if visible is None else Result.from_sorted(cur_key, visible)
        )
