"""A region: one key range of a table, with memstore + HFiles + size stats."""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.errors import RegionUnavailableError
from repro.hbase.cell import Result
from repro.hbase.store import HFile, MemStore, RowEntry, merge_row


class Region:
    """Hosts rows with ``start_key <= row < end_key`` (empty bounds = open)."""

    def __init__(
        self,
        table_name: str,
        start_key: bytes,
        end_key: bytes | None,
        max_versions: int = 1,
        kv_overhead_bytes: int = 24,
        flush_threshold_rows: int = 50_000,
    ) -> None:
        self.table_name = table_name
        self.start_key = start_key
        self.end_key = end_key
        self.max_versions = max_versions
        self.kv_overhead_bytes = kv_overhead_bytes
        self.flush_threshold_rows = flush_threshold_rows
        self.memstore = MemStore()
        self.hfiles: list[HFile] = []
        self.online = True
        self._approx_size_bytes = 0

    # -- bookkeeping -----------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.table_name},{self.start_key.hex() or '-'}"

    def _check_online(self) -> None:
        if not self.online:
            raise RegionUnavailableError(f"region {self.name} is offline")

    def contains(self, row: bytes) -> bool:
        if row < self.start_key:
            return False
        return self.end_key is None or row < self.end_key

    @property
    def approx_size_bytes(self) -> int:
        return self._approx_size_bytes

    # -- writes ---------------------------------------------------------------
    def put_row(
        self,
        row: bytes,
        cells: list[tuple[bytes, bytes, bytes, int | None]],
        default_ts: int,
    ) -> None:
        """Apply one Put's cells; caller provides the server timestamp."""
        self._check_online()
        entry = self.memstore.entry(row, create=True)
        assert entry is not None
        for family, qualifier, value, ts in cells:
            stamp = ts if ts is not None else default_ts
            entry.put_cell(family, qualifier, stamp, value)
            self._approx_size_bytes += (
                len(row)
                + len(family)
                + len(qualifier)
                + len(value)
                + self.kv_overhead_bytes
            )

    def delete_row(
        self,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None,
        ts: int,
    ) -> None:
        self._check_online()
        entry = self.memstore.entry(row, create=True)
        assert entry is not None
        if columns is None:
            entry.delete_row(ts)
        else:
            for family, qualifier in columns:
                entry.delete_column(family, qualifier, ts)

    # -- reads -----------------------------------------------------------------
    def _sources_for(self, row: bytes) -> list[RowEntry]:
        sources: list[RowEntry] = []
        mem = self.memstore.entry(row)
        if mem is not None:
            sources.append(mem)
        for hfile in reversed(self.hfiles):  # newest flush first
            e = hfile.entry(row)
            if e is not None:
                sources.append(e)
        return sources

    def read_row(
        self,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None = None,
        max_versions: int = 1,
        time_range: tuple[int, int] | None = None,
    ) -> Result | None:
        """Visible cells of one row, or None if absent/deleted."""
        self._check_online()
        sources = self._sources_for(row)
        if not sources:
            return None
        visible = merge_row(
            sources, max(max_versions, 1), time_range
        )
        if visible is None:
            return None
        result = Result(row)
        wanted = set(columns) if columns else None
        for (family, qualifier), versions in visible.items():
            if wanted is not None and (family, qualifier) not in wanted:
                continue
            for ts, value in versions:
                result.add(family, qualifier, ts, value)
        return None if result.is_empty else result

    def iter_keys(self, start: bytes, stop: bytes | None) -> Iterator[bytes]:
        """Merged, de-duplicated, sorted row keys across memstore + HFiles."""
        self._check_online()
        streams = [self.memstore.keys_in_range(start, stop)]
        streams.extend(h.keys_in_range(start, stop) for h in self.hfiles)
        last: bytes | None = None
        for key in heapq.merge(*streams):
            if key != last:
                last = key
                yield key

    # -- flush & compaction ------------------------------------------------------
    def flush(self) -> HFile | None:
        """Freeze the memstore into a new HFile."""
        self._check_online()
        if len(self.memstore) == 0:
            return None
        frozen = {row: entry for row, entry in self.memstore.items()}
        hfile = HFile(frozen)
        self.hfiles.append(hfile)
        self.memstore.clear()
        return hfile

    def major_compact(self) -> None:
        """Merge all store components into one HFile; drop tombstones and
        versions beyond ``max_versions``; recompute the exact size."""
        self._check_online()
        merged_entries: dict[bytes, RowEntry] = {}
        size = 0
        for row in list(self.iter_keys(self.start_key, self.end_key)):
            visible = merge_row(self._sources_for(row), self.max_versions)
            if visible is None:
                continue
            entry = RowEntry()
            for (family, qualifier), versions in visible.items():
                for ts, value in versions:
                    entry.put_cell(family, qualifier, ts, value)
            merged_entries[row] = entry
            size += entry.size_bytes(row, self.kv_overhead_bytes)
        self.memstore.clear()
        self.hfiles = [HFile(merged_entries)] if merged_entries else []
        self._approx_size_bytes = size

    def row_count(self) -> int:
        """Number of visible rows (post-merge); O(n)."""
        count = 0
        for row in self.iter_keys(self.start_key, self.end_key):
            if merge_row(self._sources_for(row), 1) is not None:
                count += 1
        return count
