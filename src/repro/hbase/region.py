"""A region: one key range of a table, with memstore + HFiles + size stats."""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.errors import RegionSplitError, RegionUnavailableError
from repro.hbase.cell import Result
from repro.hbase.store import (
    CellKey,
    HFile,
    MemStore,
    RegionScanner,
    RowEntry,
    merge_row,
)


class Region:
    """Hosts rows with ``start_key <= row < end_key`` (empty bounds = open)."""

    _seq = 0  # process-wide region id (names stay unique across splits)

    def __init__(
        self,
        table_name: str,
        start_key: bytes,
        end_key: bytes | None,
        max_versions: int = 1,
        kv_overhead_bytes: int = 24,
        flush_threshold_rows: int = 50_000,
        split_threshold_bytes: int | None = None,
        wal_ancestry: tuple[str, ...] = (),
    ) -> None:
        Region._seq += 1
        self.region_id = Region._seq
        self.table_name = table_name
        self.start_key = start_key
        self.end_key = end_key
        self.max_versions = max_versions
        self.kv_overhead_bytes = kv_overhead_bytes
        self.flush_threshold_rows = flush_threshold_rows
        self.split_threshold_bytes = split_threshold_bytes
        self.wal_ancestry = wal_ancestry
        """Names of the regions this one inherited unflushed data from
        (split parents, pre-recovery incarnations): WAL entries recorded
        under those names are routed here by key range on flush
        truncation and on crash replay."""
        self.memstore = MemStore()
        self.hfiles: list[HFile] = []
        self.online = True
        self.split_daughters: "tuple[Region, Region] | None" = None
        self.name = f"{table_name},{start_key.hex() or '-'},{self.region_id}"
        self._approx_size_bytes = 0

    # -- bookkeeping -----------------------------------------------------------
    def _check_online(self) -> None:
        if not self.online:
            raise RegionUnavailableError(f"region {self.name} is offline")

    def contains(self, row: bytes) -> bool:
        if row < self.start_key:
            return False
        return self.end_key is None or row < self.end_key

    @property
    def approx_size_bytes(self) -> int:
        return self._approx_size_bytes

    # -- writes ---------------------------------------------------------------
    def put_row(
        self,
        row: bytes,
        cells: list[tuple[bytes, bytes, bytes, int | None]],
        default_ts: int,
    ) -> None:
        """Apply one Put's cells; caller provides the server timestamp."""
        self._check_online()
        self._approx_size_bytes += self.memstore.apply_put(
            row, cells, default_ts, len(row) + self.kv_overhead_bytes
        )

    def delete_row(
        self,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None,
        ts: int,
    ) -> None:
        self._check_online()
        entry = self.memstore.entry(row, create=True)
        assert entry is not None
        if columns is None:
            entry.delete_row(ts)
        else:
            for family, qualifier in columns:
                entry.delete_column(family, qualifier, ts)

    # -- reads -----------------------------------------------------------------
    def _sources_for(self, row: bytes) -> list[RowEntry]:
        sources: list[RowEntry] = []
        mem = self.memstore.entry(row)
        if mem is not None:
            sources.append(mem)
        for hfile in reversed(self.hfiles):  # newest flush first
            e = hfile.entry(row)
            if e is not None:
                sources.append(e)
        return sources

    def read_row(
        self,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None = None,
        max_versions: int = 1,
        time_range: tuple[int, int] | None = None,
    ) -> Result | None:
        """Visible cells of one row, or None if absent/deleted."""
        self._check_online()
        sources = self._sources_for(row)
        if not sources:
            return None
        wanted = frozenset(columns) if columns else None
        visible = merge_row(sources, max(max_versions, 1), time_range, wanted)
        if visible is None:
            return None
        return Result.from_sorted(row, visible)

    def scan(
        self,
        start: bytes | None = None,
        stop: bytes | None = None,
        columns: frozenset[CellKey] | set[CellKey] | None = None,
        max_versions: int = 1,
        time_range: tuple[int, int] | None = None,
    ) -> RegionScanner:
        """Streaming merged cursor over ``[start, stop)`` within this
        region's bounds; yields ``(row_key, Result | None)`` per distinct
        row key examined (None = deleted/projected away)."""
        self._check_online()
        lo = self.start_key if start is None else max(start, self.start_key)
        hi = self.end_key if stop is None else (
            stop if self.end_key is None else min(stop, self.end_key)
        )
        # components are resolved from `owner` at iteration start (so a
        # flush between creating and consuming the cursor is safe)
        return RegionScanner(
            [], lo, hi, columns, max_versions, time_range, owner=self
        )

    def iter_keys(self, start: bytes, stop: bytes | None) -> Iterator[bytes]:
        """Merged, de-duplicated, sorted row keys across memstore + HFiles."""
        self._check_online()
        streams = [self.memstore.keys_in_range(start, stop)]
        streams.extend(h.keys_in_range(start, stop) for h in self.hfiles)
        last: bytes | None = None
        for key in heapq.merge(*streams):
            if key != last:
                last = key
                yield key

    # -- splitting ---------------------------------------------------------------
    def midpoint_key(self) -> bytes | None:
        """The median distinct row key — the natural mid-key split
        point. None when the region holds fewer than two distinct rows
        (such a region cannot be split)."""
        keys = list(self.iter_keys(self.start_key, self.end_key))
        if len(keys) < 2:
            return None
        return keys[len(keys) // 2]

    def split(self, split_key: bytes | None = None) -> "tuple[Region, Region]":
        """Split into two daughter regions at ``split_key`` (default:
        the mid-key). Daughters inherit the memstore and store files as
        zero-copy views — row entries and cell payloads are shared by
        reference, only key containers are partitioned — and record this
        region's name in their WAL ancestry so log entries written
        before the split keep finding their rows. The parent goes
        offline; open scans fail over to the daughters via the client's
        relocation path."""
        self._check_online()
        if split_key is None:
            split_key = self.midpoint_key()
            if split_key is None:
                raise RegionSplitError(
                    f"region {self.name} holds fewer than two rows; "
                    "refusing to split"
                )
        if not (self.start_key < split_key and self.contains(split_key)):
            raise RegionSplitError(
                f"split key {split_key!r} is not strictly inside "
                f"region {self.name}"
            )
        ancestry = self.wal_ancestry + (self.name,)

        def daughter(start: bytes, end: bytes | None) -> Region:
            return Region(
                table_name=self.table_name,
                start_key=start,
                end_key=end,
                max_versions=self.max_versions,
                kv_overhead_bytes=self.kv_overhead_bytes,
                flush_threshold_rows=self.flush_threshold_rows,
                split_threshold_bytes=self.split_threshold_bytes,
                wal_ancestry=ancestry,
            )

        low = daughter(self.start_key, split_key)
        high = daughter(split_key, self.end_key)
        low.memstore, high.memstore = self.memstore.split(split_key)
        for hfile in self.hfiles:
            bottom, top = hfile.split_view(split_key)
            if bottom is not None:
                low.hfiles.append(bottom)
            if top is not None:
                high.hfiles.append(top)
        low._approx_size_bytes = low._component_size_bytes()
        high._approx_size_bytes = high._component_size_bytes()
        self.online = False
        self.split_daughters = (low, high)
        return low, high

    def _component_size_bytes(self) -> int:
        """Exact byte size summed over every store component (the same
        per-cell accounting the write path accrues approximately)."""
        overhead = self.kv_overhead_bytes
        total = 0
        for row, entry in self.memstore.items():
            total += entry.size_bytes(row, overhead)
        for hfile in self.hfiles:
            for row, entry in hfile.items():
                total += entry.size_bytes(row, overhead)
        return total

    # -- flush & compaction ------------------------------------------------------
    def flush(self) -> HFile | None:
        """Freeze the memstore into a new HFile (zero-copy handoff)."""
        self._check_online()
        if len(self.memstore) == 0:
            return None
        sorted_keys, entries = self.memstore.take_frozen()
        hfile = HFile(entries, sorted_keys=sorted_keys)
        self.hfiles.append(hfile)
        return hfile

    def major_compact(self) -> None:
        """Merge all store components into one HFile; drop tombstones and
        versions beyond ``max_versions``; recompute the exact size."""
        self._check_online()
        merged_entries: dict[bytes, RowEntry] = {}
        sorted_keys: list[bytes] = []
        size = 0
        for row, result in self.scan(max_versions=self.max_versions):
            if result is None:
                continue
            entry = RowEntry.from_sorted_cells(result._cells)
            merged_entries[row] = entry
            sorted_keys.append(row)
            size += entry.size_bytes(row, self.kv_overhead_bytes)
        self.memstore.clear()
        self.hfiles = (
            [HFile(merged_entries, sorted_keys=sorted_keys)]
            if merged_entries
            else []
        )
        self._approx_size_bytes = size

    def row_count(self) -> int:
        """Number of visible rows (post-merge); one streaming pass."""
        return sum(
            1 for _, result in self.scan(max_versions=1) if result is not None
        )
