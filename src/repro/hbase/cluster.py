"""The simulated cluster: HMaster duties + meta table + timestamp oracle.

The master creates tables (optionally pre-split), assigns regions
round-robin across region servers, and recovers regions from a crashed
server by re-opening them elsewhere and replaying the WAL — the same
fault-tolerance story the paper's HBase layer provides.

Scale-out duties live here too: size-triggered mid-key region splits
(daughters inherit store contents as zero-copy views and open on the
parent's server, as in real HBase), explicit server addition, and the
:class:`RegionBalancer`, which redistributes regions across servers
under a round-robin or load-aware policy. Every policy decision is a
pure function of the cluster state plus a SimRNG stream derived from
the cluster seed, so rebalancing is bit-reproducible.
"""

from __future__ import annotations

import bisect

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.errors import (
    ClusterConfigError,
    HBaseError,
    RegionSplitError,
    RegionUnavailableError,
    ReplicationError,
    ServerRecoveryError,
    TableExistsError,
    TableNotFoundError,
)
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer
from repro.hbase.replication import ReplicationManager
from repro.sim.clock import Simulation
from repro.sim.rng import derive_rng


class TableDescriptor:
    """Table metadata: families, version limit, region layout.

    ``version`` is the region-layout generation: it moves whenever the
    region list changes (recovery swap, drop), which is the signal the
    client-side location caches key their invalidation on.
    """

    def __init__(
        self,
        name: str,
        families: tuple[bytes, ...],
        max_versions: int,
        regions: list[Region],
    ) -> None:
        self.name = name
        self.families = families
        self.max_versions = max_versions
        self.regions = regions  # sorted by start key
        self.version = 0
        self._starts = [r.start_key for r in regions]

    def invalidate_locations(self) -> None:
        """Rebuild the routing index after the region list changed."""
        self._starts = [r.start_key for r in self.regions]
        self.version += 1

    def region_for(self, row: bytes) -> Region:
        # regions tile the key space and the first always starts at b"",
        # so the candidate is the rightmost region starting at or before row
        i = bisect.bisect_right(self._starts, row) - 1
        if i >= 0:
            region = self.regions[i]
            if region.contains(row):
                return region
        raise TableNotFoundError(
            f"no region for row {row!r} in table {self.name}"
        )  # pragma: no cover - regions always tile the key space

class HBaseCluster:
    """Owns region servers and table metadata; issues timestamps."""

    def __init__(
        self,
        sim: Simulation,
        config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
    ) -> None:
        self.sim = sim
        self.config = config
        self.servers: list[RegionServer] = [
            RegionServer(f"rs{i + 1}", sim, serving=config.serving)
            for i in range(config.num_region_servers)
        ]
        self.tables: dict[str, TableDescriptor] = {}
        self._ts = 0
        self._assign_cursor = 0
        self._region_host: dict[str, RegionServer] = {}
        self.layout_epoch = 0
        """Cluster-wide layout generation: moves on every topology
        mutation (table DDL, server add/drain, region move/split/merge,
        recovery, replica-count change). Orchestration steps fence on
        it — a step fenced against one epoch refuses to apply after the
        layout moved underneath it."""
        for server in self.servers:
            server.on_region_grown = self._auto_split
        self.replication = (
            ReplicationManager(self)
            if config.replication.replica_count >= 2
            else None
        )
        """Region-replication manager, or None (``replica_count=1``).
        Every replication hook below is guarded on this, so the
        unreplicated cluster behaves — and charges — bit-identically
        to builds that predate replication."""

    # -- timestamp oracle ----------------------------------------------------------
    def next_timestamp(self) -> int:
        self._ts += 1
        return self._ts

    def reserve_timestamps(self, n: int) -> int:
        """Allocate a contiguous block of ``n`` timestamps (one oracle
        round trip per batch instead of per mutation); returns the first."""
        first = self._ts + 1
        self._ts += n
        return first

    @property
    def current_timestamp(self) -> int:
        return self._ts

    def _bump_layout(self) -> None:
        self.layout_epoch += 1

    # -- DDL -------------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        families: tuple[bytes, ...] = (b"cf",),
        split_keys: list[bytes] | None = None,
        max_versions: int | None = None,
    ) -> TableDescriptor:
        if name in self.tables:
            raise TableExistsError(name)
        max_versions = max_versions or self.config.max_versions
        boundaries: list[bytes | None] = [b""]
        boundaries.extend(sorted(split_keys or []))
        boundaries.append(None)
        regions = []
        for i in range(len(boundaries) - 1):
            start = boundaries[i]
            assert start is not None
            region = Region(
                table_name=name,
                start_key=start,
                end_key=boundaries[i + 1],
                max_versions=max_versions,
                kv_overhead_bytes=self.config.cost.kv_overhead_bytes,
                flush_threshold_rows=self.config.hfile_flush_threshold_rows,
                split_threshold_bytes=self.config.region_split_threshold_bytes,
            )
            regions.append(region)
            self._assign(region)
        desc = TableDescriptor(name, families, max_versions, regions)
        self.tables[name] = desc
        self._bump_layout()
        return desc

    def drop_table(self, name: str) -> None:
        desc = self.tables.pop(name, None)
        if desc is None:
            raise TableNotFoundError(name)
        for region in desc.regions:
            server = self._region_host.pop(region.name)
            server.unhost(region.name)
        desc.regions = []
        desc.invalidate_locations()  # stale client handles must re-resolve
        self._bump_layout()

    def descriptor(self, name: str) -> TableDescriptor:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    # -- region placement ----------------------------------------------------------
    def _assign(self, region: Region, server: RegionServer | None = None) -> None:
        if server is None:
            live = [s for s in self.servers if s.alive]
            if not live:
                raise HBaseError(
                    f"no live region server to open {region.name} on"
                )
            # draining servers are leaving the rotation; fall back to
            # them only when nothing else is up (availability first)
            candidates = [s for s in live if not s.draining] or live
            server = candidates[self._assign_cursor % len(candidates)]
            self._assign_cursor += 1
        server.host(region)
        self._region_host[region.name] = server

    def server_for(self, region: Region) -> RegionServer:
        try:
            return self._region_host[region.name]
        except KeyError:
            # a stale client handle addressing a region that left the
            # meta table (split parent, dropped table): same failure the
            # relocation retry handles for an offline region object
            raise RegionUnavailableError(
                f"region {region.name} is no longer hosted"
            ) from None

    def add_servers(
        self, n: int = 1, names: list[str] | None = None
    ) -> list[RegionServer]:
        """Scale out: bring ``n`` fresh (empty) region servers online
        (or one per explicit name in ``names``). Existing regions stay
        put until a :class:`RegionBalancer` run moves some of them over.
        A requested name that collides with an existing server — or
        repeats within ``names`` — raises
        :class:`~repro.errors.ClusterConfigError`: silently reusing a
        member name would fork the identity every ``_region_host`` and
        recovery decision keys on."""
        existing = {s.name for s in self.servers}
        if names is not None:
            n = len(names)
            seen: set[str] = set()
            for name in names:
                if name in existing:
                    raise ClusterConfigError(
                        f"region server {name!r} already exists"
                    )
                if name in seen:
                    raise ClusterConfigError(
                        f"duplicate region server name {name!r} in add_servers"
                    )
                seen.add(name)
        fresh = []
        for i in range(n):
            if names is not None:
                name = names[i]
            else:
                # skip over explicitly-named members ("rs7" may exist
                # on a 5-server cluster) instead of colliding with them
                j = len(self.servers) + 1
                while f"rs{j}" in existing:
                    j += 1
                name = f"rs{j}"
            existing.add(name)
            server = RegionServer(name, self.sim, serving=self.config.serving)
            server.on_region_grown = self._auto_split
            self.servers.append(server)
            fresh.append(server)
        if fresh:
            self._bump_layout()
        return fresh

    def remove_server(self, server: RegionServer | str) -> None:
        """Take a server out of the membership entirely — the true
        inverse of :meth:`add_servers`, used by orchestration rollback.
        Only an empty server may leave (drain it first): removing one
        that still hosts primaries or followers would strand state."""
        if isinstance(server, str):
            server = self.server_named(server)
        if server.regions or server.follower_regions:
            raise ClusterConfigError(
                f"server {server.name} still hosts state; drain it "
                "before removing it"
            )
        self.servers.remove(server)
        self._bump_layout()

    def server_named(self, name: str) -> RegionServer:
        for server in self.servers:
            if server.name == name:
                return server
        raise ClusterConfigError(f"no region server named {name!r}")

    def drain_server(
        self, server: RegionServer | str
    ) -> list[tuple[str, bytes, str]]:
        """Decommission primitive: mark ``server`` draining (placement,
        balancing and follower top-up all skip it from here on), move
        every primary it hosts to the least-loaded eligible server, and
        rebuild its follower replicas elsewhere. Returns the primary
        moves performed as ``(table, start_key, target_name)`` — the
        exact list an orchestration rollback replays in reverse.

        Draining a dead server raises
        :class:`~repro.errors.RegionUnavailableError` (moving needs a
        flush the host cannot serve); the orchestration ``DrainServer``
        step degrades that to recovery-then-drain. If some region has
        no eligible target (capacity or anti-affinity), every move
        already performed is reverted and the error propagates — the
        drain is all-or-nothing."""
        if isinstance(server, str):
            server = self.server_named(server)
        if not server.alive:
            raise RegionUnavailableError(
                f"cannot drain {server.name}: server is down "
                "(recover it first)"
            )
        was_draining = server.draining
        server.draining = True
        self._bump_layout()
        moves: list[tuple[str, bytes, str]] = []
        performed: list[Region] = []
        try:
            regions = sorted(
                server.regions.values(),
                key=lambda r: (r.table_name, r.start_key),
            )
            for region in regions:
                target = self._drain_target(server, region)
                if target is None:
                    raise HBaseError(
                        f"no eligible server to drain {region.name} "
                        f"off {server.name}"
                    )
                self.move_region(region, target)
                performed.append(region)
                moves.append((region.table_name, region.start_key, target.name))
        except Exception:
            server.draining = was_draining
            for region in reversed(performed):
                self.move_region(region, server)
            self._bump_layout()
            raise
        if self.replication is not None:
            self.replication.evacuate_followers(server)
        return moves

    def _drain_target(
        self, source: RegionServer, region: Region
    ) -> RegionServer | None:
        """Least-loaded eligible destination for one drained region
        (ties break on the server name — fully deterministic)."""
        candidates = [
            s
            for s in self.servers
            if s.alive and not s.draining and s is not source
        ]
        if self.replication is not None:
            candidates = [
                s for s in candidates if self.replication.allows_move(region, s)
            ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (len(s.regions), s.name))

    def undrain_server(self, server: RegionServer | str) -> None:
        """Put a drained server back into placement rotation. Regions
        do not move back on their own — a balancer run (or orchestration
        rollback replaying the recorded drain moves) does that."""
        if isinstance(server, str):
            server = self.server_named(server)
        server.draining = False
        self._bump_layout()

    def move_region(self, region: Region, target: RegionServer) -> bool:
        """Reassign one region to ``target``. The source flushes the
        region first (closing a region persists its memstore, so the
        move carries no unflushed state and no WAL dependency across
        servers). Returns False for a no-op move."""
        source = self._region_host.get(region.name)
        if source is None:
            raise HBaseError(f"region {region.name} is not hosted")
        if source is target:
            return False
        if not target.alive:
            raise HBaseError(f"server {target.name} is down")
        if self.replication is not None and not self.replication.allows_move(
            region, target
        ):
            raise ReplicationError(
                f"moving primary {region.name} onto {target.name} would "
                "co-host it with its own follower"
            )
        source.flush_region(region)
        source.unhost(region.name)
        target.host(region)
        self._region_host[region.name] = target
        if self.replication is not None:
            # the ship-log tap must follow the primary onto its new WAL
            self.replication.on_region_moved(region, source, target)
        self._bump_layout()
        return True

    # -- region splitting -------------------------------------------------------------
    def split_region(
        self, region: Region, split_key: bytes | None = None
    ) -> tuple[Region, Region]:
        """Split ``region`` at ``split_key`` (default mid-key) and open
        both daughters on the parent's server. The parent goes offline
        and leaves the meta table; the descriptor's layout version moves
        so client location caches re-resolve. Raises
        :class:`~repro.errors.RegionSplitError` when the region cannot
        be split (fewer than two rows, or an out-of-range key)."""
        server = self._region_host.get(region.name)
        if server is None:
            raise HBaseError(f"region {region.name} is not hosted")
        if (
            self.replication is not None
            and region.name in self.replication.groups
        ):
            # splitting would orphan the group's complete-history ship
            # log (each daughter's log would start mid-history); the
            # replicated experiments pre-split at table creation instead
            raise ReplicationError(
                f"region {region.name} is replicated and cannot be split"
            )
        low, high = region.split(split_key)
        server.unhost(region.name)
        del self._region_host[region.name]
        for daughter in (low, high):
            server.host(daughter)
            self._region_host[daughter.name] = server
        desc = self.tables[region.table_name]
        i = next(
            idx for idx, r in enumerate(desc.regions) if r is region
        )
        desc.regions[i : i + 1] = [low, high]
        desc.invalidate_locations()  # stale clients must re-resolve
        self._bump_layout()
        return low, high

    def merge_regions(self, low: Region, high: Region) -> Region:
        """Merge two adjacent regions of a table back into one — the
        inverse of :meth:`split_region`, used by orchestration rollback.

        Both daughters flush first (like a move, the merged region must
        carry no unflushed state), then a fresh merged region adopts
        both HFile sets and opens on ``low``'s server. Raises
        :class:`~repro.errors.RegionSplitError` for non-adjacent or
        cross-table pairs, :class:`~repro.errors.ReplicationError` for
        replicated regions (their group ship-log is keyed per region)."""
        if low.table_name != high.table_name:
            raise RegionSplitError(
                f"cannot merge across tables: {low.name} / {high.name}"
            )
        if low.end_key != high.start_key:
            raise RegionSplitError(
                f"regions {low.name} and {high.name} are not adjacent"
            )
        if self.replication is not None and (
            low.name in self.replication.groups
            or high.name in self.replication.groups
        ):
            raise ReplicationError(
                f"regions {low.name}/{high.name} are replicated "
                "and cannot be merged"
            )
        server_low = self.server_for(low)
        server_high = self.server_for(high)
        server_low.flush_region(low)
        server_high.flush_region(high)
        merged = Region(
            table_name=low.table_name,
            start_key=low.start_key,
            end_key=high.end_key,
            max_versions=low.max_versions,
            kv_overhead_bytes=low.kv_overhead_bytes,
            flush_threshold_rows=low.flush_threshold_rows,
            split_threshold_bytes=low.split_threshold_bytes,
            # both daughters flushed, but a later crash-replay must
            # still route any ancestor-logged edits by key range
            wal_ancestry=tuple(
                dict.fromkeys(
                    low.wal_ancestry
                    + (low.name,)
                    + high.wal_ancestry
                    + (high.name,)
                )
            ),
        )
        merged.hfiles = list(low.hfiles) + list(high.hfiles)
        merged._approx_size_bytes = merged._component_size_bytes()
        for daughter, host in ((low, server_low), (high, server_high)):
            host.unhost(daughter.name)
            del self._region_host[daughter.name]
            daughter.online = False
        server_low.host(merged)
        self._region_host[merged.name] = server_low
        desc = self.tables[low.table_name]
        i = next(idx for idx, r in enumerate(desc.regions) if r is low)
        assert desc.regions[i + 1] is high
        desc.regions[i : i + 2] = [merged]
        desc.invalidate_locations()  # stale clients must re-resolve
        self._bump_layout()
        return merged

    def _auto_split(self, region: Region) -> None:
        """Size-trigger hook: split a grown region, recursively, until
        every daughter is below the threshold or refuses to split."""
        queue = [region]
        while queue:
            r = queue.pop()
            threshold = r.split_threshold_bytes
            if threshold is None or r._approx_size_bytes < threshold:
                continue
            if (
                self.replication is not None
                and r.name in self.replication.groups
            ):
                continue  # replicated regions never auto-split
            try:
                queue.extend(self.split_region(r))
            except RegionSplitError:
                continue  # a hot single-row region just keeps growing

    def region_distribution(self) -> dict[str, int]:
        """server name -> hosted region count (for balance checks)."""
        out: dict[str, int] = {s.name: 0 for s in self.servers}
        for server in self._region_host.values():
            out[server.name] += 1
        return out

    # -- failure handling -----------------------------------------------------------
    def recover_server(self, dead: RegionServer) -> int:
        """Master failover: reopen the dead server's regions elsewhere,
        replaying its WAL. Returns the number of regions recovered.

        Guarded against misuse: recovering a live server would re-move
        regions that are being served, and recovering a server twice
        would replay a WAL whose edits already landed (and were flushed)
        on the regions' new hosts — both raise
        :class:`~repro.errors.ServerRecoveryError` instead of silently
        corrupting the layout."""
        if dead.alive:
            raise ServerRecoveryError(
                f"server {dead.name} is alive; refusing to recover it"
            )
        if dead.recovered:
            raise ServerRecoveryError(
                f"server {dead.name} was already recovered; its regions "
                "are hosted elsewhere"
            )
        recovered = 0
        for region_name in list(dead.regions):
            old = dead.unhost(region_name)
            if self.replication is not None:
                promoted = self.replication.promote(old)
                if promoted is not None:
                    # most-caught-up live follower becomes the primary:
                    # only the un-shipped log suffix was replayed, not
                    # the dead server's whole pending WAL
                    region = promoted.region
                    promoted.server.host(region)
                    del self._region_host[region_name]
                    self._region_host[region.name] = promoted.server
                    # persist the promoted copy: its memstore rows are
                    # now the only unflushed incarnation of these edits
                    promoted.server.flush_region(region)
                    desc = self.tables[old.table_name]
                    desc.regions = [
                        region if r.name == old.name else r
                        for r in desc.regions
                    ]
                    desc.invalidate_locations()
                    recovered += 1
                    continue
            fresh = Region(
                table_name=old.table_name,
                start_key=old.start_key,
                end_key=old.end_key,
                max_versions=old.max_versions,
                kv_overhead_bytes=old.kv_overhead_bytes,
                flush_threshold_rows=old.flush_threshold_rows,
                split_threshold_bytes=old.split_threshold_bytes,
                # the fresh incarnation has a new region id: route the
                # dead server's log to it by lineage + key range
                wal_ancestry=old.wal_ancestry + (old.name,),
            )
            fresh.hfiles = list(old.hfiles)  # HFiles live on HDFS
            # seed the size from the surviving store files only (the
            # memstore is empty here): the WAL replay below re-accrues
            # the unflushed rows, so copying the old total would count
            # them twice — and a double-counted size trips the split
            # threshold spuriously
            fresh._approx_size_bytes = fresh._component_size_bytes()
            dead.replay_wal_into(fresh)
            del self._region_host[region_name]
            self._assign(fresh)
            # persist the recovered edits on the new host: they exist
            # only in the fresh memstore here, and the dead server's
            # log is gone after failover — without this flush a second
            # crash would silently lose them
            self.server_for(fresh).flush_region(fresh)
            # swap the region object inside the table descriptor
            desc = self.tables[old.table_name]
            desc.regions = [
                fresh if r.name == old.name else r for r in desc.regions
            ]
            desc.invalidate_locations()  # client caches must not reuse `old`
            if self.replication is not None:
                # a replicated primary with no live follower took the
                # full-replay path: re-key its group to the fresh
                # incarnation and move the ship-log tap to the new host
                self.replication.on_primary_recovered(
                    old, fresh, self.server_for(fresh)
                )
            recovered += 1
        dead.recovered = True
        if self.replication is not None:
            # groups that lost followers (or whose promotion consumed
            # one) head back to full strength on the surviving servers
            self.replication.repair()
        self._bump_layout()
        return recovered

    def recovery_replay_estimate(self, dead: RegionServer) -> int:
        """Log entries master failover would replay to recover ``dead``
        right now: the best live follower's lag for promotable regions,
        the full pending WAL (own buffer + ancestor ranges) otherwise.
        The chaos engine turns this into the recovery stall that
        replication is meant to shrink."""
        total = 0
        for region in dead.regions.values():
            est = None
            if self.replication is not None:
                est = self.replication.promotion_replay_estimate(region)
            if est is None:
                est = len(dead.wal.entries_for(region.name))
                for ancestor in region.wal_ancestry:
                    est += len(
                        dead.wal.entries_for_range(
                            ancestor, region.start_key, region.end_key
                        )
                    )
            total += est
        return total

    # -- replication control --------------------------------------------------------
    def set_replica_count(self, table: str, count: int) -> int:
        """Online replica-count change for one table (see
        :meth:`ReplicationManager.set_replica_count`). Creates the
        replication manager on demand when the cluster was configured
        unreplicated — with a default target of 1, so every *other*
        table keeps its exact unreplicated behavior."""
        self.descriptor(table)  # typed failure for unknown tables
        if count < 1:
            raise ReplicationError(f"replica count must be >= 1, got {count}")
        if self.replication is None:
            if count == 1:
                return 0
            self.replication = ReplicationManager(
                self, default_replica_count=1
            )
        delta = self.replication.set_replica_count(table, count)
        self._bump_layout()
        return delta

    # -- stats ------------------------------------------------------------------------
    def table_size_bytes(self, name: str) -> int:
        desc = self.descriptor(name)
        return sum(r.approx_size_bytes for r in desc.regions)

    def total_size_bytes(self) -> int:
        return sum(self.table_size_bytes(t) for t in self.tables)

    def major_compact(self, name: str | None = None) -> None:
        names = [name] if name else list(self.tables)
        for n in names:
            for region in self.descriptor(n).regions:
                region.major_compact()

    def table_row_count(self, name: str) -> int:
        return sum(r.row_count() for r in self.descriptor(name).regions)

    def serving_stats(self) -> dict:
        """Aggregate serving-layer counters across every server: row
        cache hits/misses/evictions and admission/shedding totals. Pure
        inspection (no charges, no RNG draws); all zeros — and an empty
        per-server map — when the serving knobs are off."""
        totals = {
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "cache_invalidations": 0,
            "admitted": 0,
            "shed": 0,
        }
        per_server: dict[str, dict] = {}
        for server in self.servers:
            entry: dict = {}
            if server.row_cache is not None:
                stats = server.row_cache.stats()
                entry["cache"] = stats
                totals["cache_hits"] += stats["hits"]
                totals["cache_misses"] += stats["misses"]
                totals["cache_evictions"] += stats["evictions"]
                totals["cache_invalidations"] += stats["invalidations"]
            if server.admission is not None:
                stats = server.admission.stats()
                entry["admission"] = stats
                totals["admitted"] += stats["admitted"]
                totals["shed"] += stats["shed"]
            if entry:
                per_server[server.name] = entry
        lookups = totals["cache_hits"] + totals["cache_misses"]
        totals["cache_hit_ratio"] = (
            totals["cache_hits"] / lookups if lookups else 0.0
        )
        offered = totals["admitted"] + totals["shed"]
        totals["shed_rate"] = totals["shed"] / offered if offered else 0.0
        return {"totals": totals, "servers": per_server}

    def layout_fingerprint(self) -> dict:
        """Structural snapshot of the whole layout: per-table region
        boundaries, hosting and row counts; per-server liveness/drain
        state; follower placement per replicated key range. Pure
        inspection (no charges, no RNG draws) — orchestration compares
        fingerprints to decide whether a rollback restored the last
        committed stage, and tests assert equality across reruns."""
        tables: dict[str, list] = {}
        for name in sorted(self.tables):
            tables[name] = [
                {
                    "start": r.start_key.hex(),
                    "end": None if r.end_key is None else r.end_key.hex(),
                    "host": (
                        self._region_host[r.name].name
                        if r.name in self._region_host
                        else None
                    ),
                    "rows": r.row_count(),
                }
                for r in self.tables[name].regions
            ]
        servers = {
            s.name: {
                "alive": s.alive,
                "draining": s.draining,
                "primaries": len(s.regions),
                "followers": len(s.follower_regions),
            }
            for s in self.servers
        }
        replicas: dict[str, list[str]] = {}
        if self.replication is not None:
            for group in self.replication.groups.values():
                key = (
                    f"{group.primary.table_name},"
                    f"{group.primary.start_key.hex()}"
                )
                replicas[key] = sorted(f.server.name for f in group.followers)
        return {"tables": tables, "servers": servers, "replicas": replicas}


class RegionBalancer:
    """Redistributes regions across the cluster's live region servers.

    Two policies:

    * ``"round-robin"`` deals the regions (in (table, start key) order)
      cyclically across the live servers, starting at a SimRNG-drawn
      offset — the classic HBase simple balancer.
    * ``"load-aware"`` greedily moves the best-fitting region from the
      most-loaded to the least-loaded server (load = approximate region
      bytes) while doing so shrinks the spread — a size-weighted
      balancer that evens out skewed post-split layouts.

    Both are deterministic: ordering is by stable sort keys and the only
    arbitrary choice (the round-robin offset) comes from a RNG stream
    derived from the cluster seed, so repeated runs move the same
    regions to the same servers.
    """

    def __init__(self, cluster: HBaseCluster, policy: str = "load-aware") -> None:
        if policy not in ("round-robin", "load-aware"):
            raise ValueError(f"unknown balancer policy: {policy}")
        self.cluster = cluster
        self.policy = policy
        self._rng = derive_rng(cluster.config.seed, "region-balancer")
        self.last_moves: list[tuple[str, bytes, str, str]] = []
        """Moves the latest :meth:`rebalance` performed, as
        ``(table, start_key, source, target)`` — what an orchestration
        rollback replays in reverse."""

    # -- shared helpers ----------------------------------------------------------------
    def _live_servers(self) -> list[RegionServer]:
        # draining servers are on their way out: never a balance target
        return [s for s in self.cluster.servers if s.alive and not s.draining]

    def _hosted_regions(self) -> list[Region]:
        """Every hosted region, in a stable deterministic order."""
        regions = []
        for desc in self.cluster.tables.values():
            regions.extend(desc.regions)
        regions.sort(key=lambda r: (r.table_name, r.start_key))
        return regions

    def rebalance(self) -> int:
        """Run the active policy; returns the number of regions moved.
        Tables whose regions moved get their layout version bumped, so
        client relocation caches re-resolve instead of talking to the
        old host."""
        servers = self._live_servers()
        if len(servers) < 2:
            return 0
        if self.policy == "round-robin":
            moves = self._round_robin_moves(servers)
        else:
            moves = self._load_aware_moves(servers)
        replication = self.cluster.replication
        if replication is not None:
            # drop (don't reroute) moves that would co-host a primary
            # with its own follower: rerouting would shift every later
            # round-robin slot and change unrelated placements
            moves = [
                (region, target)
                for region, target in moves
                if replication.allows_move(region, target)
            ]
        moved_tables = set()
        moved = 0
        self.last_moves = []
        for region, target in moves:
            source = self.cluster.server_for(region)
            if self.cluster.move_region(region, target):
                moved += 1
                moved_tables.add(region.table_name)
                self.last_moves.append(
                    (region.table_name, region.start_key,
                     source.name, target.name)
                )
        for table in sorted(moved_tables):
            self.cluster.tables[table].invalidate_locations()
        return moved

    # -- policies ----------------------------------------------------------------------
    def _round_robin_moves(
        self, servers: list[RegionServer]
    ) -> list[tuple[Region, RegionServer]]:
        regions = [
            # a dead server's regions belong to master recovery, not
            # the balancer: moving needs a flush the host cannot serve
            r for r in self._hosted_regions()
            if self.cluster.server_for(r).alive
        ]
        offset = int(self._rng.integers(len(servers)))
        return [
            (region, servers[(offset + i) % len(servers)])
            for i, region in enumerate(regions)
        ]

    def _load_aware_moves(
        self, servers: list[RegionServer]
    ) -> list[tuple[Region, RegionServer]]:
        server_for = self.cluster.server_for
        load: dict[str, int] = {s.name: 0 for s in servers}
        hosted: dict[str, list[Region]] = {s.name: [] for s in servers}
        by_name = {s.name: s for s in servers}
        for region in self._hosted_regions():
            host = server_for(region)
            if host.name in load:
                # count every region as at least one byte so empty
                # regions still spread instead of piling on one server
                load[host.name] += max(region.approx_size_bytes, 1)
                hosted[host.name].append(region)
        moves: list[tuple[Region, RegionServer]] = []
        while True:
            names = sorted(load)
            hi = max(names, key=lambda n: (load[n], n))
            lo = min(names, key=lambda n: (load[n], n))
            gap = load[hi] - load[lo]
            if gap <= 0 or not hosted[hi]:
                break
            # the region whose size is closest to half the gap shrinks
            # the spread the most; ties break on the stable sort order
            candidate = min(
                hosted[hi],
                key=lambda r: abs(max(r.approx_size_bytes, 1) - gap / 2),
            )
            size = max(candidate.approx_size_bytes, 1)
            if size >= gap:  # moving it would just flip the imbalance
                break
            hosted[hi].remove(candidate)
            hosted[lo].append(candidate)
            load[hi] -= size
            load[lo] += size
            moves.append((candidate, by_name[lo]))
        return moves
