"""The simulated cluster: HMaster duties + meta table + timestamp oracle.

The master creates tables (optionally pre-split), assigns regions
round-robin across region servers, and recovers regions from a crashed
server by re-opening them elsewhere and replaying the WAL — the same
fault-tolerance story the paper's HBase layer provides.
"""

from __future__ import annotations

import bisect

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.errors import TableExistsError, TableNotFoundError
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer
from repro.sim.clock import Simulation


class TableDescriptor:
    """Table metadata: families, version limit, region layout.

    ``version`` is the region-layout generation: it moves whenever the
    region list changes (recovery swap, drop), which is the signal the
    client-side location caches key their invalidation on.
    """

    def __init__(
        self,
        name: str,
        families: tuple[bytes, ...],
        max_versions: int,
        regions: list[Region],
    ) -> None:
        self.name = name
        self.families = families
        self.max_versions = max_versions
        self.regions = regions  # sorted by start key
        self.version = 0
        self._starts = [r.start_key for r in regions]

    def invalidate_locations(self) -> None:
        """Rebuild the routing index after the region list changed."""
        self._starts = [r.start_key for r in self.regions]
        self.version += 1

    def region_for(self, row: bytes) -> Region:
        # regions tile the key space and the first always starts at b"",
        # so the candidate is the rightmost region starting at or before row
        i = bisect.bisect_right(self._starts, row) - 1
        if i >= 0:
            region = self.regions[i]
            if region.contains(row):
                return region
        raise TableNotFoundError(
            f"no region for row {row!r} in table {self.name}"
        )  # pragma: no cover - regions always tile the key space

    def regions_overlapping(
        self, start: bytes, stop: bytes | None
    ) -> list[Region]:
        out = []
        for region in self.regions:
            if stop is not None and region.start_key >= stop:
                continue
            if region.end_key is not None and region.end_key <= start:
                continue
            out.append(region)
        return out


class HBaseCluster:
    """Owns region servers and table metadata; issues timestamps."""

    def __init__(
        self,
        sim: Simulation,
        config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
    ) -> None:
        self.sim = sim
        self.config = config
        self.servers: list[RegionServer] = [
            RegionServer(f"rs{i + 1}", sim) for i in range(config.num_region_servers)
        ]
        self.tables: dict[str, TableDescriptor] = {}
        self._ts = 0
        self._assign_cursor = 0
        self._region_host: dict[str, RegionServer] = {}

    # -- timestamp oracle ----------------------------------------------------------
    def next_timestamp(self) -> int:
        self._ts += 1
        return self._ts

    def reserve_timestamps(self, n: int) -> int:
        """Allocate a contiguous block of ``n`` timestamps (one oracle
        round trip per batch instead of per mutation); returns the first."""
        first = self._ts + 1
        self._ts += n
        return first

    @property
    def current_timestamp(self) -> int:
        return self._ts

    # -- DDL -------------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        families: tuple[bytes, ...] = (b"cf",),
        split_keys: list[bytes] | None = None,
        max_versions: int | None = None,
    ) -> TableDescriptor:
        if name in self.tables:
            raise TableExistsError(name)
        max_versions = max_versions or self.config.max_versions
        boundaries: list[bytes | None] = [b""]
        boundaries.extend(sorted(split_keys or []))
        boundaries.append(None)
        regions = []
        for i in range(len(boundaries) - 1):
            start = boundaries[i]
            assert start is not None
            region = Region(
                table_name=name,
                start_key=start,
                end_key=boundaries[i + 1],
                max_versions=max_versions,
                kv_overhead_bytes=self.config.cost.kv_overhead_bytes,
                flush_threshold_rows=self.config.hfile_flush_threshold_rows,
            )
            regions.append(region)
            self._assign(region)
        desc = TableDescriptor(name, families, max_versions, regions)
        self.tables[name] = desc
        return desc

    def drop_table(self, name: str) -> None:
        desc = self.tables.pop(name, None)
        if desc is None:
            raise TableNotFoundError(name)
        for region in desc.regions:
            server = self._region_host.pop(region.name)
            server.unhost(region.name)
        desc.regions = []
        desc.invalidate_locations()  # stale client handles must re-resolve

    def descriptor(self, name: str) -> TableDescriptor:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    # -- region placement ----------------------------------------------------------
    def _assign(self, region: Region, server: RegionServer | None = None) -> None:
        if server is None:
            live = [s for s in self.servers if s.alive]
            server = live[self._assign_cursor % len(live)]
            self._assign_cursor += 1
        server.host(region)
        self._region_host[region.name] = server

    def server_for(self, region: Region) -> RegionServer:
        return self._region_host[region.name]

    def region_distribution(self) -> dict[str, int]:
        """server name -> hosted region count (for balance checks)."""
        out: dict[str, int] = {s.name: 0 for s in self.servers}
        for server in self._region_host.values():
            out[server.name] += 1
        return out

    # -- failure handling -----------------------------------------------------------
    def recover_server(self, dead: RegionServer) -> int:
        """Master failover: reopen the dead server's regions elsewhere,
        replaying its WAL. Returns the number of regions recovered."""
        if dead.alive:
            raise ValueError(f"server {dead.name} is alive")
        recovered = 0
        for region_name in list(dead.regions):
            old = dead.unhost(region_name)
            fresh = Region(
                table_name=old.table_name,
                start_key=old.start_key,
                end_key=old.end_key,
                max_versions=old.max_versions,
                kv_overhead_bytes=old.kv_overhead_bytes,
                flush_threshold_rows=old.flush_threshold_rows,
            )
            fresh.hfiles = list(old.hfiles)  # HFiles live on HDFS
            fresh._approx_size_bytes = old._approx_size_bytes
            dead.replay_wal_into(fresh)
            del self._region_host[region_name]
            self._assign(fresh)
            # swap the region object inside the table descriptor
            desc = self.tables[old.table_name]
            desc.regions = [
                fresh if r.name == old.name else r for r in desc.regions
            ]
            desc.invalidate_locations()  # client caches must not reuse `old`
            recovered += 1
        return recovered

    # -- stats ------------------------------------------------------------------------
    def table_size_bytes(self, name: str) -> int:
        desc = self.descriptor(name)
        return sum(r.approx_size_bytes for r in desc.regions)

    def total_size_bytes(self) -> int:
        return sum(self.table_size_bytes(t) for t in self.tables)

    def major_compact(self, name: str | None = None) -> None:
        names = [name] if name else list(self.tables)
        for n in names:
            for region in self.descriptor(n).regions:
                region.major_compact()

    def table_row_count(self, name: str) -> int:
        return sum(r.row_count() for r in self.descriptor(name).regions)
