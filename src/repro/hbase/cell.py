"""Cells and read results."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Cell:
    """One versioned cell: (row, family, qualifier, timestamp, value).

    Ordering follows HBase: by row, family, qualifier, then *descending*
    timestamp (we store ``-timestamp`` in the sort key to get that).
    """

    row: bytes
    family: bytes
    qualifier: bytes
    timestamp: int
    value: bytes = field(compare=False)

    @property
    def size_bytes(self) -> int:
        return len(self.row) + len(self.family) + len(self.qualifier) + 8 + len(self.value)


class Result:
    """Result of a Get or one Scan row: newest-first versions per column."""

    __slots__ = ("row", "_cells")

    def __init__(self, row: bytes) -> None:
        self.row = row
        # (family, qualifier) -> list[(timestamp, value)] newest first
        self._cells: dict[tuple[bytes, bytes], list[tuple[int, bytes]]] = {}

    @classmethod
    def from_sorted(
        cls,
        row: bytes,
        cells: dict[tuple[bytes, bytes], list[tuple[int, bytes]]],
    ) -> "Result":
        """Adopt a merged cell dict whose version lists are already
        newest-first (the streaming scanner's zero-copy constructor)."""
        result = cls.__new__(cls)
        result.row = row
        result._cells = cells
        return result

    def add(self, family: bytes, qualifier: bytes, timestamp: int, value: bytes) -> None:
        versions = self._cells.setdefault((family, qualifier), [])
        versions.append((timestamp, value))
        versions.sort(key=lambda tv: -tv[0])

    @property
    def is_empty(self) -> bool:
        return not self._cells

    def columns(self) -> list[tuple[bytes, bytes]]:
        return sorted(self._cells)

    def value(self, family: bytes, qualifier: bytes) -> bytes | None:
        """Newest version's value, or None when the column is absent."""
        versions = self._cells.get((family, qualifier))
        return versions[0][1] if versions else None

    def versions(self, family: bytes, qualifier: bytes) -> list[tuple[int, bytes]]:
        return list(self._cells.get((family, qualifier), ()))

    def cells(self) -> list[Cell]:
        out = []
        for (family, qualifier), versions in sorted(self._cells.items()):
            for ts, value in versions:
                out.append(Cell(self.row, family, qualifier, ts, value))
        return out

    def to_dict(self, family: bytes) -> dict[bytes, bytes]:
        """{qualifier: newest value} for one family."""
        return {
            q: versions[0][1]
            for (f, q), versions in self._cells.items()
            if f == family and versions
        }

    @property
    def size_bytes(self) -> int:
        base_row = len(self.row) + 8
        total = 0
        for (family, qualifier), versions in self._cells.items():
            base = base_row + len(family) + len(qualifier)
            for _, value in versions:
                total += base + len(value)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Result(row={self.row!r}, ncols={len(self._cells)})"
