"""Server-side scan filters (a small subset of HBase's filter zoo)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hbase.cell import Result

_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class FilterBase:
    """Decides row by row whether a scan emits the row."""

    def accept(self, result: Result) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class ColumnValueFilter(FilterBase):
    """Keep rows whose newest ``family:qualifier`` value compares true.

    ``missing_accepts`` mirrors HBase's ``filterIfMissing=False`` default:
    rows lacking the column pass the filter unless told otherwise.
    """

    family: bytes
    qualifier: bytes
    op: str
    value: bytes
    missing_accepts: bool = False

    def accept(self, result: Result) -> bool:
        cur = result.value(self.family, self.qualifier)
        if cur is None:
            return self.missing_accepts
        return _OPS[self.op](cur, self.value)


@dataclass
class PrefixFilter(FilterBase):
    """Keep rows whose key starts with ``prefix``."""

    prefix: bytes

    def accept(self, result: Result) -> bool:
        return result.row.startswith(self.prefix)


@dataclass
class RowRangeFilter(FilterBase):
    """Keep rows with ``start <= key < stop`` (either bound optional)."""

    start: bytes | None = None
    stop: bytes | None = None

    def accept(self, result: Result) -> bool:
        if self.start is not None and result.row < self.start:
            return False
        if self.stop is not None and result.row >= self.stop:
            return False
        return True


@dataclass
class AndFilter(FilterBase):
    """Conjunction of sub-filters."""

    filters: tuple[FilterBase, ...]

    def accept(self, result: Result) -> bool:
        return all(f.accept(result) for f in self.filters)
