"""Client-side operation descriptors (the five HBase primitives)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hbase.filters import FilterBase


class Put:
    """Single-row write: one or more cell values (optionally timestamped)."""

    __slots__ = ("row", "cells", "timestamp")

    def __init__(self, row: bytes, timestamp: int | None = None) -> None:
        self.row = row
        self.timestamp = timestamp
        self.cells: list[tuple[bytes, bytes, bytes, int | None]] = []

    def add(
        self,
        family: bytes,
        qualifier: bytes,
        value: bytes,
        timestamp: int | None = None,
    ) -> "Put":
        self.cells.append((family, qualifier, value, timestamp or self.timestamp))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Put(row={self.row!r}, ncells={len(self.cells)})"


class Get:
    """Single-row read, optionally restricted to specific columns."""

    __slots__ = ("row", "columns", "max_versions", "time_range")

    def __init__(
        self,
        row: bytes,
        columns: list[tuple[bytes, bytes]] | None = None,
        max_versions: int = 1,
        time_range: tuple[int, int] | None = None,
    ) -> None:
        self.row = row
        self.columns = columns
        self.max_versions = max_versions
        self.time_range = time_range


class Delete:
    """Single-row delete (whole row, or specific columns)."""

    __slots__ = ("row", "columns")

    def __init__(
        self, row: bytes, columns: list[tuple[bytes, bytes]] | None = None
    ) -> None:
        self.row = row
        self.columns = columns


class Increment:
    """Atomic server-side add on a 64-bit counter column."""

    __slots__ = ("row", "family", "qualifier", "amount")

    def __init__(self, row: bytes, family: bytes, qualifier: bytes, amount: int = 1):
        self.row = row
        self.family = family
        self.qualifier = qualifier
        self.amount = amount


@dataclass
class Scan:
    """Range scan: ``[start_row, stop_row)`` with optional filter/limit."""

    start_row: bytes = b""
    stop_row: bytes | None = None
    filter: "FilterBase | None" = None
    limit: int | None = None
    max_versions: int = 1
    time_range: tuple[int, int] | None = None
    columns: list[tuple[bytes, bytes]] | None = field(default=None)
