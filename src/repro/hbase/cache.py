"""Byte-bounded LRU row cache for a region server.

Point reads (``max_versions=1``, no time-range) against a hot key are
served from here instead of paying the store lookup. The cache is
deliberately simple and fully deterministic:

* **Keying.** Entries are keyed ``(region_name, row, columns)``.
  Region names embed a monotonically increasing region id, so daughters
  minted by a split and regions re-created by crash recovery can never
  alias a stale parent entry.
* **Negative caching.** ``None`` (absent/deleted row) is a cacheable
  value; lookups distinguish "cached None" from "not cached" via a
  sentinel.
* **Eviction.** Strict LRU over an ``OrderedDict``, sized in bytes
  (payload + fixed per-entry overhead). Insertion of an entry larger
  than the whole budget is skipped. Eviction order is a pure function
  of the operation sequence, so reruns at the same seed evict
  identically — ``eviction_log`` can be attached by tests to assert
  that bit-for-bit.
* **Coherence.** Writes invalidate their row; region unhost/crash/
  restart invalidate wholesale (see ``RegionServer``). Flushes and
  compactions never change what a newest-version read returns — and
  only newest-version reads are cached — so they need no hook.

Multi-version / time-ranged reads bypass the cache entirely (they are
the rare path, and their results *can* change across a compaction).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.hbase.cell import Result

_MISS = object()
"""Sentinel distinguishing "not cached" from a cached negative entry."""

CacheKey = tuple[str, bytes, tuple[tuple[bytes, bytes], ...] | None]


class RowCache:
    """Deterministic byte-bounded LRU cache of point-read results."""

    __slots__ = (
        "capacity_bytes",
        "entry_overhead_bytes",
        "size_bytes",
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "eviction_log",
        "_entries",
        "_by_row",
        "_by_region",
    )

    def __init__(self, capacity_bytes: int, entry_overhead_bytes: int = 64) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.entry_overhead_bytes = entry_overhead_bytes
        self.size_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.eviction_log: list[CacheKey] | None = None
        # key -> (Result | None, charged size); LRU order, newest last
        self._entries: OrderedDict[CacheKey, tuple[Result | None, int]] = OrderedDict()
        self._by_row: dict[tuple[str, bytes], set[CacheKey]] = {}
        self._by_region: dict[str, set[CacheKey]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def variant(columns: list[tuple[bytes, bytes]] | None):
        """Hashable projection key for a get's column subset."""
        return tuple(columns) if columns else None

    def lookup(self, region_name: str, row: bytes, variant) -> object:
        """Cached ``Result | None`` for the key, or the module sentinel
        ``_MISS`` when absent (callers compare with :func:`missed`)."""
        key = (region_name, row, variant)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return _MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def insert(
        self, region_name: str, row: bytes, variant, result: Result | None
    ) -> None:
        key = (region_name, row, variant)
        size = self.entry_overhead_bytes + len(row)
        if result is not None:
            size += result.size_bytes
        if size > self.capacity_bytes:
            return  # larger than the whole budget: not cacheable
        if key in self._entries:
            self._drop(key)
        self._entries[key] = (result, size)
        self.size_bytes += size
        self._by_row.setdefault((region_name, row), set()).add(key)
        self._by_region.setdefault(region_name, set()).add(key)
        while self.size_bytes > self.capacity_bytes:
            victim = next(iter(self._entries))
            self._drop(victim)
            self.evictions += 1
            if self.eviction_log is not None:
                self.eviction_log.append(victim)

    def _drop(self, key: CacheKey) -> None:
        _, size = self._entries.pop(key)
        self.size_bytes -= size
        region_name, row, _ = key
        row_keys = self._by_row.get((region_name, row))
        if row_keys is not None:
            row_keys.discard(key)
            if not row_keys:
                del self._by_row[(region_name, row)]
        region_keys = self._by_region.get(region_name)
        if region_keys is not None:
            region_keys.discard(key)
            if not region_keys:
                del self._by_region[region_name]

    def invalidate_row(self, region_name: str, row: bytes) -> None:
        """Drop every cached variant of one row (called on mutation)."""
        keys = self._by_row.get((region_name, row))
        if keys:
            for key in list(keys):
                self._drop(key)
                self.invalidations += 1

    def invalidate_region(self, region_name: str) -> None:
        """Drop every entry of one region (unhost / move / recovery)."""
        keys = self._by_region.get(region_name)
        if keys:
            for key in list(keys):
                self._drop(key)
                self.invalidations += 1

    def clear(self) -> None:
        """Drop everything (server crash/restart: cache memory is gone)."""
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._by_row.clear()
        self._by_region.clear()
        self.size_bytes = 0

    def stats(self) -> dict[str, int | float]:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "size_bytes": self.size_bytes,
            "capacity_bytes": self.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": (self.hits / lookups) if lookups else 0.0,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


def missed(value: object) -> bool:
    """True when :meth:`RowCache.lookup` found nothing cached."""
    return value is _MISS
