"""Query planner: SQL AST -> physical plan.

Access-path selection mirrors Phoenix:

* equality predicates that cover a leading prefix of a table/index key
  become point gets or key-prefix scans;
* covered indexes are preferred; non-covered index access adds a
  per-row base-table lookup;
* joins run as **index nested loops** whenever the inner side has a
  usable key/index prefix on the join attributes, and as **broadcast
  hash joins** otherwise;
* leftover predicates (including theta-join residues like Q11's
  ``ol2.ol_i_id <> ol.ol_i_id``) are applied as post-join filters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Union

from repro.config import DEFAULT_COST_MODEL
from repro.errors import PlanError, SqlError
from repro.phoenix.stats import (
    DEFAULT_ROW_BYTES,
    FILTER_SELECTIVITY,
    HASH_CPU_MS_PER_ROW,
    AccessCoster,
    StatisticsProvider,
)
from repro.phoenix.catalog import Catalog, CatalogEntry, CatalogNamespace, VIEW, VIEW_INDEX
from repro.sql.analyzer import (
    AnalyzedSelect,
    FilterCondition,
    JoinCondition,
    analyze_select,
)
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    Expr,
    FuncCall,
    Literal,
    Param,
    Select,
    Star,
    TableRef,
)
from repro.phoenix.plans import (
    AccessSpec,
    ColumnPredicate,
    FilterNode,
    DistinctNode,
    GroupByNode,
    HashJoinNode,
    LimitNode,
    NestedLoopJoinNode,
    PlanNode,
    ScanNode,
    SortNode,
    SubqueryNode,
    ValuePredicate,
)

Source = Union[tuple[str, str], str]
PrefixSource = Union[tuple[str, str], Expr]


@dataclass
class PlannedQuery:
    """Root plan plus the projection spec used to shape output rows."""

    root: PlanNode
    output: tuple[tuple[str, Source], ...]
    """(output column name, row source) pairs, or expanded at runtime."""

    select: Select

    def explain(self) -> str:
        return self.root.describe()


ALL_ATTRS = None  # sentinel: binding needs every attribute (SELECT *)


class Planner:
    def __init__(self, catalog: Catalog, dirty_check_views: bool = False) -> None:
        self.catalog = catalog
        self.namespace = CatalogNamespace(catalog)
        self.dirty_check_views = dirty_check_views

    # -- public ---------------------------------------------------------------------
    def plan_select(self, select: Select) -> PlannedQuery:
        analyzed = analyze_select(select, self.namespace)  # type: ignore[arg-type]

        # derived tables become materialized sub-plans
        derived: dict[str, SubqueryNode] = {}
        derived_attrs: dict[str, tuple[str, ...]] = {}
        for item in select.from_items:
            if isinstance(item, DerivedTable):
                node, names = self._plan_derived(item)
                derived[item.alias] = node
                derived_attrs[item.alias] = names

        needed = self._needed_attrs(select, analyzed, derived_attrs)
        root = self._plan_joins(select, analyzed, derived, derived_attrs, needed)

        has_aggregates = any(
            isinstance(p, FuncCall) for p in select.projections
        )
        output = self._output_spec(select, analyzed, derived_attrs)
        if select.group_by or has_aggregates:
            root = self._add_group_by(root, select, analyzed)
        if select.distinct:
            root = DistinctNode(root, keys=tuple(src for _, src in output))
        if select.order_by:
            keys = tuple(
                (self._source_for(o.expr, analyzed), o.descending)
                for o in select.order_by
            )
            root = SortNode(root, keys)
        if select.limit is not None:
            root = LimitNode(root, select.limit)

        return PlannedQuery(root=root, output=output, select=select)

    # -- derived tables ----------------------------------------------------------------
    def _plan_derived(self, item: DerivedTable) -> tuple[SubqueryNode, tuple[str, ...]]:
        sub = self.plan_select(item.select)
        names = tuple(name for name, _ in sub.output)
        sources = tuple(source for _, source in sub.output)
        if not names:
            raise PlanError(
                f"derived table {item.alias!r} must have explicit projections"
            )
        node = SubqueryNode(
            subplan=sub.root,
            alias=item.alias,
            output_names=names,
            source_keys=sources,
        )
        return node, names

    # -- needed attributes ----------------------------------------------------------------
    def _needed_attrs(
        self,
        select: Select,
        analyzed: AnalyzedSelect,
        derived_attrs: dict[str, tuple[str, ...]],
    ) -> dict[str, set[str] | None]:
        needed: dict[str, set[str] | None] = {b: set() for b in analyzed.bindings}

        def note(binding: str, attr: str) -> None:
            s = needed.get(binding)
            if s is not None:
                s.add(attr)

        def note_col(col: ColumnRef) -> None:
            b, _ = self._resolve(col, analyzed)
            note(b, col.name)

        for p in select.projections:
            if isinstance(p, Star):
                if p.qualifier is None:
                    for b in needed:
                        needed[b] = ALL_ATTRS
                else:
                    needed[p.qualifier] = ALL_ATTRS
            elif isinstance(p, ColumnRef):
                note_col(p)
            elif isinstance(p, FuncCall):
                for a in p.args:
                    if isinstance(a, ColumnRef):
                        note_col(a)
        for j in analyzed.joins:
            note(j.left_binding, j.left_attr)
            note(j.right_binding, j.right_attr)
        for f in analyzed.filters:
            note(f.binding, f.attr)
        for g in select.group_by:
            note_col(g)
        for o in select.order_by:
            if isinstance(o.expr, ColumnRef):
                note_col(o.expr)
            elif isinstance(o.expr, FuncCall):
                for a in o.expr.args:
                    if isinstance(a, ColumnRef):
                        note_col(a)
        return needed

    def _resolve(
        self, col: ColumnRef, analyzed: AnalyzedSelect
    ) -> tuple[str, str | None]:
        if col.qualifier is not None:
            if col.qualifier not in analyzed.bindings:
                raise SqlError(f"unknown alias {col.qualifier!r}")
            return col.qualifier, analyzed.bindings[col.qualifier]
        owners = []
        for b, rel in analyzed.bindings.items():
            if rel is not None and self.namespace.has_relation(rel):
                if self.namespace.relation(rel).has_attribute(col.name):
                    owners.append((b, rel))
        if len(owners) == 1:
            return owners[0]
        if not owners:
            # may be an aggregate alias handled by bare-name lookup
            return ("", None)
        raise SqlError(f"ambiguous column {col.name!r}")

    def _source_for(self, expr: Expr, analyzed: AnalyzedSelect) -> Source:
        if isinstance(expr, ColumnRef):
            b, _ = self._resolve(expr, analyzed)
            if b == "":
                return expr.name  # bare-name / aggregate-alias lookup
            return (b, expr.name)
        if isinstance(expr, FuncCall):
            return str(expr)
        raise PlanError(f"unsupported expression in this clause: {expr}")

    # -- join planning ----------------------------------------------------------------
    def _entry_for_binding(
        self, binding: str, analyzed: AnalyzedSelect
    ) -> CatalogEntry | None:
        rel = analyzed.bindings[binding]
        if rel is None:
            return None
        return self.catalog.resolve_from_name(rel)

    def _plan_joins(
        self,
        select: Select,
        analyzed: AnalyzedSelect,
        derived: dict[str, SubqueryNode],
        derived_attrs: dict[str, tuple[str, ...]],
        needed: dict[str, set[str] | None],
    ) -> PlanNode:
        bindings = list(analyzed.bindings)
        eq_filters: dict[str, dict[str, Expr]] = {b: {} for b in bindings}
        other_filters: dict[str, list[FilterCondition]] = {b: [] for b in bindings}
        for f in analyzed.filters:
            if f.op == "=" and isinstance(f.value, (Literal, Param)):
                eq_filters[f.binding][f.attr] = f.value
            else:
                other_filters[f.binding].append(f)

        remaining = self._binding_order(bindings, analyzed, eq_filters, needed)
        first = remaining.pop(0)
        joined: list[str] = [first]
        plan = self._leaf_plan(
            first, analyzed, derived, eq_filters, other_filters, needed
        )
        consumed: set[int] = set()
        pending_joins = list(enumerate(analyzed.joins))

        while remaining:
            next_b = self._choose_next(
                remaining, joined, plan, analyzed, eq_filters, needed, pending_joins
            )
            remaining.remove(next_b)

            plan, newly_consumed = self._attach_binding(
                plan,
                next_b,
                joined,
                analyzed,
                derived,
                eq_filters,
                other_filters,
                needed,
                [(i, j) for i, j in pending_joins if i not in consumed],
            )
            consumed.update(newly_consumed)
            joined.append(next_b)

        # residual join predicates (theta residues, unused equalities)
        residual_preds = []
        for i, j in pending_joins:
            if i in consumed:
                continue
            residual_preds.append(
                ColumnPredicate(
                    left=(j.left_binding, j.left_attr),
                    op=j.op,
                    right=(j.right_binding, j.right_attr),
                )
            )
        # filters on derived-table bindings
        for b, conds in other_filters.items():
            if analyzed.bindings[b] is None:
                for f in conds:
                    residual_preds.append(
                        ValuePredicate(b, f.attr, f.op, f.value)  # type: ignore[arg-type]
                    )
        for b, eqs in eq_filters.items():
            if analyzed.bindings[b] is None:
                for attr, expr in eqs.items():
                    residual_preds.append(ValuePredicate(b, attr, "=", expr))
        if residual_preds:
            plan = FilterNode(plan, tuple(residual_preds))
        return plan

    @staticmethod
    def _join_connects(j: JoinCondition, b: str, joined: list[str]) -> bool:
        if j.left_binding == b and j.right_binding in joined:
            return True
        if j.right_binding == b and j.left_binding in joined:
            return True
        return False

    # -- join-order hooks (overridden by CostBasedPlanner) ---------------------------
    def _binding_order(
        self,
        bindings: list[str],
        analyzed: AnalyzedSelect,
        eq_filters: dict[str, dict[str, Expr]],
        needed: dict[str, set[str] | None],
    ) -> list[str]:
        """Rule-based start order: strongest access path first, then
        smallest estimated row count; derived tables last."""

        def start_score(b: str) -> tuple:
            entry = self._entry_for_binding(b, analyzed)
            if entry is None:
                return (2, 0)
            prefix, _, _ = self._best_access(
                entry, set(eq_filters[b]), needed[b]
            )
            est = self.catalog.estimated_rows(entry.name)
            return (0 if prefix else 1, est)

        return sorted(bindings, key=start_score)

    def _choose_next(
        self,
        remaining: list[str],
        joined: list[str],
        plan: PlanNode,
        analyzed: AnalyzedSelect,
        eq_filters: dict[str, dict[str, Expr]],
        needed: dict[str, set[str] | None],
        pending_joins: list[tuple[int, JoinCondition]],
    ) -> str:
        """Rule-based: first remaining binding connected to the joined
        set by an equi-join, then by any join, else cross product."""
        for b in remaining:
            if any(
                self._join_connects(j, b, joined)
                for _, j in pending_joins
                if j.is_equi
            ):
                return b
        for b in remaining:
            if any(self._join_connects(j, b, joined) for _, j in pending_joins):
                return b
        return remaining[0]  # cross product

    def _leaf_plan(
        self,
        binding: str,
        analyzed: AnalyzedSelect,
        derived: dict[str, SubqueryNode],
        eq_filters: dict[str, dict[str, Expr]],
        other_filters: dict[str, list[FilterCondition]],
        needed: dict[str, set[str] | None],
    ) -> PlanNode:
        if analyzed.bindings[binding] is None:
            return derived[binding]
        entry = self._entry_for_binding(binding, analyzed)
        assert entry is not None
        prefix_attrs, access_entry, lookup = self._best_access(
            entry, set(eq_filters[binding]), needed[binding]
        )
        residuals = self._residual_predicates(
            binding, access_entry, prefix_attrs, eq_filters, other_filters
        )
        access = AccessSpec(
            entry=access_entry,
            binding=binding,
            prefix_attrs=prefix_attrs,
            residuals=residuals,
            lookup_entry=lookup,
        )
        prefix_exprs = tuple(eq_filters[binding][a] for a in prefix_attrs)
        return ScanNode(
            access=access,
            prefix_exprs=prefix_exprs,
            check_dirty=self._check_dirty(access_entry),
        )

    def _check_dirty(self, entry: CatalogEntry) -> bool:
        return self.dirty_check_views and entry.kind in (VIEW, VIEW_INDEX)

    def _residual_predicates(
        self,
        binding: str,
        access_entry: CatalogEntry,
        prefix_attrs: tuple[str, ...],
        eq_filters: dict[str, dict[str, Expr]],
        other_filters: dict[str, list[FilterCondition]],
    ) -> tuple[ValuePredicate, ...]:
        preds: list[ValuePredicate] = []
        for attr, expr in eq_filters[binding].items():
            if attr not in prefix_attrs:
                preds.append(ValuePredicate(binding, attr, "=", expr))
        for f in other_filters[binding]:
            if isinstance(f.value, ColumnRef):
                # same-binding column/column condition — rare; evaluate via
                # a column predicate after the scan instead
                continue
            preds.append(ValuePredicate(binding, f.attr, f.op, f.value))  # type: ignore[arg-type]
        return tuple(preds)

    def _best_access(
        self,
        entry: CatalogEntry,
        available: set[str],
        needed: set[str] | None,
    ) -> tuple[tuple[str, ...], CatalogEntry, CatalogEntry | None]:
        """Pick the physical entry (base or index) with the longest usable
        key prefix. Returns (prefix_attrs, chosen_entry, lookup_entry)."""
        candidates: list[tuple[tuple[str, ...], CatalogEntry, CatalogEntry | None]] = []
        for cand in [entry, *self.catalog.indexes_for(entry)]:
            prefix: list[str] = []
            for k in cand.key_attrs:
                if k in available:
                    prefix.append(k)
                else:
                    break
            covered = (
                needed is None and set(cand.attrs) >= set(entry.attrs)
            ) or (needed is not None and needed <= set(cand.attrs))
            lookup = None if (cand is entry or covered) else entry
            candidates.append((tuple(prefix), cand, lookup))

        def rank(c: tuple[tuple[str, ...], CatalogEntry, CatalogEntry | None]):
            prefix, cand, lookup = c
            return (
                len(prefix),            # longest prefix wins
                cand is entry,          # prefer base table over index on ties
                lookup is None,         # prefer covered access
            )

        best = max(candidates, key=rank)
        if not best[0]:
            return ((), entry, None)  # full scan of the base entry
        return best

    def _attach_binding(
        self,
        plan: PlanNode,
        binding: str,
        joined: list[str],
        analyzed: AnalyzedSelect,
        derived: dict[str, SubqueryNode],
        eq_filters: dict[str, dict[str, Expr]],
        other_filters: dict[str, list[FilterCondition]],
        needed: dict[str, set[str] | None],
        pending: list[tuple[int, JoinCondition]],
    ) -> tuple[PlanNode, set[int]]:
        """Join ``binding`` into ``plan``; returns (plan, consumed join ids)."""
        # equi-join conditions connecting this binding to the joined set
        conds: list[tuple[int, str, tuple[str, str]]] = []  # (id, inner attr, outer key)
        for i, j in pending:
            if not j.is_equi or not self._join_connects(j, binding, joined):
                continue
            if j.left_binding == binding:
                conds.append((i, j.left_attr, (j.right_binding, j.right_attr)))
            else:
                conds.append((i, j.right_attr, (j.left_binding, j.left_attr)))

        entry = self._entry_for_binding(binding, analyzed)
        if entry is None:
            # derived table: hash join (or cartesian when no equi conds)
            build = derived[binding]
            probe_keys = tuple(outer for _, _, outer in conds)
            build_keys = tuple((binding, attr) for _, attr, _ in conds)
            consumed = {i for i, _, _ in conds}
            return (
                HashJoinNode(
                    probe=plan,
                    build=build,
                    probe_keys=probe_keys,
                    build_keys=build_keys,
                ),
                consumed,
            )

        available = set(eq_filters[binding]) | {attr for _, attr, _ in conds}
        prefix_attrs, access_entry, lookup = self._best_access(
            entry, available, needed[binding]
        )
        if prefix_attrs:
            # index nested-loop join
            residuals = self._residual_predicates(
                binding, access_entry, prefix_attrs, eq_filters, other_filters
            )
            access = AccessSpec(
                entry=access_entry,
                binding=binding,
                prefix_attrs=prefix_attrs,
                residuals=residuals,
                lookup_entry=lookup,
            )
            outer_keys: list[PrefixSource] = []
            consumed: set[int] = set()
            for attr in prefix_attrs:
                join_source = next(
                    ((i, outer) for i, a, outer in conds if a == attr), None
                )
                if join_source is not None:
                    consumed.add(join_source[0])
                    outer_keys.append(join_source[1])
                else:
                    outer_keys.append(eq_filters[binding][attr])
            # equi conds not in the prefix remain as post-join predicates —
            # both sides are present in the merged row, handled by caller.
            node = NestedLoopJoinNode(
                outer=plan,
                inner=access,
                outer_keys=tuple(outer_keys),  # type: ignore[arg-type]
                check_dirty=self._check_dirty(access_entry),
            )
            return node, consumed

        # no index path: broadcast hash join on the equi conditions
        build = self._leaf_plan(
            binding, analyzed, derived, eq_filters, other_filters, needed
        )
        probe_keys = tuple(outer for _, _, outer in conds)
        build_keys = tuple((binding, attr) for _, attr, _ in conds)
        consumed = {i for i, _, _ in conds}
        return (
            HashJoinNode(
                probe=plan, build=build, probe_keys=probe_keys, build_keys=build_keys
            ),
            consumed,
        )

    # -- aggregation ------------------------------------------------------------------
    def _add_group_by(
        self, root: PlanNode, select: Select, analyzed: AnalyzedSelect
    ) -> PlanNode:
        group_keys = tuple(self._source_for(g, analyzed) for g in select.group_by)
        aggregates: list[tuple[str, str, Source | None]] = []
        for p in select.projections:
            if isinstance(p, FuncCall):
                source: Source | None
                if p.star:
                    source = None
                else:
                    if len(p.args) != 1 or not isinstance(p.args[0], ColumnRef):
                        raise PlanError(f"unsupported aggregate argument: {p}")
                    source = self._source_for(p.args[0], analyzed)
                aggregates.append((str(p), p.name, source))
        for o in select.order_by:
            if isinstance(o.expr, FuncCall) and not any(
                a[0] == str(o.expr) for a in aggregates
            ):
                src = (
                    None
                    if o.expr.star
                    else self._source_for(o.expr.args[0], analyzed)
                )
                aggregates.append((str(o.expr), o.expr.name, src))
        return GroupByNode(
            child=root, group_keys=group_keys, aggregates=tuple(aggregates)
        )

    # -- output -----------------------------------------------------------------------
    def _output_spec(
        self,
        select: Select,
        analyzed: AnalyzedSelect,
        derived_attrs: dict[str, tuple[str, ...]],
    ) -> tuple[tuple[str, Source], ...]:
        out: list[tuple[str, Source]] = []
        for p in select.projections:
            if isinstance(p, Star):
                targets = (
                    [p.qualifier] if p.qualifier is not None else list(analyzed.bindings)
                )
                for b in targets:
                    rel = analyzed.bindings[b]
                    if rel is None:
                        attrs: tuple[str, ...] = derived_attrs[b]
                    else:
                        attrs = self.catalog.resolve_from_name(rel).attrs
                    for a in attrs:
                        out.append((a, (b, a)))
            elif isinstance(p, ColumnRef):
                src = self._source_for(p, analyzed)
                out.append((p.name, src))
            elif isinstance(p, FuncCall):
                out.append((str(p), str(p)))
            else:
                raise PlanError(f"unsupported projection {p}")
        # de-duplicate output names (self-joins project the same attr twice)
        seen: dict[str, int] = {}
        final: list[tuple[str, Source]] = []
        for name, src in out:
            if name in seen:
                seen[name] += 1
                qualified = (
                    f"{src[0]}.{name}" if isinstance(src, tuple) else f"{name}_{seen[name]}"
                )
                final.append((qualified, src))
            else:
                seen[name] = 0
                final.append((name, src))
        return tuple(final)


class CostBasedPlanner(Planner):
    """Cost-based access-path and join-order selection.

    Replaces the rule-based heuristics (longest key prefix wins; first
    connected binding joins next) with estimates priced from region
    statistics via :mod:`repro.phoenix.stats`:

    * ``_best_access`` ranks base-vs-index (and view-vs-view-index)
      candidates by estimated access cost instead of prefix length, so
      a covered index wins exactly when it is cheaper — including
      narrow-index full scans the prefix rule can never pick;
    * the starting binding is the one with the cheapest total access,
      and each subsequent binding is the connected candidate with the
      lowest estimated incremental join cost (index nested loop when a
      prefix exists, broadcast hash join otherwise);
    * every plan node is annotated with ``(est rows, est cost)``, which
      ``explain()`` renders — the costed plan tree.

    Never used by the anchored experiments: connections only construct
    it when ``cost_based=True`` is requested explicitly.
    """

    def __init__(
        self,
        catalog: Catalog,
        dirty_check_views: bool = False,
        cluster: Any = None,
        cost: Any = None,
    ) -> None:
        super().__init__(catalog, dirty_check_views=dirty_check_views)
        self.provider = StatisticsProvider(catalog, cluster)
        self._cost_model = cost if cost is not None else DEFAULT_COST_MODEL

    def _coster(self) -> AccessCoster:
        return AccessCoster(self._cost_model, self.provider.servers)

    # -- public ---------------------------------------------------------------------
    def plan_select(self, select: Select) -> PlannedQuery:
        planned = super().plan_select(select)
        self.estimate(planned.root)  # annotate the tree for explain()
        return planned

    # -- access-path costing ----------------------------------------------------------
    def _access_estimate(
        self,
        prefix: tuple[str, ...],
        cand: CatalogEntry,
        lookup: CatalogEntry | None,
    ) -> tuple[float, float]:
        coster = self._coster()
        lookup_stats = (
            self.provider.stats_for(lookup) if lookup is not None else None
        )
        return coster.access_ms(
            self.provider.stats_for(cand),
            len(prefix),
            len(cand.key_attrs),
            lookup_stats,
        )

    def _best_access(
        self,
        entry: CatalogEntry,
        available: set[str],
        needed: set[str] | None,
    ) -> tuple[tuple[str, ...], CatalogEntry, CatalogEntry | None]:
        candidates: list[tuple[tuple[str, ...], CatalogEntry, CatalogEntry | None]] = []
        for cand in [entry, *self.catalog.indexes_for(entry)]:
            prefix: list[str] = []
            for k in cand.key_attrs:
                if k in available:
                    prefix.append(k)
                else:
                    break
            covered = (
                needed is None and set(cand.attrs) >= set(entry.attrs)
            ) or (needed is not None and needed <= set(cand.attrs))
            lookup = None if (cand is entry or covered) else entry
            candidates.append((tuple(prefix), cand, lookup))

        def rank(c: tuple[tuple[str, ...], CatalogEntry, CatalogEntry | None]):
            prefix, cand, lookup = c
            _, ms = self._access_estimate(prefix, cand, lookup)
            # cheapest first; deterministic tie-break prefers the base
            # entry, covered access, then name
            return (ms, 0 if cand is entry else 1, 0 if lookup is None else 1, cand.name)

        return min(candidates, key=rank)

    # -- join-order costing ------------------------------------------------------------
    def _binding_order(
        self,
        bindings: list[str],
        analyzed: AnalyzedSelect,
        eq_filters: dict[str, dict[str, Expr]],
        needed: dict[str, set[str] | None],
    ) -> list[str]:
        def start_cost(item: tuple[int, str]) -> tuple:
            index, b = item
            entry = self._entry_for_binding(b, analyzed)
            if entry is None:
                # derived tables join in last (they always hash-join)
                return (math.inf, index)
            prefix, cand, lookup = self._best_access(
                entry, set(eq_filters[b]), needed[b]
            )
            _, ms = self._access_estimate(prefix, cand, lookup)
            return (ms, index)

        ordered = sorted(enumerate(bindings), key=start_cost)
        return [b for _, b in ordered]

    def _attach_estimate(
        self,
        binding: str,
        joined: list[str],
        plan_rows: float,
        analyzed: AnalyzedSelect,
        eq_filters: dict[str, dict[str, Expr]],
        needed: dict[str, set[str] | None],
        pending_joins: list[tuple[int, JoinCondition]],
    ) -> tuple[float, float]:
        """Estimated ``(output rows, incremental cost)`` of joining
        ``binding`` into a plan currently producing ``plan_rows``."""
        coster = self._coster()
        conds = [
            j for _, j in pending_joins
            if j.is_equi and self._join_connects(j, binding, joined)
        ]
        entry = self._entry_for_binding(binding, analyzed)
        if entry is None:
            # derived table: hash join against an unknown-size input
            build_rows = 1000.0
            rows = coster.equi_join_rows(plan_rows, build_rows, len(conds))
            return rows, coster.hash_join_ms(plan_rows, build_rows, DEFAULT_ROW_BYTES)
        join_attrs = {
            (j.left_attr if j.left_binding == binding else j.right_attr)
            for j in conds
        }
        available = set(eq_filters[binding]) | join_attrs
        prefix, cand, lookup = self._best_access(entry, available, needed[binding])
        per_probe_rows, per_probe_ms = self._access_estimate(prefix, cand, lookup)
        if prefix:
            # index nested loop: one probe per outer row
            return (
                plan_rows * per_probe_rows,
                coster.nl_join_ms(plan_rows, per_probe_ms),
            )
        build_rows, build_ms = self._access_estimate((), cand, lookup)
        rows = coster.equi_join_rows(plan_rows, build_rows, len(conds))
        stats = self.provider.stats_for(cand)
        return rows, build_ms + coster.hash_join_ms(
            plan_rows, build_rows, stats.avg_row_bytes
        )

    def _choose_next(
        self,
        remaining: list[str],
        joined: list[str],
        plan: PlanNode,
        analyzed: AnalyzedSelect,
        eq_filters: dict[str, dict[str, Expr]],
        needed: dict[str, set[str] | None],
        pending_joins: list[tuple[int, JoinCondition]],
    ) -> str:
        plan_rows, _ = self.estimate(plan)
        connected = [
            b for b in remaining
            if any(self._join_connects(j, b, joined) for _, j in pending_joins)
        ]
        candidates = connected or remaining  # cartesian fallback

        def attach_cost(item: tuple[int, str]) -> tuple:
            index, b = item
            _, ms = self._attach_estimate(
                b, joined, plan_rows, analyzed, eq_filters, needed, pending_joins
            )
            return (ms, index)

        pool = [(i, b) for i, b in enumerate(remaining) if b in candidates]
        return min(pool, key=attach_cost)[1]

    # -- plan-tree estimation ----------------------------------------------------------
    def estimate(self, node: PlanNode) -> tuple[float, float]:
        """Bottom-up ``(rows, cost_ms)`` estimate; annotates every node
        (rendered by ``describe``/``explain``)."""
        coster = self._coster()
        if isinstance(node, ScanNode):
            rows, ms = self._access_estimate(
                node.access.prefix_attrs, node.access.entry, node.access.lookup_entry
            )
            rows *= FILTER_SELECTIVITY ** len(node.access.residuals)
        elif isinstance(node, SubqueryNode):
            rows, ms = self.estimate(node.subplan)
        elif isinstance(node, NestedLoopJoinNode):
            outer_rows, outer_ms = self.estimate(node.outer)
            per_probe_rows, per_probe_ms = self._access_estimate(
                node.inner.prefix_attrs, node.inner.entry, node.inner.lookup_entry
            )
            rows = outer_rows * per_probe_rows
            ms = outer_ms + coster.nl_join_ms(outer_rows, per_probe_ms)
        elif isinstance(node, HashJoinNode):
            probe_rows, probe_ms = self.estimate(node.probe)
            build_rows, build_ms = self.estimate(node.build)
            rows = coster.equi_join_rows(probe_rows, build_rows, len(node.probe_keys))
            ms = probe_ms + build_ms + coster.hash_join_ms(
                probe_rows, build_rows, DEFAULT_ROW_BYTES
            )
        elif isinstance(node, FilterNode):
            rows, ms = self.estimate(node.child)
            rows *= FILTER_SELECTIVITY ** len(node.predicates)
        elif isinstance(node, SortNode):
            rows, ms = self.estimate(node.child)
            ms += rows * HASH_CPU_MS_PER_ROW
        elif isinstance(node, GroupByNode):
            in_rows, ms = self.estimate(node.child)
            ms += in_rows * HASH_CPU_MS_PER_ROW
            rows = in_rows ** 0.5 if node.group_keys else 1.0
        elif isinstance(node, LimitNode):
            rows, ms = self.estimate(node.child)
            rows = min(rows, float(node.limit))
        elif isinstance(node, DistinctNode):
            rows, ms = self.estimate(node.child)
            ms += rows * HASH_CPU_MS_PER_ROW
        else:  # MaterializedNode and anything future: neutral estimate
            children = node.children()
            rows, ms = 0.0, 0.0
            for child in children:
                r, m = self.estimate(child)
                rows += r
                ms += m
        node._est = (rows, ms)
        return rows, ms
