"""Physical plan operators (iterator model).

Rows flowing between operators are ``dict[(binding, attr)] -> value``:
keying by FROM-binding keeps self-joins (``Item as I, Item as J``)
unambiguous. Every operator charges virtual time through the HBase
client it drives; plan shape therefore *is* the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import DirtyReadRestart, PlanError
from repro.hbase.bytes_util import prefix_stop
from repro.hbase.filters import AndFilter, ColumnValueFilter, FilterBase
from repro.hbase.ops import Get, Scan
from repro.phoenix.catalog import CF, DIRTY_QUALIFIER, Catalog, CatalogEntry
from repro.relational.datatypes import encode_value
from repro.sql.ast import Expr, Literal, Param

Row = dict[tuple[str, str], Any]

DIRTY_MARK = b"\x01"

_PY_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(op: str, a: Any, b: Any) -> bool:
    """SQL-ish comparison: anything against NULL is false."""
    if a is None or b is None:
        return False
    return _PY_OPS[op](a, b)


class ExecutionContext:
    """Carries the connection, bound parameters and restart bookkeeping."""

    def __init__(self, conn: "PhoenixConnection", params: tuple[Any, ...]) -> None:
        self.conn = conn
        self.params = params

    def eval(self, expr: Expr) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Param):
            try:
                return self.params[expr.index]
            except IndexError:
                raise PlanError(
                    f"statement has parameter ?{expr.index} but only "
                    f"{len(self.params)} values were bound"
                ) from None
        raise PlanError(f"cannot evaluate expression {expr!r} at runtime")


from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.phoenix.executor import PhoenixConnection


# ---------------------------------------------------------------- predicates
@dataclass(frozen=True)
class ValuePredicate:
    """``(binding, attr) op constant-expression`` — residual filter."""

    binding: str
    attr: str
    op: str
    value_expr: Expr

    def test(self, row: Row, ctx: ExecutionContext) -> bool:
        return compare(self.op, row.get((self.binding, self.attr)), ctx.eval(self.value_expr))


@dataclass(frozen=True)
class ColumnPredicate:
    """``(binding, attr) op (binding2, attr2)`` — e.g. theta-join residue."""

    left: tuple[str, str]
    op: str
    right: tuple[str, str]

    def test(self, row: Row, ctx: ExecutionContext) -> bool:
        return compare(self.op, row.get(self.left), row.get(self.right))


Predicate = ValuePredicate | ColumnPredicate


# ---------------------------------------------------------------- base access
@dataclass
class AccessSpec:
    """How to reach rows of one catalog entry for one binding.

    ``prefix_attrs`` name the leading key attributes whose values are
    known (from filters or, in a nested loop, from the outer row);
    ``residuals`` are pushed server-side as column-value filters when
    they touch non-key attributes.
    """

    entry: CatalogEntry
    binding: str
    prefix_attrs: tuple[str, ...] = ()
    residuals: tuple[ValuePredicate, ...] = ()
    lookup_entry: CatalogEntry | None = None
    """Non-covered index access: Get this base entry per matched row."""

    def is_point(self) -> bool:
        return len(self.prefix_attrs) == len(self.entry.key_attrs)

    def _server_filter(self, ctx: ExecutionContext) -> FilterBase | None:
        filters: list[FilterBase] = []
        for pred in self.residuals:
            if pred.attr in self.entry.key_attrs:
                continue  # applied client-side after decode
            encoded = encode_value(
                self.entry.dtypes[pred.attr], ctx.eval(pred.value_expr)
            )
            filters.append(
                ColumnValueFilter(CF, pred.attr.encode(), pred.op, encoded)
            )
        if not filters:
            return None
        return filters[0] if len(filters) == 1 else AndFilter(tuple(filters))

    def fetch(
        self,
        ctx: ExecutionContext,
        prefix_values: list[Any],
        check_dirty: bool,
    ) -> Iterator[Row]:
        """Stream decoded rows for the given prefix values.

        The entry's full column set is pushed down into the Get/Scan, so
        the storage engine only merges the columns ``result_to_row``
        will decode (plus the marker/dirty bookkeeping qualifiers)."""
        table = ctx.conn.client.table(self.entry.name)
        if None in prefix_values:
            return  # NULL never equi-matches anything
        projection = self.entry.projection()
        if self.is_point():
            key = self.entry.encode_key_values(prefix_values)
            result = table.get(Get(key, columns=projection))
            results = [] if result is None else [result]
        else:
            if prefix_values:
                prefix = self.entry.encode_key_prefix(prefix_values)
                scan = Scan(start_row=prefix, stop_row=prefix_stop(prefix))
            else:
                scan = Scan()
            scan.columns = projection
            scan.filter = self._server_filter(ctx)
            results = table.scan(scan)
        lookup_projection = (
            self.lookup_entry.projection() if self.lookup_entry is not None else None
        )
        for result in results:
            if check_dirty and result.value(CF, DIRTY_QUALIFIER) == DIRTY_MARK:
                raise DirtyReadRestart(self.entry.name)
            if ctx.conn.mvcc_version_check:
                ctx.conn.charge.version_checks(len(result.columns()))
            raw = self.entry.result_to_row(result)
            if self.lookup_entry is not None:
                base_table = ctx.conn.client.table(self.lookup_entry.name)
                base_result = base_table.get(
                    Get(self.lookup_entry.encode_key(raw), columns=lookup_projection)
                )
                if base_result is None:
                    continue
                raw = self.lookup_entry.result_to_row(base_result)
            row: Row = {(self.binding, a): v for a, v in raw.items()}
            ok = True
            for pred in self.residuals:
                if pred.attr in self.entry.key_attrs or self.is_point():
                    if not pred.test(row, ctx):
                        ok = False
                        break
            if ok:
                yield row


# ---------------------------------------------------------------- plan nodes
class PlanNode:
    """Base class; subclasses implement :meth:`execute`."""

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        est = getattr(self, "_est", None)
        suffix = (
            f"  -- est rows={est[0]:.0f} cost={est[1]:.3f}ms"
            if est is not None
            else ""
        )
        lines = [("  " * indent) + self._label() + suffix]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Leaf access: point get, prefix scan, index scan or full scan."""

    access: AccessSpec
    prefix_exprs: tuple[Expr, ...] = ()
    check_dirty: bool = False

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        values = [ctx.eval(e) for e in self.prefix_exprs]
        yield from self.access.fetch(ctx, values, self.check_dirty)

    def _label(self) -> str:
        entry = self.access.entry
        kind = "POINT GET" if self.access.is_point() else (
            "PREFIX SCAN" if self.access.prefix_attrs else "FULL SCAN"
        )
        return (
            f"{kind} {entry.name} [{entry.kind}] as {self.access.binding} "
            f"prefix={self.access.prefix_attrs}"
        )


@dataclass
class MaterializedNode(PlanNode):
    """In-memory rows (derived tables after sub-plan execution)."""

    rows: list[Row] = field(default_factory=list)
    label: str = "materialized"

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        yield from self.rows

    def _label(self) -> str:
        return f"MATERIALIZED {self.label} ({len(self.rows)} rows)"


@dataclass
class SubqueryNode(PlanNode):
    """Plans and materializes a derived table at execution time."""

    subplan: PlanNode
    alias: str
    output_names: tuple[str, ...]
    source_keys: tuple[tuple[str, str] | str, ...]
    """For each output name, which sub-row key (or aggregate name) feeds it."""

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        for sub_row in self.subplan.execute(ctx):
            row: Row = {}
            for out_name, source in zip(self.output_names, self.source_keys):
                row[(self.alias, out_name)] = _lookup(sub_row, source)
            yield row

    def children(self) -> tuple[PlanNode, ...]:
        return (self.subplan,)

    def _label(self) -> str:
        return f"DERIVED TABLE as {self.alias} -> {self.output_names}"


def _lookup(row: Row, source: tuple[str, str] | str) -> Any:
    if isinstance(source, tuple):
        return row.get(source)
    # aggregate or unique-attr lookup by bare name
    matches = [v for (b, a), v in row.items() if a == source]
    return matches[0] if matches else None


@dataclass
class NestedLoopJoinNode(PlanNode):
    """Index nested-loop join: one inner access per outer row.

    This is the RPC-per-probe join whose cost the paper's
    micro-benchmark measures against view scans (Fig. 10).
    """

    outer: PlanNode
    inner: AccessSpec
    outer_keys: tuple[tuple[str, str] | Expr, ...]
    """Sources of the inner prefix values, aligned with
    ``inner.prefix_attrs``: either an outer-row key (binding, attr) or a
    constant expression (literal/parameter filter on the inner side)."""
    check_dirty: bool = False

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        for outer_row in self.outer.execute(ctx):
            values = [
                outer_row.get(k) if isinstance(k, tuple) else ctx.eval(k)
                for k in self.outer_keys
            ]
            for inner_row in self.inner.fetch(ctx, values, self.check_dirty):
                merged = dict(outer_row)
                merged.update(inner_row)
                yield merged

    def children(self) -> tuple[PlanNode, ...]:
        return (self.outer,)

    def _label(self) -> str:
        return (
            f"NL JOIN -> {self.inner.entry.name} as {self.inner.binding} "
            f"on {self.outer_keys}"
        )


@dataclass
class HashJoinNode(PlanNode):
    """Broadcast hash join: build side fully scanned, hashed and (as in
    Phoenix) shipped to every region server; probe side streams."""

    probe: PlanNode
    build: PlanNode
    probe_keys: tuple[tuple[str, str], ...]
    build_keys: tuple[tuple[str, str], ...]

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        table: dict[tuple, list[Row]] = {}
        build_rows = 0
        for row in self.build.execute(ctx):
            key = tuple(row.get(k) for k in self.build_keys)
            if None in key:
                continue
            table.setdefault(key, []).append(row)
            build_rows += 1
        # broadcast cost: build relation shipped to each region server
        cost = ctx.conn.sim.cost
        n_servers = len(ctx.conn.client.cluster.servers)
        approx_bytes = build_rows * ctx.conn.hashjoin_row_bytes * n_servers
        ctx.conn.charge.transfer(approx_bytes)
        ctx.conn.sim.metrics.counter("phoenix.hashjoin_broadcast_rows").inc(
            build_rows
        )
        for row in self.probe.execute(ctx):
            key = tuple(row.get(k) for k in self.probe_keys)
            if None in key:
                continue
            for match in table.get(key, ()):
                merged = dict(row)
                merged.update(match)
                yield merged

    def children(self) -> tuple[PlanNode, ...]:
        return (self.probe, self.build)

    def _label(self) -> str:
        return f"HASH JOIN on probe={self.probe_keys} build={self.build_keys}"


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicates: tuple[Predicate, ...]

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        for row in self.child.execute(ctx):
            if all(p.test(row, ctx) for p in self.predicates):
                yield row

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"FILTER {self.predicates}"


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    keys: tuple[tuple[tuple[str, str] | str, bool], ...]
    """((source, descending), ...); source may be an aggregate name."""

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        rows = list(self.child.execute(ctx))
        # charge client-side sort work (Phoenix sorts in the client/driver)
        ctx.conn.sim.charge(0.0005 * len(rows), "phoenix.sort")

        def sort_key(row: Row):
            parts = []
            for source, desc in self.keys:
                v = _lookup(row, source)
                parts.append(_OrderKey(v, desc))
            return tuple(parts)

        rows.sort(key=sort_key)
        yield from rows

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"SORT {self.keys}"


class _OrderKey:
    """Total order over heterogeneous/None values, with DESC support."""

    __slots__ = ("value", "desc")

    def __init__(self, value: Any, desc: bool) -> None:
        self.value = value
        self.desc = desc

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.desc  # NULLs first ASC, last DESC
        if b is None:
            return self.desc
        return (a > b) if self.desc else (a < b)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


@dataclass
class GroupByNode(PlanNode):
    """Hash aggregation. Aggregate outputs appear under binding ``""``
    keyed by the canonical call text (e.g. ``SUM(ol_qty)``)."""

    child: PlanNode
    group_keys: tuple[tuple[str, str] | str, ...]
    aggregates: tuple[tuple[str, str, tuple[str, str] | str | None], ...]
    """(output_name, func, source) — source None for COUNT(*)."""

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        groups: dict[tuple, list[Row]] = {}
        group_reps: dict[tuple, Row] = {}
        for row in self.child.execute(ctx):
            key = tuple(_lookup(row, g) for g in self.group_keys)
            groups.setdefault(key, []).append(row)
            group_reps.setdefault(key, row)
        ctx.conn.sim.charge(
            0.0005 * sum(len(v) for v in groups.values()), "phoenix.groupby"
        )
        for key, rows in groups.items():
            out: Row = {}
            rep = group_reps[key]
            for g in self.group_keys:
                if isinstance(g, tuple):
                    out[g] = rep.get(g)
                else:
                    out[("", g)] = _lookup(rep, g)
            for out_name, func, source in self.aggregates:
                values = (
                    [1 for _ in rows]
                    if source is None
                    else [_lookup(r, source) for r in rows]
                )
                values = [v for v in values if v is not None]
                out[("", out_name)] = _aggregate(func, values)
            yield out

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"GROUP BY {self.group_keys} aggs={self.aggregates}"


def _aggregate(func: str, values: list[Any]) -> Any:
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return sum(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    if func == "AVG":
        return sum(values) / len(values)
    raise PlanError(f"unknown aggregate {func}")  # pragma: no cover


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        emitted = 0
        for row in self.child.execute(ctx):
            if emitted >= self.limit:
                return
            emitted += 1
            yield row

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"LIMIT {self.limit}"


@dataclass
class DistinctNode(PlanNode):
    """Deduplicate on the projected columns (SQL DISTINCT semantics).
    ``keys`` are the output sources; empty means whole-row distinct."""

    child: PlanNode
    keys: tuple[tuple[str, str] | str, ...] = ()

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        seen: set = set()
        for row in self.child.execute(ctx):
            if self.keys:
                key = tuple(_hashable(_lookup(row, k)) for k in self.keys)
            else:
                key = tuple(
                    (k, _hashable(v))
                    for k, v in sorted(row.items(), key=lambda kv: kv[0])
                )
            if key not in seen:
                seen.add(key)
                yield row

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


def _hashable(v: Any) -> Any:
    return tuple(v) if isinstance(v, list) else v
