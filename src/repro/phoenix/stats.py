"""Table statistics and the planner cost model.

The cost-based planner prices access paths and join orders from two
sources the repo already maintains:

* ``catalog.stats`` — per-entry row counts refreshed by
  ``PhoenixConnection.analyze()`` (unknown entries fall back to the
  catalog's pessimistic default);
* the cluster layer's region metadata — region count and
  ``approx_size_bytes`` per table — which yields average row width and
  the number of scanner-open round trips a full scan pays.

Everything here is pure arithmetic over those numbers and the
:class:`repro.config.CostModel` latency constants, so estimates are
deterministic and unit-testable without a cluster
(``tests/test_planner_cost.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import CostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.hbase.cluster import HBaseCluster
    from repro.phoenix.catalog import Catalog, CatalogEntry

DEFAULT_ROW_BYTES = 150
"""Width assumed when a table has no measured size (matches the
``hashjoin_row_bytes`` broadcast calibration)."""

HASH_CPU_MS_PER_ROW = 0.0005
"""Client-side per-row hash/sort work (same constant the executors
charge for sorts and group-bys)."""

FILTER_SELECTIVITY = 0.25
"""Assumed fraction of rows surviving one residual predicate."""


@dataclass(frozen=True)
class TableStats:
    """Statistics snapshot for one catalog entry."""

    name: str
    rows: int
    size_bytes: int
    regions: int

    @property
    def avg_row_bytes(self) -> float:
        if self.rows > 0 and self.size_bytes > 0:
            return self.size_bytes / self.rows
        return float(DEFAULT_ROW_BYTES)


class StatisticsProvider:
    """Resolves :class:`TableStats` for catalog entries, preferring live
    region metadata and degrading gracefully to catalog row counts."""

    def __init__(self, catalog: "Catalog", cluster: "HBaseCluster | None" = None):
        self.catalog = catalog
        self.cluster = cluster

    def stats_for(self, entry: "CatalogEntry") -> TableStats:
        rows = self.catalog.estimated_rows(entry.name)
        size_bytes = 0
        regions = 1
        if self.cluster is not None and entry.name in self.cluster.tables:
            desc = self.cluster.descriptor(entry.name)
            regions = max(len(desc.regions), 1)
            size_bytes = self.cluster.table_size_bytes(entry.name)
        return TableStats(
            name=entry.name, rows=rows, size_bytes=size_bytes, regions=regions
        )

    @property
    def servers(self) -> int:
        if self.cluster is None:
            return 1
        return max(len(self.cluster.servers), 1)


def matched_rows(rows: int, prefix_len: int, key_len: int) -> float:
    """Rows matching an equality prefix of ``prefix_len`` of a
    ``key_len``-attribute key: the uniform-key estimate
    ``rows ** (1 - prefix_len/key_len)`` — monotonically shrinking as
    the prefix grows, exactly 1 row for a full-key point access."""
    if rows <= 0:
        return 0.0
    if key_len <= 0 or prefix_len >= key_len:
        return 1.0
    if prefix_len <= 0:
        return float(rows)
    return float(rows) ** (1.0 - prefix_len / key_len)


class AccessCoster:
    """Prices physical access paths and joins in virtual milliseconds."""

    def __init__(self, cost: CostModel, servers: int = 1) -> None:
        self.cost = cost
        self.servers = max(servers, 1)

    # -- leaf access -------------------------------------------------------------
    def point_get_ms(self, stats: TableStats) -> float:
        c = self.cost
        return (
            c.rpc_base_ms
            + c.seek_ms
            + c.read_row_ms
            + stats.avg_row_bytes / 1024.0 * c.network_ms_per_kb
        )

    def scan_ms(self, stats: TableStats, prefix_len: int, key_len: int) -> float:
        """A prefix scan opens one region window; a full scan opens one
        per region. Batched transfer RPCs amortize per
        ``scan_batch_rows`` rows."""
        c = self.cost
        rows = matched_rows(stats.rows, prefix_len, key_len)
        regions = 1 if prefix_len > 0 else stats.regions
        open_cost = regions * (c.rpc_base_ms + c.seek_ms)
        batches = rows / max(c.scan_batch_rows, 1)
        transfer = rows * stats.avg_row_bytes / 1024.0 * c.network_ms_per_kb
        return open_cost + rows * c.read_row_ms + batches * c.rpc_base_ms + transfer

    def access_ms(
        self,
        stats: TableStats,
        prefix_len: int,
        key_len: int,
        lookup_stats: TableStats | None = None,
    ) -> tuple[float, float]:
        """Returns ``(matched_rows, cost_ms)`` for one access: point get
        when the prefix covers the key, scan otherwise, plus one base-
        table point get per matched row for non-covered index paths."""
        rows = matched_rows(stats.rows, prefix_len, key_len)
        if key_len > 0 and prefix_len >= key_len:
            ms = self.point_get_ms(stats)
        else:
            ms = self.scan_ms(stats, prefix_len, key_len)
        if lookup_stats is not None:
            ms += rows * self.point_get_ms(lookup_stats)
        return rows, ms

    # -- joins -------------------------------------------------------------------
    def nl_join_ms(self, outer_rows: float, per_probe_ms: float) -> float:
        return outer_rows * per_probe_ms

    def hash_join_ms(
        self, probe_rows: float, build_rows: float, row_bytes: float
    ) -> float:
        """Broadcast hash join: the build side is hashed and shipped to
        every region server; both sides pay per-row hash work."""
        c = self.cost
        broadcast = build_rows * row_bytes * self.servers / 1024.0 * c.network_ms_per_kb
        return broadcast + (probe_rows + build_rows) * HASH_CPU_MS_PER_ROW

    @staticmethod
    def equi_join_rows(left_rows: float, right_rows: float, n_keys: int) -> float:
        """Textbook equi-join estimate ``|L|*|R| / max(|L|,|R|)`` (the
        join key is a key of the larger side); cartesian when keyless."""
        if n_keys == 0:
            return left_rows * right_rows
        denom = max(left_rows, right_rows, 1.0)
        return left_rows * right_rows / denom
