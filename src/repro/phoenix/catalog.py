"""Physical catalog: relations, indexes, views and view-indexes.

Every catalog entry is backed by one HBase table. Row keys are the
delimited concatenation of the entry's key attributes (paper Sec. II-D);
all non-key attributes live in column family ``0`` under their attribute
name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import SchemaError
from repro.hbase.bytes_util import encode_key, decode_key
from repro.hbase.cell import Result
from repro.hbase.ops import Put
from repro.relational.datatypes import DataType, decode_value, encode_value
from repro.relational.schema import Index, Relation, Schema

CF = b"0"

DIRTY_QUALIFIER = b"_d"
"""Dirty-marker column written on view rows during update maintenance."""

ROW_MARKER_QUALIFIER = b"_0"
"""Placeholder cell for key-only entries, so the row exists."""

TABLE = "table"
INDEX = "index"
VIEW = "view"
VIEW_INDEX = "view_index"


@dataclass
class CatalogEntry:
    """Metadata for one physical HBase table."""

    name: str
    kind: str
    key_attrs: tuple[str, ...]
    attrs: tuple[str, ...]
    dtypes: dict[str, DataType]
    relation: str | None = None
    base: str | None = None
    """For indexes/view-indexes: the entry name this index covers."""

    view_path: tuple[str, ...] = ()
    """For views/view-indexes: the sequence of relations of the view."""

    indexed_on: tuple[str, ...] = ()
    """For indexes/view-indexes: Xtuple — attrs the index is indexed upon."""

    def __post_init__(self) -> None:
        for a in self.key_attrs:
            if a not in self.dtypes:
                raise SchemaError(f"{self.name}: key attr {a!r} has no dtype")
        for a in self.attrs:
            if a not in self.dtypes:
                raise SchemaError(f"{self.name}: attr {a!r} has no dtype")

    @property
    def value_attrs(self) -> tuple[str, ...]:
        return tuple(a for a in self.attrs if a not in self.key_attrs)

    def has_attribute(self, name: str) -> bool:
        return name in self.dtypes

    # -- encode / decode -------------------------------------------------------------
    def key_dtypes(self) -> tuple[DataType, ...]:
        return tuple(self.dtypes[a] for a in self.key_attrs)

    def encode_key(self, row: dict[str, Any]) -> bytes:
        """Missing/None key components encode as NULL (indexes may carry
        NULL key parts, like Phoenix's); statement-level validation
        rejects base-table writes that omit primary-key attributes."""
        values = [row.get(a) for a in self.key_attrs]
        return encode_key(self.key_dtypes(), values)

    def encode_key_values(self, values: Iterable[Any]) -> bytes:
        return encode_key(self.key_dtypes(), values)

    def encode_key_prefix(self, values: list[Any]) -> bytes:
        """Key prefix for the first ``len(values)`` key attributes."""
        dtypes = self.key_dtypes()[: len(values)]
        return encode_key(dtypes, values)

    def decode_key(self, key: bytes) -> dict[str, Any]:
        values = decode_key(self.key_dtypes(), key)
        return dict(zip(self.key_attrs, values))

    def row_to_put(self, row: dict[str, Any]) -> Put:
        """Encode a full relational row as a single-row Put."""
        put = Put(self.encode_key(row))
        for attr in self.value_attrs:
            value = row.get(attr)
            put.add(CF, attr.encode(), encode_value(self.dtypes[attr], value))
        if not self.value_attrs:
            # key-only entries still need one cell so the row exists
            put.add(CF, ROW_MARKER_QUALIFIER, b"")
        return put

    def projection(self) -> list[tuple[bytes, bytes]]:
        """Every column a physical row of this entry can carry — the set
        pushed down into Gets/Scans so the storage engine never merges
        columns the decoder would not read (column-pushdown contract).
        Includes the row marker (key-only entries) and the dirty marker
        (view-maintenance bookkeeping), so results stay byte-identical
        to an unprojected read."""
        cols = [(CF, attr.encode()) for attr in self.value_attrs]
        cols.append((CF, ROW_MARKER_QUALIFIER))
        cols.append((CF, DIRTY_QUALIFIER))
        return cols

    def result_to_row(self, result: Result) -> dict[str, Any]:
        """Decode an HBase Result back into a relational row."""
        row = self.decode_key(result.row)
        for attr in self.value_attrs:
            raw = result.value(CF, attr.encode())
            row[attr] = (
                decode_value(self.dtypes[attr], raw) if raw is not None else None
            )
        return row


class Catalog:
    """All physical entries of one deployed database."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._entries: dict[str, CatalogEntry] = {}
        self._relation_table: dict[str, str] = {}
        self._relation_indexes: dict[str, list[str]] = {}
        self._views: dict[str, str] = {}
        self._view_indexes: dict[str, list[str]] = {}
        self.stats: dict[str, int] = {}
        """entry name -> cached row count (refreshed by ``analyze``)."""

    # -- registration ---------------------------------------------------------------
    def add_entry(self, entry: CatalogEntry) -> CatalogEntry:
        if entry.name in self._entries:
            raise SchemaError(f"duplicate catalog entry {entry.name!r}")
        self._entries[entry.name] = entry
        if entry.kind == TABLE:
            assert entry.relation is not None
            self._relation_table[entry.relation] = entry.name
            self._relation_indexes.setdefault(entry.relation, [])
        elif entry.kind == INDEX:
            assert entry.relation is not None
            self._relation_indexes.setdefault(entry.relation, []).append(entry.name)
        elif entry.kind == VIEW:
            self._views[entry.name] = entry.name
            self._view_indexes.setdefault(entry.name, [])
        elif entry.kind == VIEW_INDEX:
            assert entry.base is not None
            self._view_indexes.setdefault(entry.base, []).append(entry.name)
        else:  # pragma: no cover - guarded by constants
            raise SchemaError(f"unknown entry kind {entry.kind!r}")
        return entry

    # -- lookup ------------------------------------------------------------------------
    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise SchemaError(f"no catalog entry {name!r}") from None

    def has_entry(self, name: str) -> bool:
        return name in self._entries

    def entries(self, kind: str | None = None) -> list[CatalogEntry]:
        if kind is None:
            return list(self._entries.values())
        return [e for e in self._entries.values() if e.kind == kind]

    def table_for_relation(self, relation: str) -> CatalogEntry:
        try:
            return self._entries[self._relation_table[relation]]
        except KeyError:
            raise SchemaError(f"relation {relation!r} has no table") from None

    def indexes_for_relation(self, relation: str) -> list[CatalogEntry]:
        return [self._entries[n] for n in self._relation_indexes.get(relation, ())]

    def views(self) -> list[CatalogEntry]:
        return [self._entries[n] for n in self._views]

    def view(self, name: str) -> CatalogEntry:
        entry = self.entry(name)
        if entry.kind != VIEW:
            raise SchemaError(f"{name!r} is not a view")
        return entry

    def indexes_for_view(self, view_name: str) -> list[CatalogEntry]:
        return [self._entries[n] for n in self._view_indexes.get(view_name, ())]

    def indexes_for(self, entry: CatalogEntry) -> list[CatalogEntry]:
        """Secondary-access entries for a table or view."""
        if entry.kind == TABLE:
            assert entry.relation is not None
            return self.indexes_for_relation(entry.relation)
        if entry.kind == VIEW:
            return self.indexes_for_view(entry.name)
        return []

    def resolve_from_name(self, name: str) -> CatalogEntry:
        """Resolve a FROM-clause name: relation name or view name."""
        if name in self._relation_table:
            return self.table_for_relation(name)
        return self.entry(name)

    def views_containing(self, relation: str) -> list[CatalogEntry]:
        return [v for v in self.views() if relation in v.view_path]

    # -- statistics ------------------------------------------------------------------
    def estimated_rows(self, entry_name: str) -> int:
        return self.stats.get(entry_name, 1_000_000_000)


class CatalogNamespace:
    """Schema-like adapter so the SQL analyzer can resolve FROM names that
    are views (rewritten Synergy queries) as well as base relations."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def has_relation(self, name: str) -> bool:
        try:
            self.catalog.resolve_from_name(name)
            return True
        except SchemaError:
            return False

    def relation(self, name: str) -> CatalogEntry:
        return self.catalog.resolve_from_name(name)
