"""Baseline schema transformation (paper Sec. II-D) and view DDL.

* A relation ``R`` becomes an HBase table ``R'`` with the same attribute
  set; the row key is the delimited concatenation of ``PK(R)`` values.
* An index ``X(R)`` becomes a table whose row key is the concatenation
  of ``Xtuple(R) + PK(R)``; being *covered*, it stores all its attributes.
* All attributes go to one column family.

Views and view-indexes (created later by the Synergy machinery) follow
the same encoding; a view's key is the key of the *last* relation in its
path (paper Definition 5).
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.hbase.client import HBaseClient
from repro.phoenix.catalog import (
    CF,
    Catalog,
    CatalogEntry,
    INDEX,
    TABLE,
    VIEW,
    VIEW_INDEX,
)
from repro.relational.schema import Index, Relation, Schema


def index_table_name(relation: str, index_name: str) -> str:
    return f"{relation}.{index_name}"


def _index_entry(rel: Relation, idx: Index) -> CatalogEntry:
    key_attrs = tuple(dict.fromkeys(idx.indexed_on + rel.primary_key))
    attrs = tuple(dict.fromkeys(idx.attributes + rel.primary_key))
    dtypes = {a: rel.dtype_of(a) for a in attrs}
    return CatalogEntry(
        name=index_table_name(rel.name, idx.name),
        kind=INDEX,
        key_attrs=key_attrs,
        attrs=attrs,
        dtypes=dtypes,
        relation=rel.name,
        base=rel.name,
        indexed_on=tuple(idx.indexed_on),
    )


def create_baseline_schema(client: HBaseClient, schema: Schema) -> Catalog:
    """Create one HBase table per relation and per covered index."""
    catalog = Catalog(schema)
    for rel in schema:
        entry = CatalogEntry(
            name=rel.name,
            kind=TABLE,
            key_attrs=tuple(rel.primary_key),
            attrs=tuple(rel.attribute_names),
            dtypes={a.name: a.dtype for a in rel.attributes},
            relation=rel.name,
        )
        catalog.add_entry(entry)
        client.create_table(entry.name, families=(CF,))
        for idx in schema.indexes(rel.name):
            ientry = _index_entry(rel, idx)
            catalog.add_entry(ientry)
            client.create_table(ientry.name, families=(CF,))
    return catalog


def create_view_entry(
    client: HBaseClient,
    catalog: Catalog,
    view_name: str,
    view_path: tuple[str, ...],
    attributes: tuple[str, ...] | None = None,
) -> CatalogEntry:
    """Create the physical table for a materialized view.

    Attributes = union of the path relations' attributes (paper Def. 5),
    or an explicit projection (the tuning-advisor's narrow views); key =
    PK of the last relation. Attribute names must be globally unique
    across the path (true for both the Company and TPC-W schemas).
    """
    schema = catalog.schema
    attrs: list[str] = []
    dtypes: dict[str, object] = {}
    for rel_name in view_path:
        rel = schema.relation(rel_name)
        for a in rel.attributes:
            if attributes is not None and a.name not in attributes:
                continue
            if a.name in dtypes:
                raise SchemaError(
                    f"view {view_name}: duplicate attribute {a.name!r} "
                    f"across {view_path}"
                )
            attrs.append(a.name)
            dtypes[a.name] = a.dtype
    last = schema.relation(view_path[-1])
    for key_attr in last.primary_key:
        if key_attr not in dtypes:
            raise SchemaError(
                f"view {view_name}: projection must include the key "
                f"attribute {key_attr!r} of {last.name}"
            )
    entry = CatalogEntry(
        name=view_name,
        kind=VIEW,
        key_attrs=tuple(last.primary_key),
        attrs=tuple(attrs),
        dtypes=dtypes,  # type: ignore[arg-type]
        view_path=tuple(view_path),
    )
    catalog.add_entry(entry)
    client.create_table(entry.name, families=(CF,))
    return entry


def create_view_index_entry(
    client: HBaseClient,
    catalog: Catalog,
    view_entry: CatalogEntry,
    indexed_on: tuple[str, ...],
    name: str | None = None,
    covered: bool = True,
) -> CatalogEntry:
    """Create a view-index, indexed upon ``indexed_on``.

    The physical key is ``indexed_on + PK(view)``. Covered indexes
    (read indexes, Sec. VI-C) include every view attribute so queries
    never touch the view itself; maintenance indexes (Sec. VII-C) are
    key-only — they exist to *locate* view rows, which are then read
    from the view.
    """
    name = name or f"{view_entry.name}.ix_{'_'.join(indexed_on)}"
    key_attrs = tuple(dict.fromkeys(indexed_on + view_entry.key_attrs))
    attrs = tuple(view_entry.attrs) if covered else key_attrs
    entry = CatalogEntry(
        name=name,
        kind=VIEW_INDEX,
        key_attrs=key_attrs,
        attrs=attrs,
        dtypes={a: view_entry.dtypes[a] for a in (
            view_entry.attrs if covered else key_attrs
        )},
        base=view_entry.name,
        view_path=view_entry.view_path,
        indexed_on=tuple(indexed_on),
    )
    catalog.add_entry(entry)
    client.create_table(entry.name, families=(CF,))
    return entry
