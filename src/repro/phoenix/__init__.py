"""A Phoenix-style SQL skin over the simulated HBase (paper Sec. II-D).

The client-embedded driver transforms SQL into a series of HBase scans:

* :mod:`repro.phoenix.catalog` — physical metadata: which HBase table
  backs each relation, index, materialized view and view-index, and how
  row keys are encoded (delimited concatenation of key attributes);
* :mod:`repro.phoenix.ddl` — the **baseline schema transformation**:
  every relation and every covered index becomes an HBase table, all
  attributes in a single column family;
* :mod:`repro.phoenix.planner` / :mod:`repro.phoenix.plans` /
  :mod:`repro.phoenix.executor` — access-path selection (point get, key
  prefix scan, covered index scan, full scan), index nested-loop and
  hash joins, sort/group/limit, parameter binding;
* :mod:`repro.phoenix.writes` — single-row INSERT/UPDATE/DELETE with
  base-table index maintenance.
"""

from repro.phoenix.catalog import Catalog, CatalogEntry
from repro.phoenix.ddl import create_baseline_schema
from repro.phoenix.executor import PhoenixConnection

__all__ = [
    "Catalog",
    "CatalogEntry",
    "PhoenixConnection",
    "create_baseline_schema",
]
