"""Streaming physical operators (batch-at-a-time pull model).

The legacy executor in :mod:`repro.phoenix.plans` is a per-row
generator chain. This module is the streaming engine that replaces it
when a connection is opened with ``engine="streaming"``: every node is
a :class:`PhysicalOperator` with explicit ``open``/``next_batch``/
``close`` semantics, pulling *batches* of rows through the tree instead
of resuming a generator frame per row per operator.

Differences from the legacy operators — semantics are row-for-row
identical (pinned by ``tests/test_query_engine_property.py``), the
physics are not:

* joins with no index path run as a **non-blocking symmetric hash
  join** (both sides stream; each arriving row probes the opposite
  hash table, then inserts into its own) instead of the legacy
  broadcast join that fully materializes the build side before the
  first output row. Under a ``LIMIT`` this stops reading *both*
  inputs early; it also charges a per-row partitioned shuffle instead
  of the legacy build-side broadcast.
* ``close()`` propagates to every in-flight scan generator, which
  triggers the region-scanner ``finally`` (batch-charge settlement and
  the region-server queue release) deterministically instead of
  waiting for garbage collection — the PR 4 scan-finally guarantee,
  extended to abandoned operator trees.

The streaming engine is compiled *from* the legacy plan tree
(:func:`compile_plan`), so planner decisions — access paths, join
order, residual placement — are shared between engines and the anchored
legacy experiments never see these operators.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import PlanError
from repro.phoenix.plans import (
    AccessSpec,
    DistinctNode,
    ExecutionContext,
    FilterNode,
    GroupByNode,
    HashJoinNode,
    LimitNode,
    MaterializedNode,
    NestedLoopJoinNode,
    PlanNode,
    Predicate,
    Row,
    ScanNode,
    SortNode,
    SubqueryNode,
    _hashable,
    _lookup,
    _OrderKey,
)
from repro.sql.ast import Expr

BATCH_ROWS = 256
"""Rows per hop between operators: large enough to amortize the
per-batch Python overhead, small enough that LIMIT early-close still
saves real work."""


class PhysicalOperator:
    """Pull-based operator: ``open(ctx)`` once, then ``next_batch()``
    until it returns ``None``, then ``close()``.

    ``next_batch`` returns a non-empty list of rows or ``None`` when
    exhausted (operators loop internally instead of surfacing empty
    batches). ``close`` is idempotent, safe mid-stream, and always
    propagates to children so abandoned subtrees release their scanner
    windows immediately.
    """

    def open(self, ctx: ExecutionContext) -> None:
        self._ctx = ctx
        for child in self.children():
            child.open(ctx)

    def next_batch(self) -> list[Row] | None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        for child in self.children():
            child.close()

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def rows(self) -> Iterator[Row]:
        """Row-at-a-time convenience cursor; closes the tree on normal
        exhaustion *and* when the consumer abandons the iterator."""
        try:
            while True:
                batch = self.next_batch()
                if batch is None:
                    return
                yield from batch
        finally:
            self.close()

    def describe(self, indent: int = 0) -> str:
        lines = [("  " * indent) + self._label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


class StreamingScan(PhysicalOperator):
    """Leaf access over :meth:`AccessSpec.fetch`. Holds the fetch
    generator so ``close()`` can shut the underlying region scan."""

    def __init__(
        self,
        access: AccessSpec,
        prefix_exprs: tuple[Expr, ...] = (),
        check_dirty: bool = False,
    ) -> None:
        self.access = access
        self.prefix_exprs = prefix_exprs
        self.check_dirty = check_dirty
        self._gen: Iterator[Row] | None = None

    def open(self, ctx: ExecutionContext) -> None:
        self._ctx = ctx
        values = [ctx.eval(e) for e in self.prefix_exprs]
        self._gen = self.access.fetch(ctx, values, self.check_dirty)

    def next_batch(self) -> list[Row] | None:
        if self._gen is None:
            return None
        batch: list[Row] = []
        for row in self._gen:
            batch.append(row)
            if len(batch) >= BATCH_ROWS:
                return batch
        self._gen = None
        return batch or None

    def close(self) -> None:
        if self._gen is not None:
            # GeneratorExit unwinds fetch -> HTable.scan's finally:
            # batch charges settle and the server queue slot is released
            self._gen.close()
            self._gen = None

    def _label(self) -> str:
        entry = self.access.entry
        kind = "POINT GET" if self.access.is_point() else (
            "PREFIX SCAN" if self.access.prefix_attrs else "FULL SCAN"
        )
        return (
            f"STREAM {kind} {entry.name} [{entry.kind}] as "
            f"{self.access.binding} prefix={self.access.prefix_attrs}"
        )


class MaterializedSource(PhysicalOperator):
    """In-memory rows (pre-materialized derived tables, tests)."""

    def __init__(self, rows: list[Row], label: str = "materialized") -> None:
        self._rows = rows
        self.label = label

    def open(self, ctx: ExecutionContext) -> None:
        self._ctx = ctx
        self._pos = 0

    def next_batch(self) -> list[Row] | None:
        if self._pos >= len(self._rows):
            return None
        batch = self._rows[self._pos : self._pos + BATCH_ROWS]
        self._pos += len(batch)
        return batch

    def _label(self) -> str:
        return f"STREAM MATERIALIZED {self.label} ({len(self._rows)} rows)"


class StreamingProject(PhysicalOperator):
    """Shapes internal ``(binding, attr)`` rows into output dicts —
    the pipeline root the executor consumes."""

    def __init__(
        self, child: PhysicalOperator, output: tuple[tuple[str, Any], ...]
    ) -> None:
        self.child = child
        self.output = output

    def next_batch(self) -> list[Row] | None:
        batch = self.child.next_batch()
        if batch is None:
            return None
        return [
            {name: _lookup(row, src) for name, src in self.output}
            for row in batch
        ]

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"PROJECT {tuple(name for name, _ in self.output)}"


class StreamingFilter(PhysicalOperator):
    def __init__(
        self, child: PhysicalOperator, predicates: tuple[Predicate, ...]
    ) -> None:
        self.child = child
        self.predicates = predicates

    def next_batch(self) -> list[Row] | None:
        while True:
            batch = self.child.next_batch()
            if batch is None:
                return None
            ctx = self._ctx
            kept = [
                row
                for row in batch
                if all(p.test(row, ctx) for p in self.predicates)
            ]
            if kept:
                return kept

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"STREAM FILTER {self.predicates}"


class SubqueryOp(PhysicalOperator):
    """Streams a derived-table subplan, remapping each row to the
    derived alias — no materialization barrier (unlike the legacy
    :class:`SubqueryNode` name suggests, both stream; this one just
    does it in batches)."""

    def __init__(
        self,
        child: PhysicalOperator,
        alias: str,
        output_names: tuple[str, ...],
        source_keys: tuple[Any, ...],
    ) -> None:
        self.child = child
        self.alias = alias
        self.output_names = output_names
        self.source_keys = source_keys

    def next_batch(self) -> list[Row] | None:
        batch = self.child.next_batch()
        if batch is None:
            return None
        alias = self.alias
        pairs = tuple(zip(self.output_names, self.source_keys))
        return [
            {(alias, name): _lookup(row, source) for name, source in pairs}
            for row in batch
        ]

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"STREAM DERIVED as {self.alias} -> {self.output_names}"


class _JoinSide:
    __slots__ = ("source", "keys", "table", "done")

    def __init__(
        self, source: PhysicalOperator, keys: tuple[tuple[str, str], ...]
    ) -> None:
        self.source = source
        self.keys = keys
        self.table: dict[tuple, list[Row]] = {}
        self.done = False


class SymmetricHashJoin(PhysicalOperator):
    """Non-blocking symmetric hash join (Xgjoin-style).

    Pulls batches from both inputs alternately; every arriving row
    probes the opposite side's hash table (emitting one merged row per
    match) and is then inserted into its own table. Each left/right row
    pair therefore matches exactly once, so the output is the same
    inner-join multiset the legacy broadcast join produces — but the
    first row comes out after one batch per side, and a downstream
    LIMIT stops *both* scans early.

    Cost: instead of the legacy build-side broadcast (rows x row bytes
    x region servers), each inserted row is charged one partitioned
    shuffle hop (rows x row bytes), metered under
    ``phoenix.hashjoin_shuffle_rows``.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: tuple[tuple[str, str], ...],
        right_keys: tuple[tuple[str, str], ...],
    ) -> None:
        self.left = _JoinSide(left, left_keys)
        self.right = _JoinSide(right, right_keys)
        self._turn = self.left

    def next_batch(self) -> list[Row] | None:
        out: list[Row] = []
        while not out:
            side = self._pick_side()
            if side is None:
                return None
            other = self.right if side is self.left else self.left
            batch = side.source.next_batch()
            if batch is None:
                side.done = True
                continue
            inserted = 0
            left_first = side is self.left
            for row in batch:
                key = tuple(row.get(k) for k in side.keys)
                if None in key:
                    continue
                for match in other.table.get(key, ()):
                    merged = dict(row) if left_first else dict(match)
                    merged.update(match if left_first else row)
                    out.append(merged)
                side.table.setdefault(key, []).append(row)
                inserted += 1
            if inserted:
                conn = self._ctx.conn
                conn.charge.transfer(inserted * conn.hashjoin_row_bytes)
                conn.sim.metrics.counter(
                    "phoenix.hashjoin_shuffle_rows"
                ).inc(inserted)
        return out

    def _pick_side(self) -> _JoinSide | None:
        if self.left.done and self.right.done:
            return None
        preferred = self._turn
        self._turn = self.right if preferred is self.left else self.left
        if preferred.done:
            return self._turn if not self._turn.done else None
        return preferred

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left.source, self.right.source)

    def _label(self) -> str:
        return (
            f"SYMMETRIC HASH JOIN on left={self.left.keys} "
            f"right={self.right.keys}"
        )


class IndexNestedLoopJoin(PhysicalOperator):
    """Index nested-loop join: one inner access per outer row, same
    probe pattern (and therefore the same virtual charges) as the
    legacy :class:`NestedLoopJoinNode`; only the outer side batches."""

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: AccessSpec,
        outer_keys: tuple,
        check_dirty: bool = False,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.outer_keys = outer_keys
        self.check_dirty = check_dirty
        self._batch: list[Row] | None = None
        self._pos = 0
        self._done = False

    def next_batch(self) -> list[Row] | None:
        out: list[Row] = []
        ctx = self._ctx
        while len(out) < BATCH_ROWS and not self._done:
            if self._batch is None or self._pos >= len(self._batch):
                self._batch = self.outer.next_batch()
                self._pos = 0
                if self._batch is None:
                    self._done = True
                continue
            outer_row = self._batch[self._pos]
            self._pos += 1
            values = [
                outer_row.get(k) if isinstance(k, tuple) else ctx.eval(k)
                for k in self.outer_keys
            ]
            for inner_row in self.inner.fetch(ctx, values, self.check_dirty):
                merged = dict(outer_row)
                merged.update(inner_row)
                out.append(merged)
        return out or None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.outer,)

    def _label(self) -> str:
        return (
            f"STREAM NL JOIN -> {self.inner.entry.name} as "
            f"{self.inner.binding} on {self.outer_keys}"
        )


class HashDistinct(PhysicalOperator):
    """Streaming dedupe — same key derivation as the legacy
    :class:`DistinctNode` (projected sources, or whole-row when
    keyless), but emits survivors batch by batch."""

    def __init__(self, child: PhysicalOperator, keys: tuple = ()) -> None:
        self.child = child
        self.keys = keys
        self._seen: set = set()

    def next_batch(self) -> list[Row] | None:
        while True:
            batch = self.child.next_batch()
            if batch is None:
                return None
            out: list[Row] = []
            for row in batch:
                if self.keys:
                    key = tuple(_hashable(_lookup(row, k)) for k in self.keys)
                else:
                    key = tuple(
                        (k, _hashable(v))
                        for k, v in sorted(row.items(), key=lambda kv: kv[0])
                    )
                if key not in self._seen:
                    self._seen.add(key)
                    out.append(row)
            if out:
                return out

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"HASH DISTINCT {self.keys}"


class HashUnion(PhysicalOperator):
    """Multi-input union: drains inputs in order; with
    ``distinct=True`` (SQL ``UNION``) duplicates across *and* within
    inputs are dropped via the whole-row key, with ``distinct=False``
    (``UNION ALL``) rows pass straight through."""

    def __init__(
        self, inputs: tuple[PhysicalOperator, ...], distinct: bool = True
    ) -> None:
        self.inputs = inputs
        self.distinct = distinct
        self._seen: set = set()
        self._current = 0

    def next_batch(self) -> list[Row] | None:
        while self._current < len(self.inputs):
            batch = self.inputs[self._current].next_batch()
            if batch is None:
                self._current += 1
                continue
            if not self.distinct:
                return batch
            out: list[Row] = []
            for row in batch:
                key = tuple(
                    (k, _hashable(v))
                    for k, v in sorted(row.items(), key=lambda kv: kv[0])
                )
                if key not in self._seen:
                    self._seen.add(key)
                    out.append(row)
            if out:
                return out
        return None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.inputs

    def _label(self) -> str:
        return f"HASH UNION {'DISTINCT' if self.distinct else 'ALL'}"


class HashGroupBy(PhysicalOperator):
    """Hash aggregation with *incremental* accumulators — unlike the
    legacy node it never materializes per-group row lists, only
    (count, sum, min, max) states per aggregate. Blocking by nature;
    results stream out in first-seen group order (same as legacy)."""

    def __init__(
        self, child: PhysicalOperator, group_keys: tuple, aggregates: tuple
    ) -> None:
        self.child = child
        self.group_keys = group_keys
        self.aggregates = aggregates
        self._results: list[Row] | None = None
        self._pos = 0

    def _build(self) -> None:
        ctx = self._ctx
        reps: dict[tuple, Row] = {}
        # per group: one [n, total, mn, mx] state per aggregate
        states: dict[tuple, list[list[Any]]] = {}
        total_rows = 0
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            total_rows += len(batch)
            for row in batch:
                key = tuple(_lookup(row, g) for g in self.group_keys)
                if key not in reps:
                    reps[key] = row
                    states[key] = [
                        [0, 0, None, None] for _ in self.aggregates
                    ]
                for state, (_, _, source) in zip(
                    states[key], self.aggregates
                ):
                    v = 1 if source is None else _lookup(row, source)
                    if v is None:
                        continue
                    state[0] += 1
                    state[1] += v
                    if state[2] is None or v < state[2]:
                        state[2] = v
                    if state[3] is None or v > state[3]:
                        state[3] = v
        ctx.conn.sim.charge(0.0005 * total_rows, "phoenix.groupby")
        results: list[Row] = []
        for key, rep in reps.items():
            out: Row = {}
            for g in self.group_keys:
                if isinstance(g, tuple):
                    out[g] = rep.get(g)
                else:
                    out[("", g)] = _lookup(rep, g)
            for state, (out_name, func, _) in zip(
                states[key], self.aggregates
            ):
                out[("", out_name)] = _finish_aggregate(func, state)
            results.append(out)
        self._results = results

    def next_batch(self) -> list[Row] | None:
        if self._results is None:
            self._build()
        assert self._results is not None
        if self._pos >= len(self._results):
            return None
        batch = self._results[self._pos : self._pos + BATCH_ROWS]
        self._pos += len(batch)
        return batch

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"HASH GROUP BY {self.group_keys} aggs={self.aggregates}"


def _finish_aggregate(func: str, state: list[Any]) -> Any:
    """Same null semantics as the legacy :func:`_aggregate` over a
    None-filtered value list: COUNT of nothing is 0, everything else
    is NULL."""
    n, total, mn, mx = state
    if func == "COUNT":
        return n
    if n == 0:
        return None
    if func == "SUM":
        return total
    if func == "MIN":
        return mn
    if func == "MAX":
        return mx
    if func == "AVG":
        return total / n
    raise PlanError(f"unknown aggregate {func}")  # pragma: no cover


class StreamingSort(PhysicalOperator):
    """Blocking sort; same comparator (:class:`_OrderKey`) and the same
    per-row client-side charge as the legacy node, but emits batches."""

    def __init__(self, child: PhysicalOperator, keys: tuple) -> None:
        self.child = child
        self.keys = keys
        self._sorted: list[Row] | None = None
        self._pos = 0

    def next_batch(self) -> list[Row] | None:
        if self._sorted is None:
            rows: list[Row] = []
            while True:
                batch = self.child.next_batch()
                if batch is None:
                    break
                rows.extend(batch)
            self._ctx.conn.sim.charge(0.0005 * len(rows), "phoenix.sort")
            keys = self.keys

            def sort_key(row: Row):
                return tuple(
                    _OrderKey(_lookup(row, source), desc)
                    for source, desc in keys
                )

            rows.sort(key=sort_key)
            self._sorted = rows
        if self._pos >= len(self._sorted):
            return None
        batch = self._sorted[self._pos : self._pos + BATCH_ROWS]
        self._pos += len(batch)
        return batch

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"STREAM SORT {self.keys}"


class Limit(PhysicalOperator):
    """LIMIT/OFFSET. Closes the child as soon as the limit is
    satisfied so abandoned subtree scans release their windows at the
    moment the last row is emitted, not at tree close."""

    def __init__(
        self,
        child: PhysicalOperator,
        limit: int | None,
        offset: int = 0,
    ) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset
        self._skipped = 0
        self._emitted = 0
        self._done = False

    def next_batch(self) -> list[Row] | None:
        if self._done:
            return None
        while True:
            if self.limit is not None and self._emitted >= self.limit:
                self._finish()
                return None
            batch = self.child.next_batch()
            if batch is None:
                self._done = True
                return None
            if self._skipped < self.offset:
                take = min(len(batch), self.offset - self._skipped)
                self._skipped += take
                batch = batch[take:]
                if not batch:
                    continue
            if self.limit is not None:
                remaining = self.limit - self._emitted
                if len(batch) >= remaining:
                    out = batch[:remaining]
                    self._emitted += len(out)
                    self._finish()
                    return out
            self._emitted += len(batch)
            return batch

    def _finish(self) -> None:
        self._done = True
        self.child.close()

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"STREAM LIMIT {self.limit} OFFSET {self.offset}"


# ---------------------------------------------------------------- compilation
def compile_plan(node: PlanNode) -> PhysicalOperator:
    """Translate a legacy plan tree into a streaming operator tree.

    The planner (rule-based or cost-based) stays the single source of
    truth for plan *shape*; this only swaps the execution physics.
    """
    if isinstance(node, ScanNode):
        return StreamingScan(node.access, node.prefix_exprs, node.check_dirty)
    if isinstance(node, MaterializedNode):
        return MaterializedSource(node.rows, node.label)
    if isinstance(node, SubqueryNode):
        return SubqueryOp(
            compile_plan(node.subplan),
            node.alias,
            node.output_names,
            node.source_keys,
        )
    if isinstance(node, NestedLoopJoinNode):
        return IndexNestedLoopJoin(
            compile_plan(node.outer), node.inner, node.outer_keys, node.check_dirty
        )
    if isinstance(node, HashJoinNode):
        return SymmetricHashJoin(
            compile_plan(node.probe),
            compile_plan(node.build),
            node.probe_keys,
            node.build_keys,
        )
    if isinstance(node, FilterNode):
        return StreamingFilter(compile_plan(node.child), node.predicates)
    if isinstance(node, SortNode):
        return StreamingSort(compile_plan(node.child), node.keys)
    if isinstance(node, GroupByNode):
        return HashGroupBy(compile_plan(node.child), node.group_keys, node.aggregates)
    if isinstance(node, LimitNode):
        return Limit(compile_plan(node.child), node.limit)
    if isinstance(node, DistinctNode):
        return HashDistinct(compile_plan(node.child), node.keys)
    raise PlanError(f"no streaming operator for plan node {type(node).__name__}")


__all__ = [
    "BATCH_ROWS",
    "PhysicalOperator",
    "StreamingScan",
    "MaterializedSource",
    "StreamingProject",
    "StreamingFilter",
    "SubqueryOp",
    "SymmetricHashJoin",
    "IndexNestedLoopJoin",
    "HashDistinct",
    "HashUnion",
    "HashGroupBy",
    "StreamingSort",
    "Limit",
    "compile_plan",
]
