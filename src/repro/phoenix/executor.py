"""PhoenixConnection: the JDBC-ish entry point.

``execute_query`` plans + runs a SELECT and returns plain dict rows;
``execute_write`` runs INSERT/UPDATE/DELETE with index maintenance.
Dirty-row restarts (Synergy read-committed, paper Sec. VIII-C) are
handled here: a scan observing a marked view row restarts the query.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DirtyReadRestart, PlanError, ReproError
from repro.hbase.client import HBaseClient
from repro.phoenix.catalog import Catalog
from repro.phoenix.operators import compile_plan
from repro.phoenix.planner import CostBasedPlanner, PlannedQuery, Planner
from repro.phoenix.plans import ExecutionContext, Row, _lookup
from repro.phoenix.writes import WriteExecutor
from repro.sim.latency import LatencyCharger
from repro.sql.ast import Delete, Insert, Select, Statement, Update
from repro.sql.parser import parse_statement

MAX_DIRTY_RESTARTS = 32


class PhoenixConnection:
    """One client connection: SQL in, rows (and virtual latency) out."""

    def __init__(
        self,
        client: HBaseClient,
        catalog: Catalog,
        dirty_check_views: bool = False,
        mvcc_version_check: bool = False,
        engine: str = "legacy",
        cost_based: bool = False,
    ) -> None:
        if engine not in ("legacy", "streaming"):
            raise PlanError(f"unknown query engine {engine!r}")
        self.client = client
        self.catalog = catalog
        self.sim = client.cluster.sim
        self.charge = LatencyCharger(self.sim, "phoenix")
        self.dirty_check_views = dirty_check_views
        # Both knobs default to the anchored legacy behavior; the
        # streaming engine and the cost-based planner are opt-in so the
        # Fig. 10-14 / Table 2 plan shapes (and latencies) never move.
        self.engine = engine
        self.cost_based = cost_based
        self.planner = self._build_planner(cost_based)
        self.writer = WriteExecutor(client, catalog)
        self.mvcc_version_check = mvcc_version_check
        self.hashjoin_row_bytes = 150
        self._plan_cache: dict[str, PlannedQuery] = {}

    def _build_planner(self, cost_based: bool) -> Planner:
        if cost_based:
            return CostBasedPlanner(
                self.catalog,
                dirty_check_views=self.dirty_check_views,
                cluster=self.client.cluster,
                cost=self.client.cluster.config.cost,
            )
        return Planner(self.catalog, dirty_check_views=self.dirty_check_views)

    def configure_engine(
        self, engine: str | None = None, cost_based: bool | None = None
    ) -> None:
        """Switch execution engine and/or planner mode on a live
        connection (clears the plan cache so new plans take effect)."""
        if engine is not None:
            if engine not in ("legacy", "streaming"):
                raise PlanError(f"unknown query engine {engine!r}")
            self.engine = engine
        if cost_based is not None and cost_based != self.cost_based:
            self.cost_based = cost_based
            self.planner = self._build_planner(cost_based)
        self._plan_cache.clear()

    # -- queries -----------------------------------------------------------------------
    def plan(self, select: Select | str) -> PlannedQuery:
        if isinstance(select, str):
            cached = self._plan_cache.get(select)
            if cached is not None:
                return cached
            stmt = parse_statement(select)
            if not isinstance(stmt, Select):
                raise PlanError("plan() expects a SELECT statement")
            planned = self.planner.plan_select(stmt)
            self._plan_cache[select] = planned
            return planned
        return self.planner.plan_select(select)

    def execute_query(
        self, select: Select | str, params: tuple[Any, ...] = ()
    ) -> list[dict[str, Any]]:
        planned = self.plan(select)
        self.sim.charge(self.sim.cost.phoenix_statement_ms, "phoenix.statement")
        ctx = ExecutionContext(self, tuple(params))
        attempts = 0
        while True:
            try:
                if self.engine == "streaming":
                    rows = self._run_streaming(planned, ctx)
                else:
                    rows = list(planned.root.execute(ctx))
                break
            except DirtyReadRestart:
                attempts += 1
                self.sim.metrics.counter("phoenix.dirty_restarts").inc()
                if attempts >= MAX_DIRTY_RESTARTS:
                    raise ReproError(
                        "query kept observing in-flight view rows "
                        f"after {attempts} restarts"
                    ) from None
        return [self._shape(planned, row) for row in rows]

    @staticmethod
    def _run_streaming(planned: PlannedQuery, ctx: ExecutionContext) -> list[Row]:
        """One streaming attempt: compile, pull every batch, and close
        the tree on every exit so abandoned scans (LIMIT early-close,
        dirty restarts) release their region windows deterministically."""
        op = compile_plan(planned.root)
        op.open(ctx)
        try:
            rows: list[Row] = []
            while True:
                batch = op.next_batch()
                if batch is None:
                    return rows
                rows.extend(batch)
        finally:
            op.close()

    def stream_query(
        self, select: Select | str, params: tuple[Any, ...] = ()
    ) -> Any:
        """Streaming cursor: yields shaped rows incrementally through
        the operator pipeline. Closing (or abandoning) the iterator
        closes the whole tree, releasing in-flight scanner windows.

        Dirty-read restarts are not retried here — a restartable
        consumer should use :meth:`execute_query`; this cursor is for
        read paths without dirty checking (and for the early-close
        guarantee tests)."""
        planned = self.plan(select)
        self.sim.charge(self.sim.cost.phoenix_statement_ms, "phoenix.statement")
        ctx = ExecutionContext(self, tuple(params))
        op = compile_plan(planned.root)
        op.open(ctx)

        def cursor():
            try:
                while True:
                    batch = op.next_batch()
                    if batch is None:
                        return
                    for row in batch:
                        yield self._shape(planned, row)
            finally:
                op.close()

        return cursor()

    @staticmethod
    def _shape(planned: PlannedQuery, row: Row) -> dict[str, Any]:
        return {name: _lookup(row, src) for name, src in planned.output}

    # -- writes ------------------------------------------------------------------------
    def execute_write(
        self, stmt: Statement | str, params: tuple[Any, ...] = ()
    ) -> int:
        if isinstance(stmt, str):
            stmt = parse_statement(stmt)
        if isinstance(stmt, Insert):
            return self.writer.execute_insert(stmt, tuple(params))
        if isinstance(stmt, Update):
            return self.writer.execute_update(stmt, tuple(params))
        if isinstance(stmt, Delete):
            return self.writer.execute_delete(stmt, tuple(params))
        raise PlanError(f"not a write statement: {stmt}")

    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        """Dispatch on statement type (SELECT -> rows, writes -> count)."""
        stmt = parse_statement(sql)
        if isinstance(stmt, Select):
            return self.execute_query(stmt, params)
        return self.execute_write(stmt, params)

    # -- statistics ---------------------------------------------------------------------
    def analyze(self) -> None:
        """Refresh row-count statistics for every catalog entry."""
        for entry in self.catalog.entries():
            if self.client.has_table(entry.name):
                self.catalog.stats[entry.name] = self.client.cluster.table_row_count(
                    entry.name
                )
