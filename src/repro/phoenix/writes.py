"""Single-row write execution with base-table index maintenance.

The paper's baseline workload transformation only admits write
statements that specify **every key attribute** (Sec. II-D); we enforce
that here. Each logical write fans out to the base table plus all its
covered indexes (Phoenix-style global indexes):

* INSERT: one Put per physical table;
* DELETE: read the old row (for index keys), then one Delete each;
* UPDATE: read-modify-write; indexes touching a changed attribute get a
  Delete of the stale entry plus a Put of the fresh one.
"""

from __future__ import annotations

from typing import Any

from repro.errors import UnsupportedStatementError, WorkloadError
from repro.hbase.client import HBaseClient
from repro.hbase.ops import Delete as HDelete, Get
from repro.phoenix.catalog import Catalog, CatalogEntry
from repro.sql.ast import ColumnRef, Delete, Insert, Literal, Param, Update


def eval_const(expr: Any, params: tuple[Any, ...]) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Param):
        return params[expr.index]
    raise UnsupportedStatementError(f"non-constant expression in write: {expr}")


def key_from_where(
    entry: CatalogEntry, where, params: tuple[Any, ...]
) -> dict[str, Any]:
    """Extract the full primary key from equality conjuncts; reject
    statements that might touch multiple rows."""
    eq: dict[str, Any] = {}
    for cond in where:
        col = cond.left if isinstance(cond.left, ColumnRef) else cond.right
        val = cond.right if isinstance(cond.left, ColumnRef) else cond.left
        if not isinstance(col, ColumnRef) or cond.op != "=":
            raise UnsupportedStatementError(
                f"write WHERE clause must be key-equality only: {cond}"
            )
        eq[col.name] = eval_const(val, params)
    missing = [k for k in entry.key_attrs if k not in eq]
    if missing:
        raise UnsupportedStatementError(
            f"{entry.name}: write must specify all key attributes; "
            f"missing {missing} (multi-row writes are not supported)"
        )
    return eq


class WriteExecutor:
    """Applies row-level writes to a base table and its indexes."""

    def __init__(self, client: HBaseClient, catalog: Catalog) -> None:
        self.client = client
        self.catalog = catalog

    # -- row-level API (used by loaders and the Synergy procedures) -----------------
    def insert_row(
        self, relation: str, row: dict[str, Any], maintain_indexes: bool = True
    ) -> None:
        entry = self.catalog.table_for_relation(relation)
        self._validate_row(entry, row)
        self.client.table(entry.name).put(entry.row_to_put(row))
        if maintain_indexes:
            for index in self.catalog.indexes_for_relation(relation):
                self.client.table(index.name).put(index.row_to_put(row))

    def read_row(self, relation: str, key: dict[str, Any]) -> dict[str, Any] | None:
        entry = self.catalog.table_for_relation(relation)
        result = self.client.table(entry.name).get(Get(entry.encode_key(key)))
        return None if result is None else entry.result_to_row(result)

    def delete_row(self, relation: str, key: dict[str, Any]) -> dict[str, Any] | None:
        """Delete base row + index entries; returns the old row (or None)."""
        entry = self.catalog.table_for_relation(relation)
        old = self.read_row(relation, key)
        if old is None:
            return None
        self.client.table(entry.name).delete(HDelete(entry.encode_key(key)))
        for index in self.catalog.indexes_for_relation(relation):
            self.client.table(index.name).delete(HDelete(index.encode_key(old)))
        return old

    def update_row(
        self, relation: str, key: dict[str, Any], changes: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Read-modify-write; returns the new row, or None when absent."""
        entry = self.catalog.table_for_relation(relation)
        for attr in changes:
            if attr in entry.key_attrs:
                raise UnsupportedStatementError(
                    f"{relation}: updating key attribute {attr!r} is not supported"
                )
        old = self.read_row(relation, key)
        if old is None:
            return None
        new = dict(old)
        new.update(changes)
        self.client.table(entry.name).put(entry.row_to_put(new))
        for index in self.catalog.indexes_for_relation(relation):
            if any(attr in index.attrs for attr in changes):
                old_key = index.encode_key(old)
                new_key = index.encode_key(new)
                if old_key != new_key:
                    self.client.table(index.name).delete(HDelete(old_key))
                self.client.table(index.name).put(index.row_to_put(new))
        return new

    # -- statement-level API --------------------------------------------------------
    def execute_insert(self, stmt: Insert, params: tuple[Any, ...]) -> int:
        entry = self.catalog.table_for_relation(stmt.table)
        columns = stmt.columns or entry.attrs
        if len(columns) != len(stmt.values):
            raise WorkloadError(
                f"INSERT {stmt.table}: {len(columns)} columns vs "
                f"{len(stmt.values)} values"
            )
        row = {c: eval_const(v, params) for c, v in zip(columns, stmt.values)}
        missing = [k for k in entry.key_attrs if k not in row]
        if missing:
            raise UnsupportedStatementError(
                f"INSERT {stmt.table}: missing key attributes {missing}"
            )
        self.insert_row(stmt.table, row)
        return 1

    def execute_update(self, stmt: Update, params: tuple[Any, ...]) -> int:
        entry = self.catalog.table_for_relation(stmt.table)
        key = key_from_where(entry, stmt.where, params)
        changes = {c: eval_const(v, params) for c, v in stmt.assignments}
        return 0 if self.update_row(stmt.table, key, changes) is None else 1

    def execute_delete(self, stmt: Delete, params: tuple[Any, ...]) -> int:
        entry = self.catalog.table_for_relation(stmt.table)
        key = key_from_where(entry, stmt.where, params)
        return 0 if self.delete_row(stmt.table, key) is None else 1

    # -- helpers -----------------------------------------------------------------------
    @staticmethod
    def _validate_row(entry: CatalogEntry, row: dict[str, Any]) -> None:
        unknown = [a for a in row if a not in entry.dtypes]
        if unknown:
            raise WorkloadError(f"{entry.name}: unknown attributes {unknown}")
