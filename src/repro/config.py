"""Cost-model and experiment configuration.

All latency constants used by the simulated cluster live here, in one
dataclass, so that every experiment is reproducible from a single
calibration point and so that nothing about a particular figure is
hard-coded inside an engine.

Calibration anchors (from the paper, Sections IX-B..IX-D):

* Tephra-style MVCC adds **800-900 ms** to every statement (begin +
  commit round trips through the transaction server) — we split this
  into ``mvcc_begin_ms`` + ``mvcc_commit_ms``.
* Acquiring and releasing 100 HBase row locks costs ~571 ms, with a
  sub-linear start (342 ms at 10 locks) attributable to fixed client
  setup cost, and near-linear growth after (2182 ms at 1000 locks).
  We model this as ``lock_client_setup_ms`` once per batch plus two
  ``checkAndPut`` round trips per lock.
* HBase joins are RPC-bound: Phoenix's index nested-loop join issues one
  Get round-trip per probe, a server-side scan streams rows in batches.
* VoltDB executes a single-partition stored procedure in ~1 ms.

The defaults were chosen so that the *relative* results of the paper's
figures emerge from operation counts; see EXPERIMENTS.md for the
measured-vs-paper comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ClusterConfigError


@dataclass(frozen=True)
class CostModel:
    """Virtual-time cost constants, all in milliseconds unless noted."""

    # --- generic RPC / network -------------------------------------------------
    rpc_base_ms: float = 0.8
    """One client <-> region-server round trip (request + response headers)."""

    network_ms_per_kb: float = 0.012
    """Marginal transfer cost per KiB moved between nodes."""

    # --- HBase server-side work ------------------------------------------------
    seek_ms: float = 0.05
    """Positioning a scanner / point lookup inside a region (memstore+HFiles)."""

    read_row_ms: float = 0.004
    """Server-side cost of materializing one row out of the store."""

    write_row_ms: float = 0.01
    """Server-side cost of applying one mutation to the memstore."""

    wal_append_ms: float = 0.35
    """Synchronous WAL append (HDFS pipeline hsync)."""

    phoenix_statement_ms: float = 18.0
    """Client-side per-statement overhead of the Phoenix JDBC driver
    (parse, plan, meta lookups). Calibrated so the cheapest Synergy
    statements land in the tens of milliseconds, as in the paper's
    Figs. 12/14; charged once per statement on every HBase-backed
    system (VoltDB has its own stored-procedure base cost)."""

    scan_batch_rows: int = 1000
    """Rows returned per scanner ``next()`` round trip."""

    # --- MVCC (Tephra-like) ----------------------------------------------------
    mvcc_begin_ms: float = 410.0
    """Start-transaction round trip to the transaction server."""

    mvcc_commit_ms: float = 440.0
    """canCommit + conflict detection + commit round trips."""

    mvcc_read_snapshot_ms: float = 2.0
    """Read-only snapshot handout (Tephra startShort round trip); far
    cheaper than a write transaction but not free."""

    mvcc_version_check_ms: float = 0.0008
    """Per-cell visibility check against the snapshot's exclusion list;
    roughly doubles the server-side cost of a scanned row."""

    # --- Synergy transaction layer ----------------------------------------------
    txlayer_dispatch_ms: float = 1.2
    """Client -> transaction-layer-slave hop for a write request."""

    lock_client_setup_ms: float = 310.0
    """Fixed client-side cost of the stand-alone locking *experiment* batch
    (connection + meta warm-up); charged once per ``LockBatch``, mirrors the
    sub-linear growth of Fig. 11. Not charged on the Synergy write path,
    which holds a warm connection."""

    check_and_put_ms: float = 0.096
    """Server-side compare-and-swap logic on the lock table row, on top
    of the separately charged read half (seek + row materialization,
    0.05 + 0.004 ms — together the original 0.15 ms calibration, so the
    Fig. 11 anchors are preserved now that ``check_and_put`` charges its
    read like a ``get``)."""

    mark_row_ms: float = 0.01
    """Marking/unmarking one view row dirty (update procedure steps 3/5)."""

    # --- VoltDB ------------------------------------------------------------------
    voltdb_proc_base_ms: float = 8.0
    """Client-observed single-partition stored-procedure round trip
    (the paper measures tau at the client over the EC2 network)."""

    voltdb_row_ms: float = 0.0006
    """Per-row in-memory processing cost inside a partition executor."""

    voltdb_multipart_ms: float = 4.0
    """Extra coordination cost of a multi-partition transaction."""

    # --- storage accounting (bytes, not ms) ---------------------------------------
    kv_overhead_bytes: int = 24
    """Per-cell HBase KeyValue framing (key/value lengths, type, timestamp)."""

    voltdb_row_overhead_bytes: int = 8
    """Per-row overhead of the in-memory NewSQL engine."""

    def scaled(self, **overrides: Any) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class ReplicationConfig:
    """Region replication: N copies per region with primary-push WAL
    shipping, bounded-staleness follower reads and promotion-on-crash.

    The default ``replica_count=1`` means *no* replication: no groups
    are created, no WAL taps installed, no shipper daemon runs, and
    every pre-existing code path (and its simulated latency) stays
    bit-identical."""

    replica_count: int = 1
    """Total copies of each region (primary included). 1 disables
    replication entirely; N >= 2 keeps N-1 followers per region."""

    ship_batch_entries: int = 8
    """WAL entries the shipper pushes to one follower per drain step."""

    ship_interval_ms: float = 4.0
    """Virtual pause between shipper drain rounds (the push cadence)."""

    ship_entry_ms: float = 0.02
    """Virtual cost of applying one shipped WAL entry on a follower
    (charged on the shipper daemon's timeline in async mode, on the
    writing client's timeline in ``ack_mode="all"``)."""

    ack_mode: str = "primary"
    """When a replicated edit counts as durably acknowledged:

    * ``"primary"`` — acked once the primary's WAL sync returns;
      followers catch up asynchronously via the shipper daemon.
    * ``"all"`` — the write additionally ships synchronously to every
      live follower (one RPC + per-entry apply charged to the writer)
      before it is acknowledged."""

    staleness_bound_entries: int = 32
    """Bounded-staleness follower reads: a follower may serve a read
    only while its applied-WAL watermark lags the primary's log by at
    most this many entries. Reads are pinned to the watermark, so a
    follower can never return a value that was not acknowledged."""

    anti_affinity: bool = True
    """Never co-host a primary with one of its own followers: follower
    placement excludes the primary's server, and the balancer refuses
    moves that would land a primary on a server holding its follower."""

    def __post_init__(self) -> None:
        if self.replica_count < 1:
            raise ClusterConfigError(
                f"replica_count must be >= 1, got {self.replica_count}"
            )
        if self.ship_batch_entries < 1:
            raise ClusterConfigError(
                f"ship_batch_entries must be >= 1, got "
                f"{self.ship_batch_entries}"
            )
        if self.ack_mode not in ("primary", "all"):
            raise ClusterConfigError(
                f"ack_mode must be 'primary' or 'all', got {self.ack_mode!r}"
            )
        if self.staleness_bound_entries < 0:
            raise ClusterConfigError(
                f"staleness_bound_entries must be >= 0, got "
                f"{self.staleness_bound_entries}"
            )


DEFAULT_REPLICATION_CONFIG = ReplicationConfig()


@dataclass(frozen=True)
class ServingConfig:
    """Serving-layer knobs: the region-server row cache and the
    per-server admission controller with p99-targeted load shedding.

    Everything defaults *off*: ``row_cache_bytes=0`` installs no cache
    and ``admission_queue_ms=None`` installs no admission controller,
    so every pre-existing code path — and therefore all 131 anchored
    figure latencies — stays bit-identical."""

    row_cache_bytes: int = 0
    """Byte budget of the per-server LRU row cache. 0 disables the
    cache entirely (no counters, no lookups, identical charges)."""

    cache_hit_ms: float = 0.01
    """Server-side cost of serving a point read out of the row cache —
    replaces the ``seek_ms + read_row_ms`` store lookup on a hit."""

    cache_entry_overhead_bytes: int = 64
    """Fixed accounting overhead per cached entry (hash-map slot, key
    copy, LRU links) added to the result payload when charging the
    cache's byte budget."""

    admission_queue_ms: float | None = None
    """Bounded request queue, expressed as the longest virtual backlog
    (ms of queued work) a server accepts before shedding an arriving
    request. ``None`` disables admission control entirely."""

    p99_budget_ms: float | None = None
    """Adaptive shedding target: when the p99 of recently completed
    requests on a server exceeds this budget, the effective queue bound
    shrinks by ``p99 / budget`` until the tail comes back under it.
    ``None`` leaves the queue bound static."""

    p99_window: int = 128
    """Completed-request latencies kept per server for the p99 estimate."""

    p99_refresh_every: int = 16
    """Completions between pressure re-estimates (keeps the estimator
    off the per-request hot path; refresh cadence is deterministic)."""

    qos_weights: tuple[tuple[str, float], ...] = ()
    """Per-table QoS weights as ``(table_name, weight)`` pairs (tuple,
    not dict, so the config stays hashable/frozen). A table with weight
    w tolerates a backlog of ``w * admission_queue_ms`` before it is
    shed — under pressure, low-weight (batch) tables shed first and
    high-weight (interactive) tables shed last. Unlisted tables get
    weight 1.0."""

    shed_retry_after_ms: float = 2.0
    """Retry-after hint carried by ``ServerOverloadedError``; clients
    back off at least this long before re-offering a shed request."""

    def __post_init__(self) -> None:
        if self.row_cache_bytes < 0:
            raise ClusterConfigError(
                f"row_cache_bytes must be >= 0, got {self.row_cache_bytes}"
            )
        if self.cache_hit_ms < 0:
            raise ClusterConfigError(
                f"cache_hit_ms must be >= 0, got {self.cache_hit_ms}"
            )
        if self.cache_entry_overhead_bytes < 0:
            raise ClusterConfigError(
                f"cache_entry_overhead_bytes must be >= 0, got "
                f"{self.cache_entry_overhead_bytes}"
            )
        if self.admission_queue_ms is not None and self.admission_queue_ms <= 0:
            raise ClusterConfigError(
                f"admission_queue_ms must be positive (or None to disable "
                f"admission control), got {self.admission_queue_ms}"
            )
        if self.p99_budget_ms is not None and self.p99_budget_ms <= 0:
            raise ClusterConfigError(
                f"p99_budget_ms must be positive (or None to disable "
                f"adaptive shedding), got {self.p99_budget_ms}"
            )
        if self.p99_budget_ms is not None and self.admission_queue_ms is None:
            raise ClusterConfigError(
                "p99_budget_ms requires admission_queue_ms (adaptive "
                "shedding scales the queue bound)"
            )
        if self.p99_window < 1:
            raise ClusterConfigError(
                f"p99_window must be >= 1, got {self.p99_window}"
            )
        if self.p99_refresh_every < 1:
            raise ClusterConfigError(
                f"p99_refresh_every must be >= 1, got {self.p99_refresh_every}"
            )
        for pair in self.qos_weights:
            if len(pair) != 2 or not pair[0] or pair[1] <= 0:
                raise ClusterConfigError(
                    f"qos_weights entries must be (table, positive weight) "
                    f"pairs, got {pair!r}"
                )
        if self.shed_retry_after_ms < 0:
            raise ClusterConfigError(
                f"shed_retry_after_ms must be >= 0, got "
                f"{self.shed_retry_after_ms}"
            )

    @property
    def cache_enabled(self) -> bool:
        return self.row_cache_bytes > 0

    @property
    def admission_enabled(self) -> bool:
        return self.admission_queue_ms is not None


DEFAULT_SERVING_CONFIG = ServingConfig()


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster (mirrors the paper's EC2 testbed)."""

    num_region_servers: int = 5
    regions_per_table: int = 5
    hfile_flush_threshold_rows: int = 50_000
    max_versions: int = 1
    seed: int = 20170904  # CLUSTER'17 conference date

    region_split_threshold_bytes: int | None = None
    """Size-triggered mid-key region splitting: a region whose
    approximate size reaches this many bytes after a write batch is
    split (recursively, until every daughter is below the threshold or
    down to a single row). ``None`` disables splitting entirely, which
    keeps every pre-existing experiment's region layout — and therefore
    its simulated latency — bit-identical."""

    max_location_retries: int = 16
    """Relocations one client operation may pay before giving up with a
    typed ``RegionRetriesExhaustedError`` — bounds the meta-retry loop
    when a key range keeps resolving to unavailable regions (deep split
    chains, repeated failover). Each ``HTable`` picks this up at
    construction time."""

    cost: CostModel = field(default_factory=CostModel)

    replication: ReplicationConfig = field(default_factory=ReplicationConfig)

    serving: ServingConfig = field(default_factory=ServingConfig)

    def __post_init__(self) -> None:
        if self.num_region_servers < 1:
            raise ClusterConfigError(
                f"num_region_servers must be >= 1, got "
                f"{self.num_region_servers}"
            )
        if self.regions_per_table < 1:
            raise ClusterConfigError(
                f"regions_per_table must be >= 1, got {self.regions_per_table}"
            )
        if (
            self.region_split_threshold_bytes is not None
            and self.region_split_threshold_bytes <= 0
        ):
            raise ClusterConfigError(
                f"region_split_threshold_bytes must be positive (or None "
                f"to disable splitting), got "
                f"{self.region_split_threshold_bytes}"
            )
        if self.max_location_retries < 1:
            raise ClusterConfigError(
                f"max_location_retries must be >= 1, got "
                f"{self.max_location_retries}"
            )


DEFAULT_CLUSTER_CONFIG = ClusterConfig()


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the benchmark harness."""

    repetitions: int = 10
    """The paper runs every experiment 10 times and reports mean + stderr."""

    jitter_fraction: float = 0.02
    """Multiplicative latency jitter (deterministic, seeded) so repeated
    runs produce a realistic non-zero standard error, as in the paper."""

    num_customers: int = 1000
    """TPC-W scale for the full-benchmark experiments. The paper uses 1M;
    the pure-Python simulator defaults to 1000 (linear-scaling generator,
    ratios preserved: NUM_ITEMS = 10 x NUM_CUST, Customer:Orders = 1:10)."""

    microbench_scales: tuple[int, ...] = (50, 500, 5000)
    """Micro-benchmark customer counts (paper: 500, 5k, 50k; we shift one
    decade down by default — pass (500, 5000, 50000) to match exactly)."""

    lock_counts: tuple[int, ...] = (10, 100, 1000)

    seed: int = 1710_01792  # arXiv id of the paper


DEFAULT_EXPERIMENT_CONFIG = ExperimentConfig()
