"""Cross-system federation mediator.

The five evaluated systems run side by side everywhere else in the
repo; this module lets them cooperate. A :class:`Mediator` fronts a
registry of :class:`~repro.systems.base.EvaluatedSystem` backends and,
per workload statement, follows the decomposer → planner → non-blocking
executor shape of a federated query processor:

* **decompose** — a SELECT either routes *whole* to one backend, or is
  split into per-binding single-table sub-plans (one fragment per FROM
  binding, pushable filters included; derived tables become their own
  fragments) that may land on *different* backends;
* **plan** — the route is chosen from each backend's truthful
  ``supports()`` plus a cost signal: Phoenix-backed systems are priced
  with the PR 8 :class:`~repro.phoenix.planner.CostBasedPlanner`
  estimates over their own catalogs (so Synergy's view rewrites
  genuinely change its price), VoltDB with an arithmetic model over its
  in-memory row counts. The online
  :class:`~repro.federation.advisor.RoutingAdvisor` overrides estimates
  whose observed EWMA has diverged;
* **execute** — fragments are *lazy streaming pulls*: each sub-plan
  executes on its backend only when the merge tree first pulls from it
  (a satisfied LIMIT early-closes unexecuted fragments), and results
  merge through the non-blocking operators of
  :mod:`repro.phoenix.operators` (symmetric hash joins, hash group-by,
  streaming sort/limit) mirroring the single-system plan shape, so
  routed execution is row-for-row identical to single-system execution
  (pinned by the equivalence suite).

Writes broadcast to every supporting backend — that is what keeps the
backends convergent and routing row-equivalent. Virtual time: the
mediator has its own jitter-free :class:`Simulation`; backend
executions advance it by the backend's observed virtual latency, merge
operators charge it directly, and under a scheduled multi-client run
each backend is a serial resource at the mediator (two clients routed
to the same backend queue; different backends overlap).

Everything is opt-in: nothing here is imported by the anchored
experiment paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import PlanError, ReproError, SqlError
from repro.federation.advisor import RoutingAdvisor
from repro.phoenix.operators import (
    HashDistinct,
    HashGroupBy,
    Limit,
    PhysicalOperator,
    StreamingFilter,
    StreamingProject,
    StreamingSort,
    SymmetricHashJoin,
)
from repro.phoenix.planner import CostBasedPlanner
from repro.phoenix.plans import ColumnPredicate, ExecutionContext, ValuePredicate
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.sim.latency import LatencyCharger
from repro.sim.rng import derive_seed
from repro.sql.analyzer import AnalyzedSelect, analyze_select
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    FuncCall,
    Literal,
    Param,
    Select,
    Star,
    TableRef,
)
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql
from repro.systems.base import EvaluatedSystem, SystemDescription, SystemSession


class FederationError(ReproError):
    """Mediator routing or merge failure."""


class FederationWriteHazardError(FederationError):
    """Refused to re-execute a write whose effects may already have
    applied on a backend that cannot roll back (auto-commit sessions
    report ``rolls_back_on_abort == False``) — retrying would
    double-apply."""


# ---------------------------------------------------------------- route log
@dataclass
class RouteRecord:
    """One routed statement, JSON-friendly and fully deterministic."""

    seq: int
    statement_id: str
    mode: str  # "whole" | "split" | "broadcast"
    assignments: list[dict] = field(default_factory=list)
    """Per sub-plan: fragment label, backend, executed flag, virtual ms."""
    total_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "statement_id": self.statement_id,
            "mode": self.mode,
            "assignments": [
                {**a, "ms": round(a["ms"], 6)} for a in self.assignments
            ],
            "total_ms": round(self.total_ms, 6),
        }


@dataclass
class _Fragment:
    binding: str
    sql: str
    params: tuple[Any, ...]
    attrs: tuple[str, ...]
    derived: bool = False

    @property
    def label(self) -> str:
        return self.binding


class _MediatorConn:
    """The minimal connection surface the streaming operators touch:
    ``sim`` (for metrics and charges), ``charge.transfer`` (symmetric
    hash join shuffle) and ``hashjoin_row_bytes``. Merge-side work is
    thereby metered on the mediator's own virtual clock."""

    hashjoin_row_bytes = 150

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self.charge = LatencyCharger(sim, "federation")


class _FragmentSource(PhysicalOperator):
    """Leaf of the merge tree: executes its sub-plan on the assigned
    backend at the FIRST pull (a lazy streaming pull — LIMIT-abandoned
    fragments never run), then remaps the backend's shaped rows to the
    mediator's ``(binding, attr)`` row dialect."""

    def __init__(
        self,
        mediator: "Mediator",
        fragment: _Fragment,
        backend: str,
        record: RouteRecord,
        slot: int,
    ) -> None:
        self.mediator = mediator
        self.fragment = fragment
        self.backend = backend
        self.record = record
        self.slot = slot
        self._rows: list[dict] | None = None
        self._pos = 0

    def open(self, ctx: ExecutionContext) -> None:
        self._ctx = ctx

    def next_batch(self) -> list[dict] | None:
        if self._rows is None:
            binding = self.fragment.binding
            rows, ms = self.mediator._run_on_backend(
                self.backend,
                self.fragment.sql,
                self.fragment.params,
                advisor_key=f"{self.record.statement_id}#{binding}",
            )
            slot = self.record.assignments[self.slot]
            slot["executed"] = True
            slot["ms"] = ms
            self._rows = [
                {(binding, k): v for k, v in row.items()} for row in rows
            ]
        if self._pos >= len(self._rows):
            return None
        batch = self._rows[self._pos : self._pos + 256]
        self._pos += len(batch)
        return batch

    def _label(self) -> str:
        return f"FRAGMENT {self.fragment.binding} @ {self.backend}"


# ---------------------------------------------------------------- mediator
class Mediator(EvaluatedSystem):
    """Federated execution over an ordered backend registry.

    ``mode`` picks the decomposition policy: ``"auto"`` (split a
    multi-binding SELECT when the summed best fragment estimates beat
    the best whole-statement estimate, or when no backend supports the
    whole statement), ``"whole"`` (never split) or ``"split"`` (always
    split eligible statements). ``pin`` restricts routing to one
    backend — the pinned-single-system baseline the bench sweeps
    against, running through the identical mediator code path.
    """

    description = SystemDescription(
        name="Federation",
        mv_selection="Delegated to backends",
        concurrency_control="Delegated to backends",
    )

    def __init__(
        self,
        backends: Mapping[str, EvaluatedSystem],
        schema: Schema,
        workload: Workload | None = None,
        seed: int = 171001792,
        mode: str = "auto",
        advisor: RoutingAdvisor | None = None,
        pin: str | None = None,
    ) -> None:
        if not backends:
            raise FederationError("mediator needs at least one backend")
        if mode not in ("auto", "whole", "split"):
            raise FederationError(f"unknown decomposition mode {mode!r}")
        if pin is not None and pin not in backends:
            raise FederationError(f"pinned backend {pin!r} is not registered")
        self.backends: dict[str, EvaluatedSystem] = dict(backends)
        self.schema = schema
        self.mode = mode
        self.pin = pin
        first = next(iter(self.backends.values()))
        self._sim = Simulation(
            cost=first.sim.cost,
            seed=derive_seed(seed, "federation/sim"),
            jitter_fraction=0.0,
        )
        self._conn = _MediatorConn(self._sim)
        self.advisor = advisor or RoutingAdvisor(seed=seed)
        self.route_log: list[RouteRecord] = []
        self._statements: dict[str, str] = {}
        self._by_text: dict[str, str] = {}
        self._parsed: dict[str, tuple[Any, AnalyzedSelect | None]] = {}
        self._estimates: dict[tuple[str, str], float] = {}
        if workload is not None:
            for stmt in workload:
                self._statements[stmt.statement_id] = stmt.sql
                self._by_text.setdefault(stmt.sql, stmt.statement_id)

    # -- evaluated-system surface --------------------------------------------------
    @property
    def sim(self) -> Simulation:
        return self._sim

    def statement(self, statement_id: str) -> str:
        return self._statements[statement_id]

    def register_statement(self, statement_id: str, sql: str) -> None:
        self._statements[statement_id] = sql
        self._by_text.setdefault(sql, statement_id)
        for backend in self.backends.values():
            try:
                backend.statement(statement_id)
            except KeyError:
                backend.register_statement(statement_id, sql)

    def supports(self, statement_id: str) -> bool:
        sql = self._statements.get(statement_id)
        if sql is None:
            return False
        stmt, analyzed = self._parse(sql)
        if not isinstance(stmt, Select):
            return any(
                self._backend_supports(name, statement_id, sql)
                for name in self._routable()
            )
        if any(
            self._backend_supports(name, statement_id, sql)
            for name in self._routable()
        ):
            return True
        if self.mode == "whole":
            return False
        return self._split_eligible(stmt, analyzed)

    def load_row(self, relation: str, row: dict[str, Any]) -> None:
        for backend in self.backends.values():
            backend.load_row(relation, row)

    def finish_load(self) -> None:
        for backend in self.backends.values():
            backend.finish_load()
        self._sim.reset_clock()

    def db_size_bytes(self) -> int:
        return sum(b.db_size_bytes() for b in self.backends.values())

    def open_session(self, client_name: str = "client") -> "FederatedSession":
        return FederatedSession(self, client_name)

    # -- execution ----------------------------------------------------------------
    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        return self._execute(sql, params, sessions=None)

    def _execute(
        self,
        sql: str,
        params: tuple[Any, ...],
        sessions: "dict[str, SystemSession] | None",
    ) -> Any:
        # accept either a statement id or statement text (the base
        # class's timed_id resolves ids to text before calling execute)
        if sql in self._statements:
            sid: str | None = sql
            canonical = self._statements[sql]
        else:
            sid = self._by_text.get(sql)
            canonical = sql
        stmt, analyzed = self._parse(canonical)
        sw = self._sim.stopwatch()
        if isinstance(stmt, Select):
            rows, record = self._route_select(
                sid or canonical, sid, canonical, analyzed, params
            )
        else:
            rows, record = self._broadcast_write(
                sid or canonical, sid, canonical, params, sessions
            )
        record.total_ms = sw.stop()
        self.route_log.append(record)
        return rows

    # -- select routing -----------------------------------------------------------
    def _route_select(
        self,
        label: str,
        sid: str | None,
        canonical: str,
        analyzed: AnalyzedSelect,
        params: tuple[Any, ...],
    ) -> tuple[list[dict], RouteRecord]:
        record = RouteRecord(
            seq=len(self.route_log), statement_id=label, mode="whole"
        )
        whole = self._whole_candidates(sid, canonical)
        eligible = self._split_eligible(analyzed.select, analyzed)
        use_split = False
        if self.mode == "split":
            use_split = eligible
        elif self.mode == "auto":
            if not whole:
                use_split = True
            elif eligible:
                use_split = self._split_estimate(label, analyzed, params) < min(
                    self.advisor.advised_cost(label, name, est)[0]
                    for name, est in whole
                )
        if use_split:
            if not eligible:
                raise FederationError(
                    f"{label}: statement cannot be decomposed"
                )
            record.mode = "split"
            return self._execute_split(label, analyzed, params, record), record
        if not whole:
            raise FederationError(
                f"{label}: no backend supports the whole statement "
                "and it cannot be decomposed"
            )
        chosen = self.advisor.choose(label, whole, self._sim.clock.now_ms)
        rows, ms = self._run_on_backend(
            chosen,
            self._backend_text(chosen, sid, canonical),
            params,
            advisor_key=label,
        )
        record.assignments.append(
            {"fragment": "*", "backend": chosen, "executed": True, "ms": ms}
        )
        return rows, record

    def _execute_split(
        self,
        label: str,
        analyzed: AnalyzedSelect,
        params: tuple[Any, ...],
        record: RouteRecord,
    ) -> list[dict]:
        fragments = self._decompose(analyzed, params)
        sources: dict[str, PhysicalOperator] = {}
        for fragment in fragments:
            frag_label = f"{label}#{fragment.label}"
            candidates = [
                (name, self._estimate(name, fragment.sql))
                for name in self._routable()
                if self._sql_supported(name, fragment.sql)
            ]
            chosen = self.advisor.choose(
                frag_label, candidates, self._sim.clock.now_ms
            )
            slot = len(record.assignments)
            record.assignments.append(
                {
                    "fragment": fragment.label,
                    "backend": chosen,
                    "executed": False,
                    "ms": 0.0,
                }
            )
            sources[fragment.binding] = _FragmentSource(
                self, fragment, chosen, record, slot
            )
        derived_attrs = {f.binding: f.attrs for f in fragments if f.derived}
        root, output = self._build_merge(analyzed, sources, derived_attrs)
        ctx = ExecutionContext(self._conn, params)  # type: ignore[arg-type]
        root.open(ctx)
        return list(root.rows())

    def _split_estimate(
        self, label: str, analyzed: AnalyzedSelect, params: tuple[Any, ...]
    ) -> float:
        total = 0.0
        for fragment in self._decompose(analyzed, params):
            frag_label = f"{label}#{fragment.label}"
            best = min(
                self.advisor.advised_cost(
                    frag_label, name, self._estimate(name, fragment.sql)
                )[0]
                for name in self._routable()
                if self._sql_supported(name, fragment.sql)
            )
            total += best
        return total

    # -- write broadcast ------------------------------------------------------------
    def _broadcast_write(
        self,
        label: str,
        sid: str | None,
        canonical: str,
        params: tuple[Any, ...],
        sessions: "dict[str, SystemSession] | None",
    ) -> tuple[Any, RouteRecord]:
        record = RouteRecord(
            seq=len(self.route_log), statement_id=label, mode="broadcast"
        )
        targets = [
            name
            for name in self._routable()
            if self._backend_supports(name, sid, canonical)
        ]
        if not targets:
            raise FederationError(f"{label}: no backend supports this write")
        ctx = self._sim.concurrency
        clock = self._sim.clock
        resources = [("federation", name) for name in targets]
        if ctx is not None:
            wait = ctx.serial_delay_ms(resources, clock.now_ms)
            if wait > 0:
                clock.advance(wait)
                self._sim.metrics.timer("federation.queue_wait").record(wait)
        result: Any = None
        slowest = 0.0
        for name in targets:
            text = self._backend_text(name, sid, canonical)
            if sessions is not None:
                sw = self.backends[name].sim.stopwatch()
                out = sessions[name].execute(text, params)
                ms = sw.stop()
            else:
                out, ms = self.backends[name].timed(text, params)
            self.advisor.observe(label, name, ms)
            record.assignments.append(
                {"fragment": "*", "backend": name, "executed": True, "ms": ms}
            )
            slowest = max(slowest, ms)
            if result is None:
                result = out
        # the fan-out is concurrent in virtual time: the mediator waits
        # for the slowest backend, not the sum
        clock.advance(slowest)
        if ctx is not None:
            ctx.serial_occupy(resources, clock.now_ms)
        return result, record

    # -- backend execution ----------------------------------------------------------
    def _run_on_backend(
        self,
        name: str,
        sql: str,
        params: tuple[Any, ...],
        advisor_key: str,
    ) -> tuple[Any, float]:
        """Execute one sub-plan on a backend, queueing on the backend's
        mediator-level serial resource under multi-client scheduling and
        advancing the mediator clock by the observed virtual latency."""
        ctx = self._sim.concurrency
        clock = self._sim.clock
        resource = ("federation", name)
        if ctx is not None:
            wait = ctx.serial_delay_ms((resource,), clock.now_ms)
            if wait > 0:
                clock.advance(wait)
                self._sim.metrics.timer("federation.queue_wait").record(wait)
        rows, ms = self.backends[name].timed(sql, params)
        self.advisor.observe(advisor_key, name, ms)
        self._sim.metrics.timer(f"federation.backend.{name}").record(ms)
        clock.advance(ms)
        if ctx is not None:
            ctx.serial_occupy((resource,), clock.now_ms)
        return rows, ms

    # -- candidates and estimates ----------------------------------------------------
    def _routable(self) -> tuple[str, ...]:
        if self.pin is not None:
            return (self.pin,)
        return tuple(self.backends)

    def _whole_candidates(
        self, sid: str | None, canonical: str
    ) -> list[tuple[str, float]]:
        out = []
        for name in self._routable():
            if not self._backend_supports(name, sid, canonical):
                continue
            out.append(
                (name, self._estimate(name, self._backend_text(name, sid, canonical)))
            )
        return out

    def _backend_text(self, name: str, sid: str | None, canonical: str) -> str:
        """The statement text a backend executes: its own (possibly
        view-rewritten) registered text for workload ids, the canonical
        text for ad-hoc SQL."""
        if sid is None:
            return canonical
        try:
            return self.backends[name].statement(sid)
        except KeyError:
            return canonical

    def _backend_supports(
        self, name: str, sid: str | None, canonical: str
    ) -> bool:
        if sid is not None:
            return self.backends[name].supports(sid)
        return self._sql_supported(name, canonical)

    def _sql_supported(self, name: str, sql: str) -> bool:
        backend = self.backends[name]
        scheme_for = getattr(backend, "scheme_for", None)
        if scheme_for is None:
            return True
        stmt, _ = self._parse(sql)
        if isinstance(stmt, Select):
            return scheme_for(sql, stmt=stmt) is not None
        return backend._write_supported(stmt)  # type: ignore[attr-defined]

    def _estimate(self, name: str, sql: str) -> float:
        key = (name, sql)
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        backend = self.backends[name]
        stmt, analyzed = self._parse(sql)
        if getattr(backend, "scheme_for", None) is not None:
            ms = self._voltdb_estimate(backend, analyzed)
        else:
            ms = self._phoenix_estimate(backend, sql)
            if ms is None:
                ms = self._fallback_estimate(backend, analyzed)
        self._estimates[key] = ms
        return ms

    def _phoenix_estimate(
        self, backend: EvaluatedSystem, sql: str
    ) -> float | None:
        inner = backend if hasattr(backend, "catalog") else getattr(
            backend, "system", None
        )
        if inner is None or not hasattr(inner, "catalog"):
            return None
        try:
            planner = CostBasedPlanner(
                inner.catalog,
                cluster=getattr(inner, "cluster", None),
                cost=backend.sim.cost,
            )
            planned = planner.plan_select(parse_statement(sql))
        except ReproError:
            return None
        est = getattr(planned.root, "_est", None)
        return float(est[1]) if est else None

    def _voltdb_estimate(
        self, backend: EvaluatedSystem, analyzed: AnalyzedSelect | None
    ) -> float:
        cost = backend.sim.cost
        tables = backend.engine.tables  # type: ignore[attr-defined]
        total = 1.0
        if analyzed is not None:
            for b, rel in analyzed.bindings.items():
                if rel is None or rel not in tables:
                    total += 100.0  # derived / unknown: nominal charge
                    continue
                table = tables[rel]
                eq_attrs = {
                    f.attr
                    for f in analyzed.filters_on(b)
                    if f.op == "=" and isinstance(f.value, (Literal, Param))
                }
                if any(table.has_index(a) for a in eq_attrs):
                    total += 1.0
                else:
                    total += float(len(table.rows))
        return cost.voltdb_proc_base_ms + cost.voltdb_row_ms * total

    def _fallback_estimate(
        self, backend: EvaluatedSystem, analyzed: AnalyzedSelect | None
    ) -> float:
        cost = backend.sim.cost
        rows = 100.0
        if analyzed is not None:
            rows = float(len(analyzed.bindings)) * 100.0
        return cost.rpc_base_ms + cost.read_row_ms * rows

    # -- decomposition ----------------------------------------------------------------
    def _parse(self, sql: str) -> tuple[Any, AnalyzedSelect | None]:
        cached = self._parsed.get(sql)
        if cached is not None:
            return cached
        stmt = parse_statement(sql)
        analyzed = (
            analyze_select(stmt, self.schema) if isinstance(stmt, Select) else None
        )
        self._parsed[sql] = (stmt, analyzed)
        return stmt, analyzed

    def _split_eligible(
        self, stmt: Any, analyzed: AnalyzedSelect | None
    ) -> bool:
        """A SELECT splits when it has >= 2 FROM bindings and every
        derived table is parameter-free (a reparsed derived fragment
        would renumber ``?`` placeholders)."""
        if not isinstance(stmt, Select) or analyzed is None:
            return False
        if len(stmt.from_items) < 2:
            return False
        for item in stmt.from_items:
            if isinstance(item, DerivedTable) and _contains_param(item.select):
                return False
        return True

    def _decompose(
        self, analyzed: AnalyzedSelect, params: tuple[Any, ...]
    ) -> list[_Fragment]:
        fragments: list[_Fragment] = []
        for item in analyzed.select.from_items:
            if isinstance(item, DerivedTable):
                fragments.append(
                    _Fragment(
                        binding=item.binding,
                        sql=to_sql(item.select),
                        params=(),
                        attrs=self._select_output_names(item.select),
                        derived=True,
                    )
                )
                continue
            assert isinstance(item, TableRef)
            binding = item.binding
            conds: list[str] = []
            values: list[Any] = []
            for f in analyzed.filters_on(binding):
                if not isinstance(f.value, (Literal, Param)):
                    continue  # degenerate column-column filter: merge-side
                conds.append(f"{binding}.{f.attr} {f.op} ?")
                values.append(
                    f.value.value
                    if isinstance(f.value, Literal)
                    else params[f.value.index]
                )
            sql = f"SELECT * FROM {item.name} as {binding}"
            if conds:
                sql += " WHERE " + " and ".join(conds)
            fragments.append(
                _Fragment(
                    binding=binding,
                    sql=sql,
                    params=tuple(values),
                    attrs=self.schema.relation(item.name).attribute_names,
                )
            )
        return fragments

    def _select_output_names(self, select: Select) -> tuple[str, ...]:
        analyzed = analyze_select(select, self.schema)
        spec = self._output_spec(
            analyzed,
            {
                item.binding: self._select_output_names(item.select)
                for item in select.from_items
                if isinstance(item, DerivedTable)
            },
        )
        return tuple(name for name, _ in spec)

    # -- merge construction ------------------------------------------------------------
    def _build_merge(
        self,
        analyzed: AnalyzedSelect,
        sources: dict[str, PhysicalOperator],
        derived_attrs: dict[str, tuple[str, ...]],
    ) -> tuple[PhysicalOperator, tuple[tuple[str, Any], ...]]:
        """Compose the mediator-side plan over fragment sources,
        mirroring the single-system planner's composition order (joins →
        group-by → distinct → sort → limit → project) so the output is
        row- and name-identical."""
        select = analyzed.select
        bindings = list(analyzed.bindings)
        root = sources[bindings[0]]
        joined = [bindings[0]]
        remaining = bindings[1:]
        consumed: set[int] = set()
        while remaining:
            next_b = None
            for b in remaining:
                if any(
                    j.is_equi and j.involves(b)
                    and (j.left_binding in joined or j.right_binding in joined)
                    for j in analyzed.joins
                ):
                    next_b = b
                    break
            if next_b is None:
                next_b = remaining[0]  # cartesian attach
            remaining.remove(next_b)
            left_keys: list[tuple[str, str]] = []
            right_keys: list[tuple[str, str]] = []
            for i, j in enumerate(analyzed.joins):
                if i in consumed or not j.is_equi:
                    continue
                if j.left_binding in joined and j.right_binding == next_b:
                    left_keys.append((j.left_binding, j.left_attr))
                    right_keys.append((next_b, j.right_attr))
                elif j.right_binding in joined and j.left_binding == next_b:
                    left_keys.append((j.right_binding, j.right_attr))
                    right_keys.append((next_b, j.left_attr))
                else:
                    continue
                consumed.add(i)
            root = SymmetricHashJoin(
                root, sources[next_b], tuple(left_keys), tuple(right_keys)
            )
            joined.append(next_b)

        residuals: list[Any] = []
        for i, j in enumerate(analyzed.joins):
            if i in consumed:
                continue
            residuals.append(
                ColumnPredicate(
                    left=(j.left_binding, j.left_attr),
                    op=j.op,
                    right=(j.right_binding, j.right_attr),
                )
            )
        for f in analyzed.filters:
            if isinstance(f.value, ColumnRef):
                # degenerate same-binding column comparison
                residuals.append(
                    ColumnPredicate(
                        left=(f.binding, f.attr),
                        op=f.op,
                        right=(f.binding, f.value.name),
                    )
                )
            elif analyzed.bindings[f.binding] is None:
                # filter on a derived binding: not pushed into the
                # fragment, applied at the mediator
                residuals.append(
                    ValuePredicate(
                        binding=f.binding, attr=f.attr, op=f.op, value_expr=f.value
                    )
                )
        if residuals:
            root = StreamingFilter(root, tuple(residuals))

        has_aggregates = any(isinstance(p, FuncCall) for p in select.projections)
        output = self._output_spec(analyzed, derived_attrs)
        if select.group_by or has_aggregates:
            root = self._add_group_by(root, analyzed)
        if select.distinct:
            root = HashDistinct(root, keys=tuple(src for _, src in output))
        if select.order_by:
            keys = tuple(
                (self._source_for(o.expr, analyzed), o.descending)
                for o in select.order_by
            )
            root = StreamingSort(root, keys)
        if select.limit is not None:
            root = Limit(root, select.limit)
        return StreamingProject(root, output), output

    def _add_group_by(
        self, root: PhysicalOperator, analyzed: AnalyzedSelect
    ) -> PhysicalOperator:
        select = analyzed.select
        group_keys = tuple(
            self._source_for(g, analyzed) for g in select.group_by
        )
        aggregates: list[tuple[str, str, Any]] = []
        for p in select.projections:
            if isinstance(p, FuncCall):
                if p.star:
                    source = None
                else:
                    if len(p.args) != 1 or not isinstance(p.args[0], ColumnRef):
                        raise PlanError(f"unsupported aggregate argument: {p}")
                    source = self._source_for(p.args[0], analyzed)
                aggregates.append((str(p), p.name, source))
        for o in select.order_by:
            if isinstance(o.expr, FuncCall) and not any(
                a[0] == str(o.expr) for a in aggregates
            ):
                src = (
                    None
                    if o.expr.star
                    else self._source_for(o.expr.args[0], analyzed)
                )
                aggregates.append((str(o.expr), o.expr.name, src))
        return HashGroupBy(root, group_keys, tuple(aggregates))

    def _source_for(self, expr: Any, analyzed: AnalyzedSelect) -> Any:
        if isinstance(expr, ColumnRef):
            if expr.qualifier is not None:
                return (expr.qualifier, expr.name)
            owners = [
                b
                for b, rel in analyzed.bindings.items()
                if rel is not None
                and self.schema.has_relation(rel)
                and self.schema.relation(rel).has_attribute(expr.name)
            ]
            if len(owners) == 1:
                return (owners[0], expr.name)
            if not owners:
                return expr.name  # aggregate alias / bare-name lookup
            raise SqlError(f"ambiguous column {expr.name!r}")
        if isinstance(expr, FuncCall):
            return str(expr)
        raise PlanError(f"unsupported expression in this clause: {expr}")

    def _output_spec(
        self,
        analyzed: AnalyzedSelect,
        derived_attrs: dict[str, tuple[str, ...]],
    ) -> tuple[tuple[str, Any], ...]:
        select = analyzed.select
        out: list[tuple[str, Any]] = []
        for p in select.projections:
            if isinstance(p, Star):
                targets = (
                    [p.qualifier]
                    if p.qualifier is not None
                    else list(analyzed.bindings)
                )
                for b in targets:
                    rel = analyzed.bindings[b]
                    if rel is None:
                        attrs: tuple[str, ...] = derived_attrs[b]
                    else:
                        attrs = tuple(self.schema.relation(rel).attribute_names)
                    for a in attrs:
                        out.append((a, (b, a)))
            elif isinstance(p, ColumnRef):
                out.append((p.name, self._source_for(p, analyzed)))
            elif isinstance(p, FuncCall):
                out.append((str(p), str(p)))
            else:
                raise PlanError(f"unsupported projection {p}")
        seen: dict[str, int] = {}
        final: list[tuple[str, Any]] = []
        for name, src in out:
            if name in seen:
                seen[name] += 1
                qualified = (
                    f"{src[0]}.{name}"
                    if isinstance(src, tuple)
                    else f"{name}_{seen[name]}"
                )
                final.append((qualified, src))
            else:
                seen[name] = 0
                final.append((name, src))
        return tuple(final)


def _contains_param(select: Select) -> bool:
    def expr_has(expr: Any) -> bool:
        if isinstance(expr, Param):
            return True
        args = getattr(expr, "args", None)
        if args:
            return any(expr_has(a) for a in args)
        return False

    for cond in select.where:
        if expr_has(cond.left) or expr_has(cond.right):
            return True
    for item in select.from_items:
        if isinstance(item, DerivedTable) and _contains_param(item.select):
            return True
    return False


# ---------------------------------------------------------------- sessions
class FederatedSession(SystemSession):
    """One virtual client's connection to the federation.

    Reads route exactly like :meth:`Mediator.execute`. Writes broadcast
    through per-backend *sessions*, so Tephra-backed backends buffer
    them transactionally while auto-commit backends (Synergy, VoltDB)
    apply immediately — which is why the retry path below exists:

    * every write executed inside the session is tracked with the set
      of backends where it has *already applied irrevocably* (session
      ``rolls_back_on_abort`` False);
    * ``abort()`` rolls back what can be rolled back, and **poisons**
      the writes that cannot be;
    * re-executing a poisoned write raises
      :class:`FederationWriteHazardError` instead of double-applying.
    """

    system: Mediator

    def __init__(self, system: Mediator, client_name: str = "client") -> None:
        super().__init__(system, client_name)
        self._sessions: dict[str, SystemSession] = {
            name: backend.open_session(client_name)
            for name, backend in system.backends.items()
        }
        self.rolls_back_on_abort = all(
            s.rolls_back_on_abort for s in self._sessions.values()
        )
        self._open = False
        self._txn_writes: list[tuple[tuple[str, tuple], tuple[str, ...]]] = []
        self._poisoned: dict[tuple[str, tuple], tuple[str, ...]] = {}

    def begin(self) -> None:
        for session in self._sessions.values():
            session.begin()
        self._open = True
        self._txn_writes = []

    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        canonical = self.system._statements.get(sql, sql)
        stmt, _ = self.system._parse(canonical)
        if isinstance(stmt, Select):
            return self.system._execute(sql, params, sessions=None)
        key = (canonical, tuple(params))
        if key in self._poisoned:
            raise FederationWriteHazardError(
                f"refusing to re-execute {canonical!r}: its writes may "
                f"already have applied on {list(self._poisoned[key])} "
                "(no rollback on abort)"
            )
        try:
            result = self.system._execute(sql, params, sessions=self._sessions)
        except BaseException:
            # a partial broadcast: anything that applied on an
            # auto-commit backend is now unretriable
            applied = tuple(
                name
                for name, session in self._sessions.items()
                if not session.rolls_back_on_abort
            )
            self._poisoned[key] = applied
            raise
        applied = tuple(
            name
            for name, session in self._sessions.items()
            if not session.rolls_back_on_abort
        )
        if self._open:
            self._txn_writes.append((key, applied))
        return result

    def commit(self) -> None:
        self._open = False
        self._txn_writes = []
        for session in self._sessions.values():
            session.commit()

    def abort(self) -> None:
        self._open = False
        writes, self._txn_writes = self._txn_writes, []
        for session in self._sessions.values():
            session.abort()
        for key, applied in writes:
            if applied:
                self._poisoned[key] = applied


def build_mediator(
    backends: Mapping[str, EvaluatedSystem] | Sequence[tuple[str, EvaluatedSystem]],
    schema: Schema,
    workload: Workload | None = None,
    **kwargs: Any,
) -> Mediator:
    """Convenience constructor accepting either a mapping or ordered
    ``(name, system)`` pairs (order is the routing tie-break)."""
    if not isinstance(backends, Mapping):
        backends = dict(backends)
    return Mediator(backends, schema, workload, **kwargs)


__all__ = [
    "FederatedSession",
    "FederationError",
    "FederationWriteHazardError",
    "Mediator",
    "RouteRecord",
    "build_mediator",
]
