"""Cross-system federation: a mediator routing workload statements
across the evaluated systems, with an online routing advisor."""

from repro.federation.advisor import RouteDecision, RoutingAdvisor
from repro.federation.mediator import (
    FederatedSession,
    FederationError,
    FederationWriteHazardError,
    Mediator,
    RouteRecord,
    build_mediator,
)

__all__ = [
    "FederatedSession",
    "FederationError",
    "FederationWriteHazardError",
    "Mediator",
    "RouteDecision",
    "RouteRecord",
    "RoutingAdvisor",
    "build_mediator",
]
