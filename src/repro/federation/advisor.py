"""Online routing advisor for the federation mediator.

Keeps a per-(statement, backend) EWMA of *observed* virtual execution
latency and re-routes when the observation diverges from the model
estimate — the online half of an Agrawal-style advisor: the static cost
model proposes, the running mix disposes.

Everything here is deterministic: observations arrive in virtual time
from seeded simulations, the EWMA is plain arithmetic, ties break on
registration order, and the optional exploration draw comes from a
``derive_rng`` stream keyed by the mediator seed — two runs with the
same seed produce byte-identical decision logs
(``tests/test_systems_equivalence.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.rng import derive_rng


@dataclass
class _Ewma:
    value: float = 0.0
    observations: int = 0

    def observe(self, ms: float, alpha: float) -> None:
        if self.observations == 0:
            self.value = ms
        else:
            self.value = alpha * ms + (1.0 - alpha) * self.value
        self.observations += 1


@dataclass
class RouteDecision:
    """One routing choice, in decision-log (and JSON) friendly form."""

    seq: int
    now_ms: float
    statement_id: str
    chosen: str
    costs: dict[str, float] = field(default_factory=dict)
    rerouted: tuple[str, ...] = ()
    """Backends whose estimate was overridden by the observed EWMA."""
    explored: bool = False

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "now_ms": round(self.now_ms, 6),
            "statement_id": self.statement_id,
            "chosen": self.chosen,
            "costs": {k: round(v, 6) for k, v in sorted(self.costs.items())},
            "rerouted": list(self.rerouted),
            "explored": self.explored,
        }


class RoutingAdvisor:
    """Latency-aware route selection over model estimates.

    ``choose`` picks the cheapest backend by *advised* cost: the model
    estimate until ``min_observations`` samples have arrived, then the
    observed EWMA whenever it diverges from the estimate by more than
    ``divergence``x in either direction (a backend that turns out
    slower than modeled loses the route; one that turns out faster
    steals it). ``epsilon`` > 0 adds seeded exploration so a demoted
    backend still gets occasional samples.
    """

    def __init__(
        self,
        seed: int = 0,
        alpha: float = 0.3,
        divergence: float = 2.0,
        min_observations: int = 3,
        epsilon: float = 0.0,
    ) -> None:
        self.alpha = alpha
        self.divergence = divergence
        self.min_observations = min_observations
        self.epsilon = epsilon
        self._rng = derive_rng(seed, "federation/advisor")
        self._ewma: dict[tuple[str, str], _Ewma] = {}
        self.decision_log: list[RouteDecision] = []

    # -- observations ------------------------------------------------------------
    def observe(self, statement_id: str, backend: str, ms: float) -> None:
        self._ewma.setdefault((statement_id, backend), _Ewma()).observe(
            ms, self.alpha
        )

    def observed_ms(self, statement_id: str, backend: str) -> float | None:
        e = self._ewma.get((statement_id, backend))
        return e.value if e is not None and e.observations else None

    # -- advised costs -----------------------------------------------------------
    def advised_cost(
        self, statement_id: str, backend: str, estimate_ms: float
    ) -> tuple[float, bool]:
        """(cost to rank by, whether the estimate was overridden)."""
        e = self._ewma.get((statement_id, backend))
        if e is None or e.observations < self.min_observations:
            return estimate_ms, False
        floor = max(estimate_ms, 1e-9)
        ratio = e.value / floor
        if ratio > self.divergence or ratio < 1.0 / self.divergence:
            return e.value, True
        return estimate_ms, False

    def choose(
        self,
        statement_id: str,
        candidates: list[tuple[str, float]],
        now_ms: float,
    ) -> str:
        """Pick a backend from ``(name, estimate_ms)`` candidates and
        append the decision to the log. Candidate order is the
        registration order, which is also the tie-break."""
        if not candidates:
            raise ValueError(f"no backend supports {statement_id!r}")
        costs: dict[str, float] = {}
        rerouted: list[str] = []
        best_name, best_cost = None, float("inf")
        for name, estimate in candidates:
            cost, overridden = self.advised_cost(statement_id, name, estimate)
            costs[name] = cost
            if overridden:
                rerouted.append(name)
            if cost < best_cost:
                best_name, best_cost = name, cost
        explored = False
        if self.epsilon > 0 and len(candidates) > 1:
            if self._rng.random() < self.epsilon:
                others = [n for n, _ in candidates if n != best_name]
                best_name = others[int(self._rng.integers(len(others)))]
                explored = True
        assert best_name is not None
        self.decision_log.append(
            RouteDecision(
                seq=len(self.decision_log),
                now_ms=now_ms,
                statement_id=statement_id,
                chosen=best_name,
                costs=costs,
                rerouted=tuple(rerouted),
                explored=explored,
            )
        )
        return best_name

    def log_dicts(self) -> list[dict]:
        return [d.to_dict() for d in self.decision_log]
