"""Declarative cluster plans and the plan -> steps diff.

A :class:`ClusterPlan` says what the cluster should look like — how
many (non-draining) servers, which tables keep how many replicas and
which split boundaries, which balancer policy keeps the layout even,
which members are being retired. ``diff(plan, cluster)`` compares that
against the live cluster and emits the ordered step list that closes
the gap:

1. ``AddServers`` — capacity first, so later placement has targets;
2. ``DrainServer`` — explicit retirements, then scale-in picks
   (latest-added members first);
3. ``SetReplicas`` — per-table replica targets (plans sorted by table
   name, deterministic);
4. ``SplitRegion`` — missing split boundaries;
5. ``Rebalance`` — even the layout out, when a policy is set.

``MoveRegion`` never appears in a diff (a plan declares no per-region
placement); it exists for direct orchestration and as the recorded
inverse of drains and rebalances. The diff is pure inspection: no RNG
draws, no virtual-time charges, no mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.errors import (
    ClusterConfigError,
    PlanValidationError,
    TableNotFoundError,
)
from repro.orchestration.steps import (
    AddServers,
    DrainServer,
    Rebalance,
    SetReplicas,
    SplitRegion,
    Step,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hbase.cluster import HBaseCluster

BALANCER_POLICIES = ("round-robin", "load-aware")


@dataclass(frozen=True)
class TablePlan:
    """Desired state of one table: total copies per region and the
    split boundaries its key space must have."""

    replicas: int = 1
    split_points: tuple[bytes, ...] = ()

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise PlanValidationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        points = tuple(self.split_points)
        object.__setattr__(self, "split_points", points)
        last: bytes | None = None
        for point in points:
            if not isinstance(point, bytes) or not point:
                raise PlanValidationError(
                    f"split points must be non-empty bytes, got {point!r}"
                )
            if last is not None and point <= last:
                raise PlanValidationError(
                    f"split points must be strictly increasing: "
                    f"{point!r} after {last!r}"
                )
            last = point
        if self.replicas > 1 and points:
            raise PlanValidationError(
                "a replicated table cannot also declare split points: "
                "replicated regions never split (pre-split at creation "
                "instead)"
            )


@dataclass(frozen=True)
class ClusterPlan:
    """Desired cluster state: topology, tables, balancing, drains."""

    servers: int
    tables: Mapping[str, TablePlan] = field(default_factory=dict)
    balance: str | None = "load-aware"
    drain: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise PlanValidationError(
                f"a cluster needs at least one server, got {self.servers}"
            )
        if self.balance is not None and self.balance not in BALANCER_POLICIES:
            raise PlanValidationError(
                f"unknown balancer policy {self.balance!r} "
                f"(expected one of {BALANCER_POLICIES} or None)"
            )
        object.__setattr__(self, "tables", dict(self.tables))
        object.__setattr__(self, "drain", tuple(self.drain))
        if len(set(self.drain)) != len(self.drain):
            raise PlanValidationError(
                f"duplicate names in drain list: {self.drain}"
            )
        for name, table_plan in self.tables.items():
            if not isinstance(table_plan, TablePlan):
                raise PlanValidationError(
                    f"table {name!r}: expected a TablePlan, "
                    f"got {table_plan!r}"
                )
            if table_plan.replicas > self.servers:
                raise PlanValidationError(
                    f"table {name!r} wants {table_plan.replicas} copies "
                    f"but the plan keeps only {self.servers} servers "
                    "(anti-affinity needs one server per copy)"
                )


def diff(plan: ClusterPlan, cluster: "HBaseCluster") -> list[Step]:
    """Ordered steps that take ``cluster`` to ``plan``'s state.

    Raises :class:`~repro.errors.PlanValidationError` for plans that
    are impossible against this cluster: unknown tables or drain
    targets, or enabling replication on a non-empty table (the group
    ship log must be the complete history)."""
    steps: list[Step] = []
    for name in plan.drain:
        try:
            cluster.server_named(name)
        except ClusterConfigError as e:
            raise PlanValidationError(str(e)) from e

    already_draining = {s.name for s in cluster.servers if s.draining}
    drains = [n for n in plan.drain if n not in already_draining]
    remaining = [
        s
        for s in cluster.servers
        if not s.draining and s.name not in set(plan.drain)
    ]
    deficit = plan.servers - len(remaining)
    if deficit > 0:
        steps.append(AddServers(deficit))
    else:
        # scale in: retire the latest-added members first
        for server in reversed(remaining):
            if deficit == 0:
                break
            drains.append(server.name)
            deficit += 1
    steps.extend(DrainServer(name) for name in drains)

    manager = cluster.replication
    for name in sorted(plan.tables):
        table_plan = plan.tables[name]
        try:
            desc = cluster.descriptor(name)
        except TableNotFoundError as e:
            raise PlanValidationError(str(e)) from e
        groups = manager.groups_for(name) if manager is not None else []
        current = manager.target_for(name) if groups else 1
        if table_plan.replicas != current:
            if table_plan.replicas > 1 and not groups:
                dirty = any(
                    len(r.memstore) > 0 or r.hfiles for r in desc.regions
                )
                if dirty:
                    raise PlanValidationError(
                        f"cannot enable replication on non-empty table "
                        f"{name!r}: the ship log must be the complete "
                        "edit history (pre-replicate at creation, or "
                        "plan it while the table is empty)"
                    )
            steps.append(SetReplicas(name, table_plan.replicas))
        if table_plan.split_points and groups:
            raise PlanValidationError(
                f"table {name!r} is replicated; replicated regions "
                "cannot be split"
            )
        existing = {r.start_key for r in desc.regions}
        steps.extend(
            SplitRegion(name, point)
            for point in table_plan.split_points
            if point not in existing
        )

    if plan.balance is not None:
        retiring = set(drains) | already_draining
        counts = [
            len(s.regions)
            for s in cluster.servers
            if s.alive and s.name not in retiring
        ]
        spread = (max(counts) - min(counts)) if counts else 0
        if steps or spread > 1:
            steps.append(Rebalance(plan.balance))
    return steps
