"""Typed orchestration steps: fenced apply, verification, inverses.

Every step follows the same lifecycle the orchestrator drives:

1. ``fence(cluster)`` — re-resolve the step's targets against the
   *current* layout (steps address regions by ``(table, start_key)``,
   never by region object or name: a crash recovery swaps in a fresh
   incarnation under the same boundaries) and record the cluster's
   ``layout_epoch``.
2. ``apply(cluster)`` — refuse to run if the layout moved since the
   fence (:class:`~repro.errors.StaleStepError`), perform the mutation,
   and verify its local invariant (row counts conserved across
   move/split/merge/drain) *in the same scheduler segment*, so the
   check is atomic with respect to interleaved chaos and clients.
3. ``inverse(cluster)`` — after a successful apply, return the step
   that undoes the *actual* recorded effect (the moves a drain really
   performed, the prior replica target, the merge of a split), or
   ``None`` when nothing changed.

Fence and apply run back-to-back with no scheduler yield between them;
a retry re-runs both, which is what lets a step chase a region across
a crash/recovery cycle. Steps raising
:class:`~repro.errors.RegionUnavailableError` are retried with backoff
by the orchestrator; :class:`~repro.errors.StaleStepError` and
verification failures fail the stage and trigger rollback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (
    ClusterConfigError,
    RegionUnavailableError,
    StaleStepError,
    StepVerificationError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hbase.cluster import HBaseCluster
    from repro.hbase.region import Region
    from repro.hbase.regionserver import RegionServer


def _resolve_region(
    cluster: "HBaseCluster", table: str, start_key: bytes
) -> "Region":
    """The region of ``table`` that currently starts exactly at
    ``start_key``. Recovery preserves boundaries while renaming the
    region, so this survives crash cycles; a split/merge that dissolved
    the boundary is structural — :class:`StaleStepError`."""
    from repro.errors import TableNotFoundError

    try:
        desc = cluster.descriptor(table)
        region = desc.region_for(start_key)
    except TableNotFoundError as e:
        raise StaleStepError(f"table {table!r}: {e}") from e
    if region.start_key != start_key:
        raise StaleStepError(
            f"no region of {table!r} starts at {start_key!r} any more "
            f"(found {region.name})"
        )
    return region


def _server_named(cluster: "HBaseCluster", name: str) -> "RegionServer":
    try:
        return cluster.server_named(name)
    except ClusterConfigError as e:
        raise StaleStepError(str(e)) from e


def _table_counts(cluster: "HBaseCluster") -> dict[str, int]:
    return {t: cluster.table_row_count(t) for t in sorted(cluster.tables)}


class Step:
    """Base class: epoch fencing + the apply/inverse contract."""

    kind = "step"

    def __init__(self) -> None:
        self.fence_epoch: int | None = None
        self.applied = False

    # -- lifecycle -------------------------------------------------------------
    def fence(self, cluster: "HBaseCluster") -> None:
        self._resolve(cluster)
        self.fence_epoch = cluster.layout_epoch

    def apply(self, cluster: "HBaseCluster") -> None:
        if self.fence_epoch is None:
            raise StaleStepError(f"{self.describe()}: applied without a fence")
        if cluster.layout_epoch != self.fence_epoch:
            raise StaleStepError(
                f"{self.describe()}: fenced at layout epoch "
                f"{self.fence_epoch} but the cluster moved to "
                f"{cluster.layout_epoch}"
            )
        self._do(cluster)
        self.applied = True

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        raise NotImplementedError  # pragma: no cover - every subclass overrides

    # -- subclass hooks --------------------------------------------------------
    def _resolve(self, cluster: "HBaseCluster") -> None:
        """Re-resolve live references; raise ``StaleStepError`` when the
        step's preconditions dissolved, ``RegionUnavailableError`` when
        they are merely waiting on a recovery/restart."""

    def _do(self, cluster: "HBaseCluster") -> None:
        raise NotImplementedError  # pragma: no cover - every subclass overrides

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.describe()}>"


class AddServers(Step):
    """Scale out by ``count`` fresh servers (or explicit ``names``)."""

    kind = "add-servers"

    def __init__(self, count: int = 1, names: list[str] | None = None) -> None:
        super().__init__()
        if names is not None:
            count = len(names)
        if count < 1:
            raise ClusterConfigError(
                f"AddServers needs a positive count, got {count}"
            )
        self.count = count
        self.names = list(names) if names is not None else None
        self.added: list[str] = []

    def _resolve(self, cluster: "HBaseCluster") -> None:
        if self.names:
            existing = {s.name for s in cluster.servers}
            clash = sorted(set(self.names) & existing)
            if clash:
                raise StaleStepError(
                    f"server name(s) already in the cluster: {clash}"
                )

    def _do(self, cluster: "HBaseCluster") -> None:
        fresh = cluster.add_servers(self.count, names=self.names)
        self.added = [s.name for s in fresh]
        for server in fresh:
            if server.regions:  # pragma: no cover - fresh servers are empty
                raise StepVerificationError(
                    f"fresh server {server.name} is not empty"
                )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return RemoveServers(list(self.added)) if self.added else None

    def describe(self) -> str:
        who = ",".join(self.names) if self.names else f"+{self.count}"
        return f"add-servers({who})"


class RemoveServers(Step):
    """Rollback-only inverse of :class:`AddServers`: drain (recovering
    first if a chaos crash got there) and remove the named servers."""

    kind = "remove-servers"

    def __init__(self, names: list[str]) -> None:
        super().__init__()
        self.names = list(names)

    def _resolve(self, cluster: "HBaseCluster") -> None:
        for name in self.names:
            _server_named(cluster, name)

    def _do(self, cluster: "HBaseCluster") -> None:
        for name in self.names:
            server = cluster.server_named(name)
            if not server.alive and not server.recovered:
                cluster.recover_server(server)
            if server.alive and (server.regions or server.follower_regions):
                cluster.drain_server(server)
            cluster.remove_server(server)

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return AddServers(names=list(self.names))

    def describe(self) -> str:
        return f"remove-servers({','.join(self.names)})"


class DrainServer(Step):
    """Decommission one server: recovery-then-drain if it is crashed,
    plain drain otherwise. Records the moves actually performed."""

    kind = "drain-server"

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.was_draining = False
        self.recovered_first = False
        self.moves: list[tuple[str, bytes, str]] = []

    def _resolve(self, cluster: "HBaseCluster") -> None:
        _server_named(cluster, self.name)

    def _do(self, cluster: "HBaseCluster") -> None:
        server = cluster.server_named(self.name)
        self.was_draining = server.draining
        if not server.alive and not server.recovered:
            # the graceful degradation: finish the master's failover
            # first, then drain what (nothing) is left on the server
            cluster.recover_server(server)
            self.recovered_first = True
        before = _table_counts(cluster)
        if server.alive:
            self.moves = cluster.drain_server(server)
        else:
            # dead but already recovered: hosts nothing — just take it
            # out of placement rotation
            server.draining = True
            cluster._bump_layout()
            self.moves = []
        after = _table_counts(cluster)
        if before != after:
            raise StepVerificationError(
                f"drain of {self.name} did not conserve row counts: "
                f"{before} -> {after}"
            )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        if self.was_draining:
            return None
        return UndrainServer(self.name, restore_moves=list(self.moves))

    def describe(self) -> str:
        return f"drain-server({self.name})"


class UndrainServer(Step):
    """Put a server back in rotation, optionally replaying recorded
    drain moves in reverse so its regions come home."""

    kind = "undrain-server"

    def __init__(
        self,
        name: str,
        restore_moves: list[tuple[str, bytes, str]] | None = None,
    ) -> None:
        super().__init__()
        self.name = name
        self.restore_moves = list(restore_moves or [])

    def _resolve(self, cluster: "HBaseCluster") -> None:
        server = _server_named(cluster, self.name)
        if self.restore_moves and not server.alive:
            raise RegionUnavailableError(
                f"cannot move regions back onto dead server {self.name}"
            )

    def _do(self, cluster: "HBaseCluster") -> None:
        server = cluster.server_named(self.name)
        before = _table_counts(cluster)
        cluster.undrain_server(server)
        for table, start_key, _target in reversed(self.restore_moves):
            region = _resolve_region(cluster, table, start_key)
            cluster.move_region(region, server)  # no-op if already home
        after = _table_counts(cluster)
        if before != after:
            raise StepVerificationError(
                f"undrain of {self.name} did not conserve row counts"
            )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return DrainServer(self.name)

    def describe(self) -> str:
        return f"undrain-server({self.name})"


class MoveRegion(Step):
    """Move the region of ``table`` starting at ``start_key`` onto the
    named server."""

    kind = "move-region"

    def __init__(self, table: str, start_key: bytes, target: str) -> None:
        super().__init__()
        self.table = table
        self.start_key = start_key
        self.target = target
        self.source: str | None = None
        self.moved = False

    def _resolve(self, cluster: "HBaseCluster") -> None:
        region = _resolve_region(cluster, self.table, self.start_key)
        target = _server_named(cluster, self.target)
        if target.draining:
            raise StaleStepError(
                f"target server {self.target} is draining"
            )
        if not target.alive:
            raise RegionUnavailableError(
                f"target server {self.target} is down"
            )
        self._region = region
        self._target_server = target
        # the current host, for the inverse; raises RegionUnavailable
        # (retry) while the region awaits recovery
        self.source = cluster.server_for(region).name

    def _do(self, cluster: "HBaseCluster") -> None:
        region = self._region
        rows_before = region.row_count()
        self.moved = cluster.move_region(region, self._target_server)
        if self.moved and region.row_count() != rows_before:
            raise StepVerificationError(
                f"move of {region.name} did not conserve its "
                f"{rows_before} rows"
            )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        if not self.moved or self.source is None:
            return None
        return MoveRegion(self.table, self.start_key, self.source)

    def describe(self) -> str:
        return (
            f"move-region({self.table},{self.start_key.hex() or '-'}"
            f"->{self.target})"
        )


class SetReplicas(Step):
    """Online replica-count change for one table."""

    kind = "set-replicas"

    def __init__(self, table: str, count: int) -> None:
        super().__init__()
        self.table = table
        self.count = count
        self.had_groups = False
        self.old_count = 1
        self.old_placements: dict[bytes, list[str]] = {}

    def _resolve(self, cluster: "HBaseCluster") -> None:
        from repro.errors import TableNotFoundError

        try:
            desc = cluster.descriptor(self.table)
        except TableNotFoundError as e:
            raise StaleStepError(str(e)) from e
        manager = cluster.replication
        managed = manager is not None and manager.groups_for(self.table)
        if self.count > 1 and not managed:
            dirty = any(
                len(r.memstore) > 0 or r.hfiles for r in desc.regions
            )
            if dirty:
                raise StaleStepError(
                    f"cannot enable replication on non-empty table "
                    f"{self.table!r}: the ship log must be the complete "
                    "edit history"
                )

    def _do(self, cluster: "HBaseCluster") -> None:
        manager = cluster.replication
        self.had_groups = bool(
            manager is not None and manager.groups_for(self.table)
        )
        self.old_count = (
            manager.target_for(self.table) if self.had_groups else 1
        )
        self.old_placements = (
            manager.follower_placements(self.table) if self.had_groups else {}
        )
        cluster.set_replica_count(self.table, self.count)
        manager = cluster.replication
        if manager is not None:
            for group in manager.groups_for(self.table):
                if len(group.followers) > max(self.count - 1, 0):
                    raise StepVerificationError(
                        f"group {group.primary.name} over-replicated: "
                        f"{len(group.followers)} followers for target "
                        f"{self.count}"
                    )
                for follower in group.followers:
                    if follower.applied > len(group.log):
                        raise StepVerificationError(
                            f"follower watermark beyond the ship log on "
                            f"{group.primary.name}"
                        )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        if self.had_groups:
            if self.old_count == self.count:
                return None
            # restore the recorded placements, not laggiest-first /
            # least-loaded re-derivations of them
            return RestoreFollowers(
                self.table, self.old_placements, self.old_count
            )
        if self.count == 1:
            return None
        return Dereplicate(self.table)

    def describe(self) -> str:
        return f"set-replicas({self.table},{self.count})"


class RestoreFollowers(Step):
    """Rollback-only inverse of an online replica-count change: force
    the table's follower hosting back to the recorded placements."""

    kind = "restore-followers"

    def __init__(
        self,
        table: str,
        placements: dict[bytes, list[str]],
        target: int,
    ) -> None:
        super().__init__()
        self.table = table
        self.placements = {k: list(v) for k, v in placements.items()}
        self.target = target

    def _do(self, cluster: "HBaseCluster") -> None:
        if cluster.replication is not None:
            cluster.replication.reconcile_followers(
                self.table, self.placements, self.target
            )
            cluster._bump_layout()

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return None

    def describe(self) -> str:
        return f"restore-followers({self.table},{self.target})"


class Dereplicate(Step):
    """Rollback-only inverse of *enabling* replication on a previously
    unmanaged table: drops the groups, taps and logs entirely."""

    kind = "dereplicate"

    def __init__(self, table: str) -> None:
        super().__init__()
        self.table = table

    def _do(self, cluster: "HBaseCluster") -> None:
        if cluster.replication is not None:
            cluster.replication.dereplicate_table(self.table)
            cluster._bump_layout()

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return None

    def describe(self) -> str:
        return f"dereplicate({self.table})"


class SplitRegion(Step):
    """Split the region of ``table`` covering ``split_key`` at that key."""

    kind = "split-region"

    def __init__(
        self,
        table: str,
        split_key: bytes,
        restore_hosts: tuple[str, str] | None = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.split_key = split_key
        # set when this split is the inverse of a merge: where the
        # daughters lived before the merge folded them together
        self.restore_hosts = restore_hosts
        self.parent_start: bytes | None = None

    def _resolve(self, cluster: "HBaseCluster") -> None:
        from repro.errors import TableNotFoundError

        try:
            desc = cluster.descriptor(self.table)
            region = desc.region_for(self.split_key)
        except TableNotFoundError as e:
            raise StaleStepError(str(e)) from e
        if region.start_key == self.split_key:
            raise StaleStepError(
                f"{self.table!r} already has a boundary at "
                f"{self.split_key!r}"
            )
        manager = cluster.replication
        if manager is not None and region.name in manager.groups:
            raise StaleStepError(
                f"region {region.name} is replicated and cannot be split"
            )
        host = cluster.server_for(region)
        if not host.alive:
            raise RegionUnavailableError(
                f"region {region.name} is hosted on dead server "
                f"{host.name}; waiting for recovery"
            )
        self._region = region

    def _do(self, cluster: "HBaseCluster") -> None:
        region = self._region
        rows_before = region.row_count()
        self.parent_start = region.start_key
        low, high = cluster.split_region(region, self.split_key)
        rows_after = low.row_count() + high.row_count()
        if rows_after != rows_before:
            raise StepVerificationError(
                f"split of {region.name} at {self.split_key!r} lost rows: "
                f"{rows_before} -> {rows_after}"
            )
        if self.restore_hosts is not None:
            for daughter, host in zip((low, high), self.restore_hosts):
                target = cluster.server_named(host)
                if target.alive:
                    cluster.move_region(daughter, target)  # no-op if home

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        assert self.parent_start is not None
        return MergeRegions(self.table, self.parent_start, self.split_key)

    def describe(self) -> str:
        return f"split-region({self.table},{self.split_key!r})"


class MergeRegions(Step):
    """Merge the adjacent regions of ``table`` meeting at ``split_key``
    (the one starting at ``start_key`` with its right neighbour) — the
    inverse of :class:`SplitRegion`."""

    kind = "merge-regions"

    def _resolve(self, cluster: "HBaseCluster") -> None:
        low = _resolve_region(cluster, self.table, self.start_key)
        high = _resolve_region(cluster, self.table, self.split_key)
        if low.end_key != high.start_key:
            raise StaleStepError(
                f"regions at {self.start_key!r} and {self.split_key!r} "
                f"of {self.table!r} are no longer adjacent"
            )
        for region in (low, high):
            host = cluster.server_for(region)
            if not host.alive:
                raise RegionUnavailableError(
                    f"region {region.name} is hosted on dead server "
                    f"{host.name}; waiting for recovery"
                )
        self._low, self._high = low, high

    def __init__(self, table: str, start_key: bytes, split_key: bytes) -> None:
        super().__init__()
        self.table = table
        self.start_key = start_key
        self.split_key = split_key
        self.daughter_hosts: tuple[str, str] | None = None

    def _do(self, cluster: "HBaseCluster") -> None:
        low, high = self._low, self._high
        rows_before = low.row_count() + high.row_count()
        self.daughter_hosts = (
            cluster.server_for(low).name,
            cluster.server_for(high).name,
        )
        merged = cluster.merge_regions(low, high)
        if merged.row_count() != rows_before:
            raise StepVerificationError(
                f"merge of {low.name}+{high.name} lost rows: "
                f"{rows_before} -> {merged.row_count()}"
            )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return SplitRegion(
            self.table, self.split_key, restore_hosts=self.daughter_hosts
        )

    def describe(self) -> str:
        return f"merge-regions({self.table},{self.split_key!r})"


class Rebalance(Step):
    """Run the :class:`~repro.hbase.cluster.RegionBalancer` under the
    given policy and record the moves it performed."""

    kind = "rebalance"

    def __init__(self, policy: str = "load-aware") -> None:
        super().__init__()
        if policy not in ("round-robin", "load-aware"):
            raise ClusterConfigError(f"unknown balancer policy: {policy}")
        self.policy = policy
        self.moves: list[tuple[str, bytes, str, str]] = []

    def _do(self, cluster: "HBaseCluster") -> None:
        from repro.hbase.cluster import RegionBalancer

        before = _table_counts(cluster)
        balancer = RegionBalancer(cluster, self.policy)
        balancer.rebalance()
        self.moves = list(balancer.last_moves)
        after = _table_counts(cluster)
        if before != after:
            raise StepVerificationError(
                f"rebalance did not conserve row counts: {before} -> {after}"
            )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return RestoreMoves(list(self.moves)) if self.moves else None

    def describe(self) -> str:
        return f"rebalance({self.policy})"


class RestoreMoves(Step):
    """Rollback-only: replay recorded ``(table, start, source, target)``
    moves in reverse, sending each region back to its source."""

    kind = "restore-moves"

    def __init__(self, moves: list[tuple[str, bytes, str, str]]) -> None:
        super().__init__()
        self.moves = list(moves)

    def _resolve(self, cluster: "HBaseCluster") -> None:
        for _table, _start, source, _target in self.moves:
            server = _server_named(cluster, source)
            if not server.alive:
                raise RegionUnavailableError(
                    f"cannot restore regions onto dead server {source}"
                )

    def _do(self, cluster: "HBaseCluster") -> None:
        before = _table_counts(cluster)
        for table, start_key, source, _target in reversed(self.moves):
            region = _resolve_region(cluster, table, start_key)
            cluster.move_region(region, cluster.server_named(source))
        after = _table_counts(cluster)
        if before != after:
            raise StepVerificationError(
                "restore-moves did not conserve row counts"
            )

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return None

    def describe(self) -> str:
        return f"restore-moves({len(self.moves)})"


class PoisonStep(Step):
    """Fault-drill hook: always fails verification at apply time, so
    harnesses (CI's induced-failure run, the rollback tests) can force
    a mid-stage failure after real steps already applied."""

    kind = "poison"

    def _do(self, cluster: "HBaseCluster") -> None:
        raise StepVerificationError("poisoned step (induced failure drill)")

    def inverse(self, cluster: "HBaseCluster") -> "Step | None":
        return None  # pragma: no cover - apply never succeeds
