"""Declarative cluster orchestration: plan → diff → staged apply.

A :class:`~repro.orchestration.plan.ClusterPlan` declares the desired
topology (server count, per-table replica counts and split points,
balancer policy, drains); ``diff(plan, cluster)`` turns the gap between
plan and reality into an ordered list of typed
:class:`~repro.orchestration.steps.Step` objects, and the
:class:`~repro.orchestration.orchestrator.Orchestrator` executes them
in stages — each stage is apply → verify → commit-or-rollback, with
layout-epoch fencing, bounded retry on ``RegionUnavailableError`` and
a recorded inverse per applied step. Installed on a
``DeterministicScheduler``, the rollout interleaves deterministically
with the chaos engine's ``FaultInjector``. See docs/OPERATIONS.md.
"""

from repro.orchestration.orchestrator import (
    Orchestrator,
    RolloutPolicy,
    RolloutReport,
    StageReport,
    cluster_snapshot,
    verify_cluster,
)
from repro.orchestration.plan import ClusterPlan, TablePlan, diff
from repro.orchestration.steps import (
    AddServers,
    Dereplicate,
    DrainServer,
    MergeRegions,
    MoveRegion,
    PoisonStep,
    Rebalance,
    RemoveServers,
    RestoreFollowers,
    RestoreMoves,
    SetReplicas,
    SplitRegion,
    Step,
    UndrainServer,
)

__all__ = [
    "AddServers",
    "ClusterPlan",
    "Dereplicate",
    "DrainServer",
    "MergeRegions",
    "MoveRegion",
    "Orchestrator",
    "PoisonStep",
    "Rebalance",
    "RemoveServers",
    "RestoreFollowers",
    "RestoreMoves",
    "RolloutPolicy",
    "RolloutReport",
    "SetReplicas",
    "SplitRegion",
    "StageReport",
    "Step",
    "TablePlan",
    "UndrainServer",
    "cluster_snapshot",
    "diff",
    "verify_cluster",
]
