"""The staged rollout engine: apply -> verify -> commit-or-rollback.

The :class:`Orchestrator` takes a plan (or an explicit step/stage
list), groups consecutive same-kind steps into **stages**, and drives
each stage through:

1. **apply** — every step is fenced (re-resolved against the current
   layout + epoch-stamped) and applied back-to-back in one scheduler
   segment, so fence and apply are atomic with respect to interleaved
   chaos; ``RegionUnavailableError`` (dead server, region awaiting
   recovery) retries with linear backoff inside a bounded budget,
   re-fencing each attempt so a step can chase its region across a
   crash/recovery cycle;
2. **verify** — cluster-wide invariants (region tiling, hosting,
   replica watermarks/anti-affinity) are checked; *transient*
   violations (a region on a crashed-but-not-yet-recovered server, a
   group short of followers) wait-and-retry, *fatal* ones (layout
   holes, watermark past the log) fail the stage;
3. **commit or rollback** — a committed stage records the layout
   epoch and is never revisited; a failed stage unwinds every inverse
   recorded during apply, in reverse, with the same retry budget, so
   an interrupted rollout lands exactly on the last committed stage.

Run it synchronously (:meth:`Orchestrator.run`) for tests, or install
it on a :class:`~repro.sim.scheduler.DeterministicScheduler` as a
non-daemon participant so rollouts interleave deterministically with
the chaos engine's ``FaultInjector`` and the client workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    HBaseError,
    RegionUnavailableError,
    RollbackError,
    StepVerificationError,
)
from repro.orchestration.plan import ClusterPlan, diff
from repro.orchestration.steps import Step

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hbase.cluster import HBaseCluster


@dataclass(frozen=True)
class RolloutPolicy:
    """Budgets and pacing for one rollout."""

    max_attempts_per_step: int = 8
    """Fence+apply attempts per step (and per inverse during rollback)
    before the stage fails on ``RegionUnavailableError``."""

    retry_backoff_ms: float = 12.0
    """Linear backoff: attempt ``n`` waits ``n * retry_backoff_ms``."""

    verify_attempts: int = 8
    """Stage-verify rounds to wait out *transient* violations (regions
    awaiting recovery, groups short of followers) before failing."""

    verify_backoff_ms: float = 12.0
    """Wait between verify rounds (linear, like the step backoff)."""

    step_cost_ms: float = 2.0
    """Admin round-trip charged on the orchestrator's own timeline per
    applied step — rollouts take virtual time, so they interleave with
    the workload instead of landing atomically."""

    start_delay_ms: float = 0.0
    """Virtual delay before the first stage (lets a scheduled workload
    warm up before the rollout starts)."""


class StageReport:
    """Outcome of one stage."""

    def __init__(self, index: int, name: str, steps: list[str]) -> None:
        self.index = index
        self.name = name
        self.steps = steps
        self.status = "pending"  # -> committed | rolled-back
        self.attempts = 0
        self.started_ms = 0.0
        self.finished_ms = 0.0
        self.epoch: int | None = None  # layout epoch at commit
        self.error: str | None = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "steps": self.steps,
            "status": self.status,
            "attempts": self.attempts,
            "started_ms": round(self.started_ms, 6),
            "finished_ms": round(self.finished_ms, 6),
            "epoch": self.epoch,
            "error": self.error,
        }


class RolloutReport:
    """Outcome of one whole rollout."""

    def __init__(self) -> None:
        self.stages: list[StageReport] = []
        self.status = "pending"  # -> committed | rolled-back
        self.committed_stages = 0
        self.started_ms = 0.0
        self.finished_ms = 0.0
        self.epoch_start = 0
        self.epoch_end = 0

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "committed_stages": self.committed_stages,
            "total_stages": len(self.stages),
            "started_ms": round(self.started_ms, 6),
            "finished_ms": round(self.finished_ms, 6),
            "duration_ms": round(self.duration_ms, 6),
            "epoch_start": self.epoch_start,
            "epoch_end": self.epoch_end,
            "stages": [s.as_dict() for s in self.stages],
        }


def verify_cluster(
    cluster: "HBaseCluster", tables: list[str] | None = None
) -> tuple[list[str], list[str]]:
    """Cluster-wide invariants, split into ``(transient, fatal)``.

    Transient violations resolve on their own once recovery/repair
    runs (region hosted on a dead-but-unrecovered server, replication
    group short of followers); fatal ones are structural corruption
    (tiling holes, unhosted/offline regions on live servers, follower
    watermark past the ship log, anti-affinity breach). Pure
    inspection: no charges, no RNG draws — safe to call concurrently
    with a scheduled workload."""
    transient: list[str] = []
    fatal: list[str] = []
    names = sorted(cluster.tables) if tables is None else sorted(tables)
    for name in names:
        desc = cluster.tables[name]
        if not desc.regions:
            fatal.append(f"table {name!r} has no regions")
            continue
        prev_end: bytes | None = b""
        for region in desc.regions:
            if region.start_key != prev_end:
                fatal.append(
                    f"layout hole/overlap in {name!r} at "
                    f"{region.start_key!r} (expected {prev_end!r})"
                )
            prev_end = region.end_key
            host = cluster._region_host.get(region.name)
            if host is None:
                fatal.append(f"region {region.name} is unhosted")
            elif not host.alive:
                if host.recovered:
                    fatal.append(
                        f"region {region.name} still mapped to recovered "
                        f"dead server {host.name}"
                    )
                else:
                    transient.append(
                        f"region {region.name} on dead server {host.name} "
                        "(awaiting recovery)"
                    )
            elif not region.online:
                fatal.append(
                    f"region {region.name} offline on live server "
                    f"{host.name}"
                )
        if prev_end is not None:
            fatal.append(f"table {name!r} does not cover the key space end")
    manager = cluster.replication
    if manager is not None:
        for group in manager.groups.values():
            table = group.primary.table_name
            if tables is not None and table not in set(tables):
                continue
            want = manager.target_for(table) - 1
            log_len = len(group.log)
            if len(group.followers) > max(want, 0):
                fatal.append(
                    f"group {group.primary.name} over-replicated: "
                    f"{len(group.followers)} followers for target "
                    f"{want + 1}"
                )
            primary_host = cluster._region_host.get(group.primary.name)
            for follower in group.followers:
                if follower.applied > log_len:
                    fatal.append(
                        f"follower watermark past the ship log on "
                        f"{group.primary.name} "
                        f"({follower.applied} > {log_len})"
                    )
                if (
                    manager.config.anti_affinity
                    and follower.is_live()
                    and follower.server is primary_host
                ):
                    fatal.append(
                        f"anti-affinity breach: {group.primary.name} "
                        f"co-hosted with its follower on "
                        f"{follower.server.name}"
                    )
            if len(group.live_followers()) < want:
                transient.append(
                    f"group {group.primary.name} short: "
                    f"{len(group.live_followers())}/{want} live followers"
                )
    return transient, fatal


def cluster_snapshot(
    cluster: "HBaseCluster", tables: list[str] | None = None
) -> dict:
    """Row-for-row content snapshot: table -> row -> sorted cell list
    ``(family, qualifier, timestamp, value)``. Pure inspection (reads
    region stores directly — no client charges, no virtual time), so a
    rollback test can compare before/after byte-for-byte. Regions must
    be online (don't snapshot mid-outage)."""
    out: dict[str, dict[bytes, tuple]] = {}
    names = sorted(cluster.tables) if tables is None else sorted(tables)
    for name in names:
        rows: dict[bytes, tuple] = {}
        for region in cluster.tables[name].regions:
            for row, result in region.scan(max_versions=2**31 - 1):
                if result is None or result.is_empty:
                    continue
                cells = []
                for (family, qualifier), versions in sorted(
                    result._cells.items()
                ):
                    for ts, value in versions:
                        cells.append((family, qualifier, ts, value))
                rows[row] = tuple(cells)
        out[name] = rows
    return out


def _group_stages(steps: list[Step]) -> list[tuple[str, list[Step]]]:
    """Consecutive same-kind steps form one stage."""
    grouped: list[tuple[str, list[Step]]] = []
    for step in steps:
        if grouped and grouped[-1][0] == step.kind:
            grouped[-1][1].append(step)
        else:
            grouped.append((step.kind, [step]))
    return [
        (f"{i + 1}:{kind}", group) for i, (kind, group) in enumerate(grouped)
    ]


class Orchestrator:
    """Executes a plan (or explicit steps/stages) against one cluster.

    Exactly one of ``plan``, ``steps`` or ``stages`` must be given.
    ``stages`` takes pre-grouped ``(name, [steps])`` pairs — the hook
    tests and the CI fault drill use to compose a stage that mixes
    real steps with a :class:`~repro.orchestration.steps.PoisonStep`.
    """

    def __init__(
        self,
        cluster: "HBaseCluster",
        plan: ClusterPlan | None = None,
        steps: list[Step] | None = None,
        stages: list[tuple[str, list[Step]]] | None = None,
        policy: RolloutPolicy | None = None,
        verify_tables: list[str] | None = None,
    ) -> None:
        given = sum(x is not None for x in (plan, steps, stages))
        if given != 1:
            raise ValueError(
                "exactly one of plan=, steps= or stages= is required"
            )
        if plan is not None:
            steps = diff(plan, cluster)
        self.cluster = cluster
        self.policy = policy or RolloutPolicy()
        self.verify_tables = verify_tables
        self._stages = stages if stages is not None else _group_stages(steps)
        self.report = RolloutReport()

    @property
    def stages(self) -> list[tuple[str, list[Step]]]:
        return self._stages

    # -- drivers ---------------------------------------------------------------
    def run(self) -> RolloutReport:
        """Synchronous rollout on the simulation clock (no scheduler):
        the generator's yield points become plain no-ops."""
        for _ in self._run(self.cluster.sim.clock):
            pass
        return self.report

    def install(self, scheduler):
        """Join a scheduled run as a *non-daemon* participant: the run
        does not end until the rollout concluded (committed or rolled
        back), and every yield is an interleaving point where chaos
        events and client ops may land."""
        return scheduler.add_client("orchestrator", self.program)

    def program(self, vc):
        yield from self._run(vc.clock)

    # -- engine ----------------------------------------------------------------
    def _run(self, clock):
        cluster = self.cluster
        policy = self.policy
        report = self.report
        if policy.start_delay_ms > 0:
            clock.advance(policy.start_delay_ms)
            yield "orchestrator:start"
        report.started_ms = clock.now_ms
        report.epoch_start = cluster.layout_epoch
        rolled_back = False
        for index, (name, steps) in enumerate(self._stages):
            stage = StageReport(index, name, [s.describe() for s in steps])
            report.stages.append(stage)
            stage.started_ms = clock.now_ms
            inverses: list[Step] = []
            failure: Exception | None = None
            for step in steps:
                attempts = 0
                while True:
                    attempts += 1
                    stage.attempts += 1
                    try:
                        # fence + apply + local verify: one segment,
                        # atomic wrt interleaved chaos/clients
                        step.fence(cluster)
                        step.apply(cluster)
                    except RegionUnavailableError as e:
                        if attempts >= policy.max_attempts_per_step:
                            failure = e
                            break
                        clock.advance(policy.retry_backoff_ms * attempts)
                        yield f"orchestrator:retry:{step.kind}"
                        continue
                    except HBaseError as e:
                        # StaleStepError, verification failures,
                        # replication/config misuse: not retryable
                        failure = e
                        break
                    inverse = step.inverse(cluster)
                    if inverse is not None:
                        inverses.append(inverse)
                    clock.advance(policy.step_cost_ms)
                    yield f"orchestrator:applied:{step.kind}"
                    break
                if failure is not None:
                    break
            if failure is None:
                rounds = 0
                while True:
                    rounds += 1
                    transient, fatal = verify_cluster(
                        cluster, self.verify_tables
                    )
                    if fatal:
                        failure = StepVerificationError("; ".join(fatal))
                        break
                    if not transient:
                        break
                    if rounds >= policy.verify_attempts:
                        failure = StepVerificationError(
                            "transient violations never cleared: "
                            + "; ".join(transient)
                        )
                        break
                    clock.advance(policy.verify_backoff_ms * rounds)
                    yield "orchestrator:verify-wait"
            if failure is None:
                stage.status = "committed"
                stage.epoch = cluster.layout_epoch
                stage.finished_ms = clock.now_ms
                report.committed_stages += 1
            else:
                stage.error = f"{type(failure).__name__}: {failure}"
                yield from self._rollback(inverses, clock)
                stage.status = "rolled-back"
                stage.finished_ms = clock.now_ms
                rolled_back = True
                break
        report.status = "rolled-back" if rolled_back else "committed"
        report.finished_ms = clock.now_ms
        report.epoch_end = cluster.layout_epoch

    def _rollback(self, inverses: list[Step], clock):
        cluster = self.cluster
        policy = self.policy
        for inverse in reversed(inverses):
            attempts = 0
            while True:
                attempts += 1
                try:
                    inverse.fence(cluster)
                    inverse.apply(cluster)
                except RegionUnavailableError as e:
                    if attempts >= policy.max_attempts_per_step:
                        raise RollbackError(
                            f"could not unwind {inverse.describe()}: {e}"
                        ) from e
                    clock.advance(policy.retry_backoff_ms * attempts)
                    yield f"orchestrator:rollback-retry:{inverse.kind}"
                    continue
                except HBaseError as e:
                    raise RollbackError(
                        f"could not unwind {inverse.describe()}: {e}"
                    ) from e
                clock.advance(policy.step_cost_ms)
                yield f"orchestrator:rolled-back:{inverse.kind}"
                break
