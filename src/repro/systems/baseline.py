"""Baseline system: base tables + indexes only, Phoenix-Tephra MVCC on
(paper Sec. IX-D2). No materialized views: every join pays the join
algorithm; every statement pays the MVCC transaction overhead."""

from __future__ import annotations

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.systems.base import SystemDescription
from repro.systems.mvcc_base import MvccSystemBase


class BaselineSystem(MvccSystemBase):
    description = SystemDescription(
        name="Baseline",
        mv_selection="None",
        concurrency_control="MVCC",
    )

    def __init__(
        self,
        schema: Schema,
        workload: Workload,
        sim: Simulation | None = None,
        cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
        query_engine: str = "legacy",
        cost_based_planner: bool = False,
    ) -> None:
        super().__init__(
            schema, sim, cluster_config, views=[],
            query_engine=query_engine, cost_based_planner=cost_based_planner,
        )
        for stmt in workload:
            self.register_statement(stmt.statement_id, stmt.sql)
