"""Common interface for the five evaluated systems."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable

from repro.sim.clock import Simulation


@dataclass(frozen=True)
class SystemDescription:
    """One row of the paper's Fig. 13 mechanism matrix."""

    name: str
    mv_selection: str
    concurrency_control: str


class SystemSession:
    """One virtual client's connection to an evaluated system.

    The default implementation is auto-commit: ``begin``/``commit`` are
    no-ops and every ``execute`` is its own transaction (which is how
    Synergy runs — each write is one lock-protected transaction through
    the transaction layer). Systems with real multi-statement
    transaction state (the Tephra-backed ones) or with serialized
    execution resources (VoltDB) override this.
    """

    rolls_back_on_abort = False
    """Whether ``abort()`` genuinely undoes writes executed since
    ``begin()``. False for auto-commit sessions, where every write has
    already applied by the time ``abort`` is called — callers that
    retry aborted transactions (the federation mediator, chiefly) must
    not re-execute writes against a session that reports False here."""

    def __init__(self, system: "EvaluatedSystem", client_name: str = "client") -> None:
        self.system = system
        self.client_name = client_name

    def begin(self) -> None:
        pass

    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        return self.system.execute(sql, params)

    def commit(self) -> None:
        pass

    def abort(self) -> None:
        pass


class EvaluatedSystem(abc.ABC):
    """A populated system that can run workload statements and report
    virtual response times."""

    description: SystemDescription

    @property
    def name(self) -> str:
        return self.description.name

    @property
    @abc.abstractmethod
    def sim(self) -> Simulation: ...

    @abc.abstractmethod
    def statement(self, statement_id: str) -> str:
        """Executable SQL for a workload statement id (possibly rewritten
        over this system's views)."""

    @abc.abstractmethod
    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any: ...

    @abc.abstractmethod
    def load_row(self, relation: str, row: dict[str, Any]) -> None: ...

    @abc.abstractmethod
    def finish_load(self) -> None: ...

    @abc.abstractmethod
    def db_size_bytes(self) -> int: ...

    def register_statement(self, statement_id: str, sql: str) -> None:
        """Register an ad-hoc statement under an id. Subclasses with a
        statement registry override this; the base implementation
        refuses so callers cannot silently lose statements."""
        raise NotImplementedError(
            f"{type(self).__name__} does not accept ad-hoc statements"
        )

    def supports(self, statement_id: str) -> bool:
        """Whether this system can execute the workload statement.

        Truthful by construction: an id the system has never registered
        is *not* supported (the old default claimed ``True`` for every
        string, which broke any router trusting the contract)."""
        try:
            self.statement(statement_id)
        except KeyError:
            return False
        return True

    def open_session(self, client_name: str = "client") -> SystemSession:
        """A per-client session handle for scheduled multi-client runs."""
        return SystemSession(self, client_name)

    def timed(self, sql: str, params: tuple[Any, ...] = ()) -> tuple[Any, float]:
        sw = self.sim.stopwatch()
        result = self.execute(sql, params)
        return result, sw.stop()

    def timed_id(
        self, statement_id: str, params: tuple[Any, ...] = ()
    ) -> tuple[Any, float]:
        return self.timed(self.statement(statement_id), params)

    def load(self, rows: Iterable[tuple[str, dict[str, Any]]]) -> int:
        count = 0
        for relation, row in rows:
            self.load_row(relation, row)
            count += 1
        return count
