"""Common interface for the five evaluated systems."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable

from repro.sim.clock import Simulation


@dataclass(frozen=True)
class SystemDescription:
    """One row of the paper's Fig. 13 mechanism matrix."""

    name: str
    mv_selection: str
    concurrency_control: str


class EvaluatedSystem(abc.ABC):
    """A populated system that can run workload statements and report
    virtual response times."""

    description: SystemDescription

    @property
    def name(self) -> str:
        return self.description.name

    @property
    @abc.abstractmethod
    def sim(self) -> Simulation: ...

    @abc.abstractmethod
    def statement(self, statement_id: str) -> str:
        """Executable SQL for a workload statement id (possibly rewritten
        over this system's views)."""

    @abc.abstractmethod
    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any: ...

    @abc.abstractmethod
    def load_row(self, relation: str, row: dict[str, Any]) -> None: ...

    @abc.abstractmethod
    def finish_load(self) -> None: ...

    @abc.abstractmethod
    def db_size_bytes(self) -> int: ...

    def supports(self, statement_id: str) -> bool:
        return True

    def timed(self, sql: str, params: tuple[Any, ...] = ()) -> tuple[Any, float]:
        sw = self.sim.stopwatch()
        result = self.execute(sql, params)
        return result, sw.stop()

    def timed_id(
        self, statement_id: str, params: tuple[Any, ...] = ()
    ) -> tuple[Any, float]:
        return self.timed(self.statement(statement_id), params)

    def load(self, rows: Iterable[tuple[str, dict[str, Any]]]) -> int:
        count = 0
        for relation, row in rows:
            self.load_row(relation, row)
            count += 1
        return count
