"""VoltDB wrapped in the evaluated-system interface.

Per the paper, three partitioning schemes are needed to support the
maximum number of TPC-W joins; :meth:`statement`/:meth:`supports` pick
the first scheme that admits a query, and writes run under the primary
scheme. Queries unsupported under every scheme report
``supports() == False`` and show as X in Fig. 12."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import UnsupportedStatementError
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.sql.analyzer import analyze_select
from repro.sql.ast import ColumnRef, Delete, Insert, Literal, Param, Select, Update
from repro.sql.parser import parse_statement
from repro.systems.base import EvaluatedSystem, SystemDescription, SystemSession
from repro.voltdb.system import PartitionScheme, TPCW_SCHEMES, VoltDBSystem


class VoltdbSession(SystemSession):
    """VoltDB's serial-partition execution model under multi-client
    scheduling: each partition executor site is single-threaded, so an
    operation queues until every site it is routed to (one for
    single-partition procedures, all of them for multi-partition reads
    and replicated-table writes) is free in virtual time. Auto-commit
    like the base session (every VoltDB procedure is its own
    serializable transaction)."""

    system: "VoltDBEvaluatedSystem"

    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        sim = self.system.sim
        ctx = sim.concurrency
        if ctx is None:
            return self.system.execute(sql, params)
        engine = self.system.engine
        stmt = parse_statement(sql)  # parsed and analyzed once, shared below
        analyzed = (
            analyze_select(stmt, engine.schema)
            if isinstance(stmt, Select) else None
        )
        scheme = self.system.scheme_for(sql, stmt=stmt, analyzed=analyzed)
        if scheme is None:
            raise UnsupportedStatementError(
                "query joins are not supported under any partitioning scheme"
            )
        engine.set_scheme(scheme)
        sites = [
            (engine, p) for p in engine.partitions_for(stmt, params, analyzed)
        ]
        clock = sim.clock
        wait_ms = ctx.serial_delay_ms(sites, clock.now_ms)
        if wait_ms > 0:
            # queueing delay, not work: bypass jitter, advance exactly
            clock.advance(wait_ms)
            sim.metrics.timer("voltdb.queue_wait").record(wait_ms)
        result = engine.execute(sql, params, stmt=stmt, analyzed=analyzed)
        ctx.serial_occupy(sites, clock.now_ms)
        return result


class VoltDBEvaluatedSystem(EvaluatedSystem):
    description = SystemDescription(
        name="VoltDB",
        mv_selection="None",
        concurrency_control="Single-threaded partition processing",
    )

    def __init__(
        self,
        schema: Schema,
        workload: Workload,
        sim: Simulation | None = None,
        schemes: Sequence[PartitionScheme] = TPCW_SCHEMES,
        num_partitions: int = 5,
    ) -> None:
        self.schemes = tuple(schemes)
        self.engine = VoltDBSystem(
            schema, sim, self.schemes[0], num_partitions
        )
        self._statements = {s.statement_id: s.sql for s in workload}

    @property
    def sim(self) -> Simulation:
        return self.engine.sim

    def statement(self, statement_id: str) -> str:
        return self._statements[statement_id]

    def scheme_for(
        self, sql: str, stmt: Any | None = None, analyzed: Any | None = None
    ) -> PartitionScheme | None:
        if stmt is None:
            stmt = parse_statement(sql)
        if not isinstance(stmt, Select):
            return self.schemes[0]
        if analyzed is None:
            analyzed = analyze_select(stmt, self.engine.schema)
        for scheme in self.schemes:
            self.engine.set_scheme(scheme)
            try:
                self.engine.check_supported(stmt, analyzed)
                return scheme
            except UnsupportedStatementError:
                continue
        return None

    def register_statement(self, statement_id: str, sql: str) -> None:
        self._statements[statement_id] = sql

    def supports(self, statement_id: str) -> bool:
        sql = self._statements.get(statement_id)
        if sql is None:
            return False
        stmt = parse_statement(sql)
        if not isinstance(stmt, Select):
            # scheme_for admits every write under the primary scheme, but
            # the procedure layer can only route writes that bind the full
            # primary key with equality — claiming support for anything
            # else fails at execute() with UnsupportedStatementError
            return self._write_supported(stmt)
        return self.scheme_for(sql, stmt=stmt) is not None

    def _write_supported(self, stmt: Any) -> bool:
        """Static mirror of the engine's write routing rules: inserts
        must provide the full key; updates/deletes must bind every key
        attribute with ``= constant`` conjuncts."""
        table = self.engine.tables.get(stmt.table)
        if table is None:
            return False
        if isinstance(stmt, Insert):
            columns = stmt.columns or table.relation.attribute_names
            return all(a in columns for a in table.key_attrs)
        if not isinstance(stmt, (Update, Delete)):
            return False
        bound: set[str] = set()
        for cond in stmt.where:
            col = cond.left if isinstance(cond.left, ColumnRef) else cond.right
            val = cond.right if isinstance(cond.left, ColumnRef) else cond.left
            if (
                not isinstance(col, ColumnRef)
                or cond.op != "="
                or not isinstance(val, (Literal, Param))
            ):
                return False
            bound.add(col.name)
        return all(a in bound for a in table.key_attrs)

    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        scheme = self.scheme_for(sql)
        if scheme is None:
            raise UnsupportedStatementError(
                "query joins are not supported under any partitioning scheme"
            )
        self.engine.set_scheme(scheme)
        return self.engine.execute(sql, params)

    def open_session(self, client_name: str = "client") -> VoltdbSession:
        return VoltdbSession(self, client_name)

    def load_row(self, relation: str, row: dict[str, Any]) -> None:
        self.engine.load_row(relation, row)

    def finish_load(self) -> None:
        self.engine.set_scheme(self.schemes[0])
        self.sim.reset_clock()

    def db_size_bytes(self) -> int:
        return self.engine.db_size_bytes()
