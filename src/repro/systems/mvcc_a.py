"""MVCC-A: Synergy's views and view-indexes + Tephra MVCC instead of the
specialized concurrency control (paper Sec. IX-D2). Isolates the
contribution of the concurrency-control mechanism: reads match Synergy
(same views), writes pay the MVCC begin/commit overhead."""

from __future__ import annotations

from typing import Sequence

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.phoenix.ddl import create_view_entry, create_view_index_entry
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.sql.ast import Select
from repro.sql.printer import to_sql
from repro.synergy.graph import build_schema_graph
from repro.synergy.heuristics import JoinOverlapHeuristic
from repro.synergy.rewrite import rewrite_query
from repro.synergy.selection import select_views
from repro.synergy.trees import generate_rooted_trees
from repro.synergy.view_indexes import (
    ViewIndexPlan,
    recommend_maintenance_indexes,
    recommend_read_indexes,
)
from repro.systems.base import SystemDescription
from repro.systems.mvcc_base import MvccSystemBase


class MvccASystem(MvccSystemBase):
    description = SystemDescription(
        name="MVCC-A",
        mv_selection="Schema relationships aware",
        concurrency_control="MVCC",
    )

    def __init__(
        self,
        schema: Schema,
        workload: Workload,
        roots: Sequence[str],
        sim: Simulation | None = None,
        cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
    ) -> None:
        # run the Synergy views-generation pipeline (no locks attached)
        heuristic = JoinOverlapHeuristic(schema, workload)
        trees, _assignment = generate_rooted_trees(
            build_schema_graph(schema), roots, heuristic
        )
        selection = select_views(workload, schema, trees, heuristic)
        super().__init__(schema, sim, cluster_config, views=selection.final_views)
        self.trees = trees
        self.selection = selection

        for view in self.views:
            create_view_entry(self.client, self.catalog, view.name, view.relations)

        rewritten = {}
        for stmt in workload:
            parsed = stmt.parsed
            if isinstance(parsed, Select):
                views = selection.per_query.get(stmt.statement_id, [])
                rewritten[stmt.statement_id] = rewrite_query(parsed, schema, views)
                self.register_statement(
                    stmt.statement_id, to_sql(rewritten[stmt.statement_id].select)
                )
            else:
                self.register_statement(stmt.statement_id, stmt.sql)

        self.view_index_plan = ViewIndexPlan()
        recommend_read_indexes(schema, rewritten, self.view_index_plan)
        recommend_maintenance_indexes(
            schema, self.views, workload.writes(), self.view_index_plan
        )
        for spec in self.view_index_plan.specs:
            create_view_index_entry(
                self.client,
                self.catalog,
                self.catalog.view(spec.view.name),
                spec.indexed_on,
                name=spec.name,
                covered=(spec.reason == "read"),
            )
