"""MVCC-UA: tuning-advisor (schema-relationships-unaware) views + Tephra
MVCC (paper Sec. IX-D2). On the TPC-W workload the advisor's storage
budget admits a single narrow view — the best-seller chain used by Q10 —
mirroring the paper's observation that the SQL Server tuning advisor
produced one materialized view, used only by Q10."""

from __future__ import annotations

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.errors import ViewSelectionError
from repro.phoenix.ddl import create_view_entry, create_view_index_entry
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.sql.analyzer import analyze_select
from repro.sql.ast import Select
from repro.sql.printer import to_sql
from repro.synergy.rewrite import rewrite_query
from repro.systems.advisor import AdvisorCandidate, TuningAdvisor
from repro.systems.base import SystemDescription
from repro.systems.mvcc_base import MvccSystemBase


class MvccUASystem(MvccSystemBase):
    description = SystemDescription(
        name="MVCC-UA",
        mv_selection="Schema relationships un-aware",
        concurrency_control="MVCC",
    )

    def __init__(
        self,
        schema: Schema,
        workload: Workload,
        row_estimates: dict[str, int],
        sim: Simulation | None = None,
        cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
        storage_budget_fraction: float = 0.6,
        max_views: int | None = 1,
    ) -> None:
        advisor = TuningAdvisor(
            schema, workload, row_estimates, storage_budget_fraction, max_views
        )
        self.recommendations: list[AdvisorCandidate] = advisor.recommend()
        super().__init__(
            schema, sim, cluster_config,
            views=[c.view for c in self.recommendations],
        )
        self.advisor = advisor

        for cand in self.recommendations:
            create_view_entry(
                self.client,
                self.catalog,
                cand.view.name,
                cand.view.relations,
                attributes=cand.attributes,
            )

        # rewrite the source queries of each recommended view; everything
        # else runs against base tables
        view_by_query: dict[str, AdvisorCandidate] = {}
        for cand in self.recommendations:
            for qid in cand.source_queries:
                view_by_query[qid] = cand

        for stmt in workload:
            parsed = stmt.parsed
            sql = stmt.sql
            cand = view_by_query.get(stmt.statement_id)
            if cand is not None and isinstance(parsed, Select):
                try:
                    sql = to_sql(
                        rewrite_query(parsed, schema, [cand.view]).select
                    )
                except ViewSelectionError:
                    sql = stmt.sql  # view does not fit this query shape
            self.register_statement(stmt.statement_id, sql)

        # a read index per filter attribute of the rewritten queries
        for cand in self.recommendations:
            entry = self.catalog.view(cand.view.name)
            for qid in cand.source_queries:
                stmt = workload.by_id(qid)
                parsed = stmt.parsed
                if not isinstance(parsed, Select):
                    continue
                analyzed = analyze_select(parsed, schema)
                for f in analyzed.filters:
                    if (
                        f.relation in cand.view.relations
                        and f.attr in entry.attrs
                        and f.attr != entry.key_attrs[0]
                    ):
                        name = f"{entry.name}.ix_{f.attr}"
                        if not self.catalog.has_entry(name):
                            create_view_index_entry(
                                self.client, self.catalog, entry,
                                (f.attr,), name=name,
                            )
