"""A workload-driven, schema-relationship-UNaware view advisor.

Stands in for the SQL Server Database Engine Tuning Advisor the paper
uses to build MVCC-UA (Sec. IX-D2), in the spirit of Agrawal et al.
(VLDB'00): candidates are *syntactically relevant* views derived from
each query's join set, projected down to the attributes the query
touches (DTA's indexed views are narrow); selection is greedy by
estimated benefit under a storage budget.

"Unaware" means: no rooted-tree restriction, no single-hierarchy rule,
no coordination with any locking scheme — a candidate may span what
Synergy would treat as separate locking hierarchies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.relational.datatypes import DataType
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sql.analyzer import analyze_select
from repro.sql.ast import ColumnRef, FuncCall, Select, Star
from repro.synergy.graph import GraphEdge, build_schema_graph
from repro.synergy.heuristics import joins_match_edge
from repro.synergy.views import ViewDef


@dataclass
class AdvisorCandidate:
    """One candidate view: a join chain + the attribute projection."""

    view: ViewDef
    attributes: tuple[str, ...]
    benefit: float
    size_estimate: int
    source_queries: tuple[str, ...]

    @property
    def name(self) -> str:
        return self.view.name


class TuningAdvisor:
    """Greedy benefit/storage view selection over syntactic candidates."""

    def __init__(
        self,
        schema: Schema,
        workload: Workload,
        row_estimates: dict[str, int],
        storage_budget_fraction: float = 0.6,
        max_views: int | None = 1,
    ) -> None:
        self.schema = schema
        self.workload = workload
        self.row_estimates = dict(row_estimates)
        self.storage_budget_fraction = storage_budget_fraction
        self.max_views = max_views
        """Recommendation cap. The paper's DTA run produced exactly one
        materialized view (used by Q10); we default to the same cap so
        MVCC-UA matches the evaluated configuration. Pass None to let the
        storage budget alone decide (ablation)."""
        self.graph = build_schema_graph(schema)

    # -- candidate enumeration ---------------------------------------------------------
    def _chain_from_query(self, select: Select) -> tuple[ViewDef, set[str]] | None:
        """Extract the longest FK chain equated by the query, if any.

        Ignores schema hierarchies entirely: any chain of key/FK equi
        joins is materializable for the advisor."""
        if select.uses_relation_twice():
            return None  # indexed views cannot contain self joins
        analyzed = analyze_select(select, self.schema)
        joins = analyzed.equi_joins()
        if not joins:
            return None
        matched: list[GraphEdge] = [
            e for e in self.graph.edges if joins_match_edge(e, joins)
        ]
        if not matched:
            return None
        # assemble the longest parent->child chain among matched edges
        children = {e.child for e in matched}
        starts = [e for e in matched if e.parent not in children]
        best_chain: list[GraphEdge] = []

        def extend(chain: list[GraphEdge]) -> None:
            nonlocal best_chain
            if len(chain) > len(best_chain):
                best_chain = list(chain)
            last = chain[-1].child
            for e in matched:
                if e.parent == last and e not in chain:
                    chain.append(e)
                    extend(chain)
                    chain.pop()

        for s in starts:
            extend([s])
        if not best_chain:
            return None
        relations = [best_chain[0].parent] + [e.child for e in best_chain]
        view = ViewDef(
            relations=tuple(relations),
            edges=tuple(best_chain),
            root=relations[0],
            name_override="ADV_" + "__".join(relations),
        )
        needed = self._needed_attributes(select, analyzed, set(relations))
        return view, needed

    def _needed_attributes(
        self, select: Select, analyzed: Any, relations: set[str]
    ) -> set[str]:
        needed: set[str] = set()

        def note(col: ColumnRef) -> None:
            for rel_name in relations:
                rel = self.schema.relation(rel_name)
                if rel.has_attribute(col.name):
                    needed.add(col.name)

        for p in select.projections:
            if isinstance(p, Star):
                for rel_name in relations:
                    needed.update(
                        self.schema.relation(rel_name).attribute_names
                    )
            elif isinstance(p, ColumnRef):
                note(p)
            elif isinstance(p, FuncCall):
                for a in p.args:
                    if isinstance(a, ColumnRef):
                        note(a)
        for cond in select.where:
            for side in (cond.left, cond.right):
                if isinstance(side, ColumnRef):
                    note(side)
        for g in select.group_by:
            note(g)
        for o in select.order_by:
            if isinstance(o.expr, ColumnRef):
                note(o.expr)
            elif isinstance(o.expr, FuncCall):
                for a in o.expr.args:
                    if isinstance(a, ColumnRef):
                        note(a)
        return needed

    # -- cost/benefit model --------------------------------------------------------------
    _WIDTHS = {DataType.VARCHAR: 40}  # numeric/date types default to 8

    def _attr_width(self, relation: str, attr: str) -> int:
        dtype = self.schema.relation(relation).dtype_of(attr)
        return self._WIDTHS.get(dtype, 8)

    def _estimate(self, view: ViewDef, attrs: set[str], freq: float) -> tuple[float, int]:
        """(benefit, size). Benefit ~ rows the join algorithm would touch;
        size ~ view rows x total projected attribute width."""
        rows_joined = sum(
            self.row_estimates.get(r, 1000) for r in view.relations
        )
        benefit = freq * rows_joined
        view_rows = self.row_estimates.get(view.last, 1000)
        width = 0
        for rel_name in view.relations:
            rel = self.schema.relation(rel_name)
            for a in rel.attribute_names:
                if a in attrs:
                    width += self._attr_width(rel_name, a)
        size = view_rows * max(width, 8)
        return benefit, size

    def base_size_estimate(self) -> int:
        total = 0
        for rel in self.schema:
            row_width = sum(
                self._attr_width(rel.name, a) for a in rel.attribute_names
            )
            total += self.row_estimates.get(rel.name, 1000) * row_width
        return total

    # -- selection ----------------------------------------------------------------------
    def recommend(self) -> list[AdvisorCandidate]:
        candidates: dict[tuple[str, ...], AdvisorCandidate] = {}
        for stmt in self.workload:
            parsed = stmt.parsed
            if not isinstance(parsed, Select):
                continue
            chain = self._chain_from_query(parsed)
            if chain is None:
                continue
            view, attrs = chain
            attrs |= set(self.schema.relation(view.last).primary_key)
            benefit, size = self._estimate(view, attrs, stmt.frequency)
            key = view.relations
            if key in candidates:
                existing = candidates[key]
                merged_attrs = tuple(
                    dict.fromkeys(existing.attributes + tuple(sorted(attrs)))
                )
                candidates[key] = AdvisorCandidate(
                    view=existing.view,
                    attributes=merged_attrs,
                    benefit=existing.benefit + benefit,
                    size_estimate=max(existing.size_estimate, size),
                    source_queries=existing.source_queries
                    + (stmt.statement_id,),
                )
            else:
                ordered = tuple(
                    a
                    for rel_name in view.relations
                    for a in self.schema.relation(rel_name).attribute_names
                    if a in attrs
                )
                candidates[key] = AdvisorCandidate(
                    view=view,
                    attributes=ordered,
                    benefit=benefit,
                    size_estimate=size,
                    source_queries=(stmt.statement_id,),
                )

        budget = self.storage_budget_fraction * self.base_size_estimate()
        chosen: list[AdvisorCandidate] = []
        spent = 0
        for cand in sorted(
            candidates.values(), key=lambda c: (-c.benefit, c.size_estimate)
        ):
            if self.max_views is not None and len(chosen) >= self.max_views:
                break
            if spent + cand.size_estimate > budget:
                continue
            chosen.append(cand)
            spent += cand.size_estimate
        return chosen
