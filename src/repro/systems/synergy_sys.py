"""Synergy wrapped in the evaluated-system interface."""

from __future__ import annotations

from typing import Any, Sequence

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.relational.schema import Schema
from repro.relational.workload import Workload
from repro.sim.clock import Simulation
from repro.synergy.system import SynergySystem
from repro.systems.base import EvaluatedSystem, SystemDescription


class SynergyEvaluatedSystem(EvaluatedSystem):
    """Synergy uses the default auto-commit :class:`SystemSession` for
    multi-client runs: each write is one lock-protected transaction
    through the transaction layer, and contention surfaces as
    ``LockWaitRequired`` from the LockManager's recorded hold intervals
    (blocking-and-retry in the scheduler's transaction runner)."""

    description = SystemDescription(
        name="Synergy",
        mv_selection="Schema relationships aware",
        concurrency_control="Hierarchical locking",
    )

    def __init__(
        self,
        schema: Schema,
        workload: Workload,
        roots: Sequence[str],
        sim: Simulation | None = None,
        cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
    ) -> None:
        self.system = SynergySystem(
            schema, workload, roots, sim=sim, cluster_config=cluster_config
        )

    @property
    def sim(self) -> Simulation:
        return self.system.sim

    def statement(self, statement_id: str) -> str:
        return self.system.statements[statement_id]

    def register_statement(self, statement_id: str, sql: str) -> None:
        # ad-hoc statements skip the view-rewrite pipeline (that runs at
        # construction over the declared workload) and execute over base
        # tables — correct, just not view-accelerated
        self.system.statements[statement_id] = sql

    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        return self.system.execute(sql, params)

    def load_row(self, relation: str, row: dict[str, Any]) -> None:
        self.system.load_row(relation, row)

    def finish_load(self) -> None:
        self.system.finish_load()

    def db_size_bytes(self) -> int:
        return self.system.db_size_bytes()
