"""The five evaluated systems (paper Fig. 13) behind one interface.

==========  =============================  ===============================
System      Materialized-views selection   Concurrency control
==========  =============================  ===============================
VoltDB      none                           single-threaded partitions
Synergy     schema-relationships aware     hierarchical locking
MVCC-A      schema-relationships aware     MVCC (Tephra)
MVCC-UA     schema-relationships UNaware   MVCC (Tephra)
Baseline    none                           MVCC (Tephra)
==========  =============================  ===============================
"""

from repro.systems.base import EvaluatedSystem, SystemDescription, SystemSession
from repro.systems.baseline import BaselineSystem
from repro.systems.mvcc_a import MvccASystem
from repro.systems.mvcc_base import MvccSession
from repro.systems.mvcc_ua import MvccUASystem
from repro.systems.synergy_sys import SynergyEvaluatedSystem
from repro.systems.voltdb_sys import VoltDBEvaluatedSystem, VoltdbSession
from repro.systems.advisor import AdvisorCandidate, TuningAdvisor

__all__ = [
    "AdvisorCandidate",
    "BaselineSystem",
    "EvaluatedSystem",
    "MvccASystem",
    "MvccSession",
    "MvccUASystem",
    "SynergyEvaluatedSystem",
    "SystemDescription",
    "SystemSession",
    "TuningAdvisor",
    "VoltDBEvaluatedSystem",
    "VoltdbSession",
]
