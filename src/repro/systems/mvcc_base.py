"""Shared machinery for the three MVCC-backed systems (Baseline, MVCC-A,
MVCC-UA): HBase + Phoenix + Tephra transactions, optional views
maintained inside each write transaction (no hierarchical locks, no
dirty-row marking — consistency comes from MVCC snapshots instead)."""

from __future__ import annotations

from typing import Any

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.errors import PlanError
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.mvcc.tephra import MvccTransaction, TephraServer
from repro.phoenix.catalog import Catalog
from repro.phoenix.ddl import create_baseline_schema
from repro.phoenix.executor import PhoenixConnection
from repro.phoenix.writes import WriteExecutor, eval_const, key_from_where
from repro.relational.schema import Schema
from repro.sim.clock import Simulation
from repro.sql.ast import Delete, Insert, Select, Update
from repro.sql.parser import parse_statement
from repro.synergy.maintenance import ViewMaintainer
from repro.synergy.views import ViewDef
from repro.systems.base import EvaluatedSystem, SystemSession


class MvccSession(SystemSession):
    """A per-client session holding ONE open Tephra transaction across
    statements, so transactions from different virtual clients genuinely
    overlap: begins and commits interleave at the shared TephraServer,
    and the optimistic check at commit detects *real* write-write
    conflicts (raised as ``TransactionConflictError`` for the scheduler's
    transaction runner to abort and retry). The Tephra write transaction
    opens lazily at the first write statement, so read-only transactions
    pay only the cached-snapshot refresh, never the begin round trip.

    Writes inside an open transaction are buffered as intents: the
    change-set key is recorded at ``execute`` time (so the optimistic
    check sees it), but the store mutation is applied only after
    ``commit`` passes the conflict check — the equivalent of Tephra's
    rollback of persisted changes on abort. An aborted transaction
    therefore leaves no trace in the store, and concurrent readers never
    observe uncommitted writes.

    Isolation model: reads inside the open transaction go straight to
    the committed store — **read committed**, not a begin-time snapshot
    (the store keeps no per-transaction versions), and they do not see
    the session's own buffered writes. Combined with write-write-only
    conflict detection, serializability is guaranteed for transactions
    whose writes are blind (the scheduled TPC-W mixes and the property
    suites); read-write anti-dependencies are not tracked, as in real
    Tephra."""

    system: "MvccSystemBase"

    rolls_back_on_abort = True  # buffered intents are discarded on abort

    def __init__(self, system: "MvccSystemBase", client_name: str = "client") -> None:
        super().__init__(system, client_name)
        self.tx: MvccTransaction | None = None
        self._open = False
        self._snapshot_charged = False
        self._pending: list[tuple[Any, tuple[Any, ...], tuple[Any, dict]]] = []

    def begin(self) -> None:
        if self._open:
            raise PlanError(f"{self.client_name}: transaction already open")
        self._open = True
        self._snapshot_charged = False
        self._pending = []

    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        if not self._open:  # auto-commit outside begin/commit
            return self.system.execute(sql, params)
        sim = self.system.sim
        stmt = parse_statement(sql)
        if isinstance(stmt, Select):
            if self.tx is None and not self._snapshot_charged:
                # read-only so far: pay only the client-cached snapshot
                # refresh, matching the single-client read path
                sim.charge(sim.cost.mvcc_read_snapshot_ms, "mvcc.snapshot")
                self._snapshot_charged = True
            # read committed: straight from the store, no server round
            # trip (see the class docstring for the isolation model)
            return self.system.conn.execute_query(stmt, params)
        sim.charge(sim.cost.phoenix_statement_ms, "phoenix.statement")
        if self.tx is None:
            # the write transaction opens lazily at the first write, so
            # read-only transactions never pay the begin round trip
            self.tx = self.system.tephra.begin(read_only=False)
        target = self.system._write_target(stmt, tuple(params))
        self.tx.record_write(target[0].name, target[0].encode_key(target[1]))
        self._pending.append((stmt, tuple(params), target))
        return None  # row count is unknown until the intent is applied

    def commit(self) -> None:
        if not self._open:
            return
        self._open = False
        tx, self.tx = self.tx, None
        pending, self._pending = self._pending, []
        if tx is None:
            return  # read-only transaction: nothing to commit
        self.system.tephra.commit(tx)  # may raise TransactionConflictError
        for stmt, params, target in pending:
            self.system._apply_write(stmt, params, target)

    def abort(self) -> None:
        if not self._open:
            return
        self._open = False
        tx, self.tx = self.tx, None
        self._pending = []
        if tx is not None and tx.state == "open":
            self.system.tephra.abort(tx)


class MvccSystemBase(EvaluatedSystem):
    """HBase + Phoenix with Phoenix-Tephra transaction support enabled."""

    def __init__(
        self,
        schema: Schema,
        sim: Simulation | None = None,
        cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
        views: list[ViewDef] | None = None,
        query_engine: str = "legacy",
        cost_based_planner: bool = False,
    ) -> None:
        self._sim = sim or Simulation(cost=cluster_config.cost)
        self.schema = schema
        self.cluster = HBaseCluster(self._sim, cluster_config)
        self.client = HBaseClient(self.cluster)
        self.catalog: Catalog = create_baseline_schema(self.client, schema)
        self.tephra = TephraServer(self._sim)
        self.views: list[ViewDef] = list(views or [])
        self.conn = PhoenixConnection(
            self.client, self.catalog,
            dirty_check_views=False, mvcc_version_check=True,
            engine=query_engine, cost_based=cost_based_planner,
        )
        self.writer = WriteExecutor(self.client, self.catalog)
        self.maintainer = ViewMaintainer(self.client, self.catalog, self.views)
        self._statements: dict[str, str] = {}

    @property
    def sim(self) -> Simulation:
        return self._sim

    # -- statements ---------------------------------------------------------------
    def register_statement(self, statement_id: str, sql: str) -> None:
        self._statements[statement_id] = sql

    def statement(self, statement_id: str) -> str:
        return self._statements[statement_id]

    # -- loading ------------------------------------------------------------------
    def load_row(self, relation: str, row: dict[str, Any]) -> None:
        self.writer.insert_row(relation, row)
        self.maintainer.apply_insert(relation, row)

    def finish_load(self) -> None:
        self.cluster.major_compact()
        self.conn.analyze()
        self._sim.reset_clock()

    def db_size_bytes(self) -> int:
        return self.cluster.total_size_bytes()

    def open_session(self, client_name: str = "client") -> MvccSession:
        return MvccSession(self, client_name)

    # -- execution ------------------------------------------------------------------
    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        stmt = parse_statement(sql)
        if isinstance(stmt, Select):
            tx = self.tephra.begin(read_only=True)
            try:
                rows = self.conn.execute_query(stmt, params)
            except BaseException:
                self.tephra.abort(tx)
                raise
            self.tephra.commit(tx)
            return rows
        self._sim.charge(
            self._sim.cost.phoenix_statement_ms, "phoenix.statement"
        )
        tx = self.tephra.begin(read_only=False)
        try:
            result = self._execute_write(stmt, tuple(params), tx)
        except BaseException:
            self.tephra.abort(tx)
            raise
        self.tephra.commit(tx)
        return result

    def _execute_write(
        self, stmt: Any, params: tuple[Any, ...], tx: MvccTransaction
    ) -> int:
        target = self._write_target(stmt, params)
        tx.record_write(target[0].name, target[0].encode_key(target[1]))
        return self._apply_write(stmt, params, target)

    def _write_target(
        self, stmt: Any, params: tuple[Any, ...]
    ) -> tuple[Any, dict[str, Any]]:
        """The catalog entry and row/key dict a write statement touches.
        Pure computation: lets a session record its change-set key
        before the store mutation is applied."""
        if not isinstance(stmt, (Insert, Update, Delete)):
            raise PlanError(f"not a write statement: {stmt}")
        entry = self.catalog.table_for_relation(stmt.table)
        if isinstance(stmt, Insert):
            columns = stmt.columns or entry.attrs
            row = {c: eval_const(v, params) for c, v in zip(columns, stmt.values)}
            return entry, row
        return entry, key_from_where(entry, stmt.where, params)

    def _apply_write(
        self,
        stmt: Any,
        params: tuple[Any, ...],
        target: tuple[Any, dict[str, Any]] | None = None,
    ) -> int:
        entry, row_or_key = target or self._write_target(stmt, params)
        if isinstance(stmt, Insert):
            self.writer.insert_row(stmt.table, row_or_key)
            self.maintainer.apply_insert(stmt.table, row_or_key)
            return 1
        if isinstance(stmt, Update):
            changes = {c: eval_const(v, params) for c, v in stmt.assignments}
            if self.writer.update_row(stmt.table, row_or_key, changes) is None:
                return 0
            for view in self.maintainer.views_for_update(stmt.table):
                view_entry = self.maintainer.view_entry(view)
                if not any(a in view_entry.attrs for a in changes):
                    continue  # narrow advisor views may not store the attr
                rows = self.maintainer.locate_view_rows(view, stmt.table, row_or_key)
                self.maintainer.write_view_rows(view, rows, changes)
            return 1
        # only Delete remains: _write_target already rejected non-writes
        if self.writer.delete_row(stmt.table, row_or_key) is None:
            return 0
        self.maintainer.apply_delete(stmt.table, row_or_key)
        return 1
