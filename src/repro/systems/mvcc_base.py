"""Shared machinery for the three MVCC-backed systems (Baseline, MVCC-A,
MVCC-UA): HBase + Phoenix + Tephra transactions, optional views
maintained inside each write transaction (no hierarchical locks, no
dirty-row marking — consistency comes from MVCC snapshots instead)."""

from __future__ import annotations

from typing import Any

from repro.config import ClusterConfig, DEFAULT_CLUSTER_CONFIG
from repro.errors import PlanError
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.mvcc.tephra import MvccTransaction, TephraServer
from repro.phoenix.catalog import Catalog
from repro.phoenix.ddl import create_baseline_schema
from repro.phoenix.executor import PhoenixConnection
from repro.phoenix.writes import WriteExecutor, eval_const, key_from_where
from repro.relational.schema import Schema
from repro.sim.clock import Simulation
from repro.sql.ast import Delete, Insert, Select, Update
from repro.sql.parser import parse_statement
from repro.synergy.maintenance import ViewMaintainer
from repro.synergy.views import ViewDef
from repro.systems.base import EvaluatedSystem


class MvccSystemBase(EvaluatedSystem):
    """HBase + Phoenix with Phoenix-Tephra transaction support enabled."""

    def __init__(
        self,
        schema: Schema,
        sim: Simulation | None = None,
        cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
        views: list[ViewDef] | None = None,
    ) -> None:
        self._sim = sim or Simulation(cost=cluster_config.cost)
        self.schema = schema
        self.cluster = HBaseCluster(self._sim, cluster_config)
        self.client = HBaseClient(self.cluster)
        self.catalog: Catalog = create_baseline_schema(self.client, schema)
        self.tephra = TephraServer(self._sim)
        self.views: list[ViewDef] = list(views or [])
        self.conn = PhoenixConnection(
            self.client, self.catalog,
            dirty_check_views=False, mvcc_version_check=True,
        )
        self.writer = WriteExecutor(self.client, self.catalog)
        self.maintainer = ViewMaintainer(self.client, self.catalog, self.views)
        self._statements: dict[str, str] = {}

    @property
    def sim(self) -> Simulation:
        return self._sim

    # -- statements ---------------------------------------------------------------
    def register_statement(self, statement_id: str, sql: str) -> None:
        self._statements[statement_id] = sql

    def statement(self, statement_id: str) -> str:
        return self._statements[statement_id]

    # -- loading ------------------------------------------------------------------
    def load_row(self, relation: str, row: dict[str, Any]) -> None:
        self.writer.insert_row(relation, row)
        self.maintainer.apply_insert(relation, row)

    def finish_load(self) -> None:
        self.cluster.major_compact()
        self.conn.analyze()
        self._sim.reset_clock()

    def db_size_bytes(self) -> int:
        return self.cluster.total_size_bytes()

    # -- execution ------------------------------------------------------------------
    def execute(self, sql: str, params: tuple[Any, ...] = ()) -> Any:
        stmt = parse_statement(sql)
        if isinstance(stmt, Select):
            tx = self.tephra.begin(read_only=True)
            try:
                rows = self.conn.execute_query(stmt, params)
            except BaseException:
                self.tephra.abort(tx)
                raise
            self.tephra.commit(tx)
            return rows
        self._sim.charge(
            self._sim.cost.phoenix_statement_ms, "phoenix.statement"
        )
        tx = self.tephra.begin(read_only=False)
        try:
            result = self._execute_write(stmt, tuple(params), tx)
        except BaseException:
            self.tephra.abort(tx)
            raise
        self.tephra.commit(tx)
        return result

    def _execute_write(
        self, stmt: Any, params: tuple[Any, ...], tx: MvccTransaction
    ) -> int:
        if isinstance(stmt, Insert):
            entry = self.catalog.table_for_relation(stmt.table)
            columns = stmt.columns or entry.attrs
            row = {c: eval_const(v, params) for c, v in zip(columns, stmt.values)}
            tx.record_write(entry.name, entry.encode_key(row))
            self.writer.insert_row(stmt.table, row)
            self.maintainer.apply_insert(stmt.table, row)
            return 1
        if isinstance(stmt, Update):
            entry = self.catalog.table_for_relation(stmt.table)
            key = key_from_where(entry, stmt.where, params)
            changes = {c: eval_const(v, params) for c, v in stmt.assignments}
            tx.record_write(entry.name, entry.encode_key(key))
            if self.writer.update_row(stmt.table, key, changes) is None:
                return 0
            for view in self.maintainer.views_for_update(stmt.table):
                view_entry = self.maintainer.view_entry(view)
                if not any(a in view_entry.attrs for a in changes):
                    continue  # narrow advisor views may not store the attr
                rows = self.maintainer.locate_view_rows(view, stmt.table, key)
                self.maintainer.write_view_rows(view, rows, changes)
            return 1
        if isinstance(stmt, Delete):
            entry = self.catalog.table_for_relation(stmt.table)
            key = key_from_where(entry, stmt.where, params)
            tx.record_write(entry.name, entry.encode_key(key))
            if self.writer.delete_row(stmt.table, key) is None:
                return 0
            self.maintainer.apply_delete(stmt.table, key)
            return 1
        raise PlanError(f"not a write statement: {stmt}")
