"""Deterministic random-number streams.

Every randomized component derives its own independent stream from a
root seed plus a string label, so adding a new consumer never perturbs
the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, label)``."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(root_seed: int, label: str) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded from ``(root_seed, label)``."""
    return np.random.default_rng(derive_seed(root_seed, label))
