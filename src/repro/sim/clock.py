"""Virtual clock and simulation context.

The simulator is single-threaded: a single :class:`SimClock` advances as
engines charge costs. Response times are measured with
:class:`Stopwatch`, which records the clock delta around an operation —
the virtual analogue of the paper's client-side ``tau``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from contextlib import contextmanager

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import derive_rng


class SimClock:
    """A monotonically advancing virtual clock, in milliseconds."""

    __slots__ = ("_now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Move the clock forward by ``delta_ms`` (must be >= 0)."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards: {delta_ms}")
        self._now_ms += delta_ms
        return self._now_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now_ms:.3f}ms)"


@dataclass
class Stopwatch:
    """Measures elapsed virtual time between :meth:`start` and :meth:`stop`."""

    clock: SimClock
    started_at: float = field(default=0.0)
    elapsed_ms: float = field(default=0.0)

    def start(self) -> "Stopwatch":
        self.started_at = self.clock.now_ms
        return self

    def stop(self) -> float:
        self.elapsed_ms = self.clock.now_ms - self.started_at
        return self.elapsed_ms


class Simulation:
    """Shared context for one simulated cluster.

    Holds the clock, the cost model, a metrics registry and a
    deterministic RNG stream. All engine components receive the same
    ``Simulation`` so their charges accumulate on one timeline.

    ``jitter_fraction`` > 0 makes every charge multiplicatively noisy
    (seeded, reproducible), which is how repeated experiment runs get a
    realistic non-zero standard error.

    ``concurrency`` is None in ordinary single-client operation. While a
    :class:`~repro.sim.scheduler.DeterministicScheduler` drives virtual
    clients it installs a ``ConcurrencyContext`` here and swaps ``clock``
    to the running client's clock per segment; engine layers consult
    ``concurrency`` for contention (lock hold intervals, serial
    resources) and behave exactly as before when it is None.
    """

    def __init__(
        self,
        cost: CostModel = DEFAULT_COST_MODEL,
        seed: int = 0,
        jitter_fraction: float = 0.0,
    ) -> None:
        self.cost = cost
        self.clock = SimClock()
        self.metrics = MetricsRegistry()
        self.seed = seed
        self.jitter_fraction = float(jitter_fraction)
        self.concurrency = None  # ConcurrencyContext during scheduled runs
        self._rng = derive_rng(seed, "simulation-jitter")

    # -- charging ---------------------------------------------------------------
    def charge(self, delta_ms: float, what: str | None = None) -> None:
        """Advance virtual time by ``delta_ms`` (plus optional jitter)."""
        if delta_ms < 0:
            raise ValueError(f"negative charge: {delta_ms}")
        if self.jitter_fraction > 0.0 and delta_ms > 0.0:
            factor = 1.0 + self.jitter_fraction * float(self._rng.standard_normal())
            delta_ms *= max(factor, 0.1)
        # inlined clock.advance: charge() runs once per row on hot paths
        self.clock._now_ms += delta_ms
        if what is not None:
            self.metrics.timer(what).record(delta_ms)

    def stopwatch(self) -> Stopwatch:
        return Stopwatch(self.clock).start()

    @contextmanager
    def measure(self, name: str | None = None) -> Iterator[Stopwatch]:
        """Context manager yielding a running stopwatch; stops on exit."""
        sw = self.stopwatch()
        try:
            yield sw
        finally:
            sw.stop()
            if name is not None:
                self.metrics.timer(name).record(sw.elapsed_ms)

    def reset_clock(self) -> None:
        """Zero the clock (data and metrics are preserved)."""
        self.clock = SimClock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulation(now={self.clock.now_ms:.3f}ms, seed={self.seed})"
