"""Virtual-time simulation substrate.

Everything latency-related in the simulated cluster flows through a
:class:`~repro.sim.clock.SimClock` owned by a
:class:`~repro.sim.clock.Simulation`. Engines *charge* virtual
milliseconds for the work they do (RPCs, rows scanned, bytes moved);
experiments measure elapsed virtual time, which plays the role of the
paper's measured response time.
"""

from repro.sim.clock import SimClock, Simulation, Stopwatch
from repro.sim.latency import LatencyCharger
from repro.sim.metrics import Counter, MetricsRegistry, Timer
from repro.sim.rng import derive_rng

__all__ = [
    "SimClock",
    "Simulation",
    "Stopwatch",
    "LatencyCharger",
    "Counter",
    "MetricsRegistry",
    "Timer",
    "derive_rng",
]
