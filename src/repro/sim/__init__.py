"""Virtual-time simulation substrate.

Everything latency-related in the simulated cluster flows through a
:class:`~repro.sim.clock.SimClock` owned by a
:class:`~repro.sim.clock.Simulation`. Engines *charge* virtual
milliseconds for the work they do (RPCs, rows scanned, bytes moved);
experiments measure elapsed virtual time, which plays the role of the
paper's measured response time.

Multi-client runs go through the
:class:`~repro.sim.scheduler.DeterministicScheduler`: N virtual clients
with their own clocks, cooperatively interleaved by smallest virtual
timestamp (see ``docs/CONCURRENCY.md``).

Fault injection lives in :mod:`repro.sim.faults` (imported directly,
not re-exported here: it sits *above* the HBase layer it crashes): a
daemon scheduler participant applies seeded crash/recover/restart
plans while chaos clients ride failover with bounded backoff, and a
history recorder checks durability and scan-consistency invariants
(see ``docs/FAULTS.md``).
"""

from repro.sim.clock import SimClock, Simulation, Stopwatch
from repro.sim.latency import LatencyCharger
from repro.sim.metrics import Counter, MetricsRegistry, Timer
from repro.sim.rng import derive_rng
from repro.sim.scheduler import (
    ClientStats,
    ConcurrencyContext,
    DeterministicScheduler,
    SchedulerReport,
    VirtualClient,
    percentile,
    run_transaction,
)

__all__ = [
    "SimClock",
    "Simulation",
    "Stopwatch",
    "LatencyCharger",
    "Counter",
    "MetricsRegistry",
    "Timer",
    "derive_rng",
    "ClientStats",
    "ConcurrencyContext",
    "DeterministicScheduler",
    "SchedulerReport",
    "VirtualClient",
    "percentile",
    "run_transaction",
]
