"""Lightweight counters and timers for instrumenting the simulated cluster.

Used by tests to assert *mechanism* (e.g. "the nested-loop join issued
one Get RPC per outer row") rather than only end-to-end latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    name: str
    value: int = 0

    def inc(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0


@dataclass
class Timer:
    """Accumulates duration samples; exposes count/total/mean/stderr."""

    name: str
    samples: list[float] = field(default_factory=list)

    def record(self, duration_ms: float) -> None:
        self.samples.append(duration_ms)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total_ms(self) -> float:
        return float(sum(self.samples))

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.samples else 0.0

    @property
    def stderr_ms(self) -> float:
        n = self.count
        if n < 2:
            return 0.0
        mean = self.mean_ms
        var = sum((s - mean) ** 2 for s in self.samples) / (n - 1)
        return math.sqrt(var / n)

    def reset(self) -> None:
        self.samples.clear()


class MetricsRegistry:
    """Name-addressable store of counters and timers."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def timers(self) -> dict[str, Timer]:
        return dict(self._timers)

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for t in self._timers.values():
            t.reset()
