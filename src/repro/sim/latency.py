"""Latency-charging helpers shared by the storage and SQL engines.

A :class:`LatencyCharger` wraps a :class:`~repro.sim.clock.Simulation`
and exposes semantically named charge methods (one per physical effect),
so call sites read like the mechanism they model::

    charger.rpc()                    # one round trip
    charger.rows_read(n)             # server-side row materialization
    charger.transfer(num_bytes)      # result bytes over the wire

Counter objects and metric names are resolved once per charger — the
read/write paths call these methods per row, so the per-call work is
kept to a counter increment plus one ``Simulation.charge``.
"""

from __future__ import annotations

from repro.sim.clock import Simulation


class LatencyCharger:
    """Semantic layer over :meth:`Simulation.charge`."""

    def __init__(self, sim: Simulation, component: str) -> None:
        self.sim = sim
        self.component = component
        self.cost = sim.cost
        # cost model is frozen: snapshot the per-row constants
        self._read_row_ms = sim.cost.read_row_ms
        self._write_row_ms = sim.cost.write_row_ms
        metrics = sim.metrics
        self._rpc_name = f"{component}.rpc"
        self._transfer_name = f"{component}.transfer"
        self._rpc_counter = metrics.counter(self._rpc_name)
        self._bytes_counter = metrics.counter(f"{component}.bytes")
        self._seek_counter = metrics.counter(f"{component}.seek")
        self._rows_read_counter = metrics.counter(f"{component}.rows_read")
        self._rows_written_counter = metrics.counter(f"{component}.rows_written")
        self._wal_counter = metrics.counter(f"{component}.wal_append")
        self._cap_counter = metrics.counter(f"{component}.check_and_put")

    # -- generic ------------------------------------------------------------------
    def rpc(self, count: int = 1) -> None:
        self._rpc_counter.inc(count)
        self.sim.charge(self.cost.rpc_base_ms * count, self._rpc_name)

    def transfer(self, num_bytes: int) -> None:
        if num_bytes <= 0:
            return
        kib = num_bytes / 1024.0
        self._bytes_counter.inc(num_bytes)
        self.sim.charge(self.cost.network_ms_per_kb * kib, self._transfer_name)

    # -- storage-side work -----------------------------------------------------------
    # rows_read/rows_written run once per row on scan/load paths; when
    # the simulation is jitter-free the charge is a plain clock bump
    # (numerically identical to Simulation.charge, minus two calls)
    def seek(self, count: int = 1) -> None:
        self._seek_counter.inc(count)
        self.sim.charge(self.cost.seek_ms * count)

    def row_read(self) -> None:
        """``rows_read(1)`` specialized for the per-row scan loop."""
        self._rows_read_counter.value += 1
        sim = self.sim
        if sim.jitter_fraction:
            sim.charge(self._read_row_ms)
        else:
            sim.clock._now_ms += self._read_row_ms

    def rows_read(self, n: int) -> None:
        if n <= 0:
            return
        self._rows_read_counter.value += n
        sim = self.sim
        if sim.jitter_fraction:
            sim.charge(self._read_row_ms * n)
        else:
            sim.clock._now_ms += self._read_row_ms * n

    def row_written(self) -> None:
        """``rows_written(1)`` specialized for the per-put hot loop."""
        self._rows_written_counter.value += 1
        sim = self.sim
        if sim.jitter_fraction:
            sim.charge(self._write_row_ms)
        else:
            sim.clock._now_ms += self._write_row_ms

    def row_written_inline(self):
        """Handles for callers that inline the per-row write charge in a
        tight loop: ``(counter, clock, delta_ms)`` — the caller performs
        ``counter.value += 1; clock._now_ms += delta_ms`` per row, which
        is exactly what :meth:`row_written` does. Returns None when the
        simulation is jittered (each charge must draw its own RNG
        sample, so callers must go through :meth:`row_written`). This
        keeps the charging semantics owned here, not at the call site."""
        if self.sim.jitter_fraction:
            return None
        return self._rows_written_counter, self.sim.clock, self._write_row_ms

    def rows_written(self, n: int) -> None:
        if n <= 0:
            return
        self._rows_written_counter.value += n
        sim = self.sim
        if sim.jitter_fraction:
            sim.charge(self._write_row_ms * n)
        else:
            sim.clock._now_ms += self._write_row_ms * n

    def wal_append(self, count: int = 1) -> None:
        self._wal_counter.inc(count)
        self.sim.charge(self.cost.wal_append_ms * count)

    def check_and_put(self, count: int = 1) -> None:
        self._cap_counter.inc(count)
        self.sim.charge((self.cost.rpc_base_ms + self.cost.check_and_put_ms) * count)

    def version_checks(self, n_cells: int) -> None:
        if n_cells <= 0:
            return
        self.sim.charge(self.cost.mvcc_version_check_ms * n_cells)

    def mark_rows(self, n: int) -> None:
        if n <= 0:
            return
        self.sim.charge((self.cost.mark_row_ms) * n)
