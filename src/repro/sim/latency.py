"""Latency-charging helpers shared by the storage and SQL engines.

A :class:`LatencyCharger` wraps a :class:`~repro.sim.clock.Simulation`
and exposes semantically named charge methods (one per physical effect),
so call sites read like the mechanism they model::

    charger.rpc()                    # one round trip
    charger.rows_read(n)             # server-side row materialization
    charger.transfer(num_bytes)      # result bytes over the wire
"""

from __future__ import annotations

from repro.sim.clock import Simulation


class LatencyCharger:
    """Semantic layer over :meth:`Simulation.charge`."""

    def __init__(self, sim: Simulation, component: str) -> None:
        self.sim = sim
        self.component = component
        self.cost = sim.cost

    # -- generic ------------------------------------------------------------------
    def rpc(self, count: int = 1) -> None:
        self.sim.metrics.counter(f"{self.component}.rpc").inc(count)
        self.sim.charge(self.cost.rpc_base_ms * count, f"{self.component}.rpc")

    def transfer(self, num_bytes: int) -> None:
        if num_bytes <= 0:
            return
        kib = num_bytes / 1024.0
        self.sim.metrics.counter(f"{self.component}.bytes").inc(num_bytes)
        self.sim.charge(self.cost.network_ms_per_kb * kib, f"{self.component}.transfer")

    # -- storage-side work -----------------------------------------------------------
    def seek(self, count: int = 1) -> None:
        self.sim.metrics.counter(f"{self.component}.seek").inc(count)
        self.sim.charge(self.cost.seek_ms * count)

    def rows_read(self, n: int) -> None:
        if n <= 0:
            return
        self.sim.metrics.counter(f"{self.component}.rows_read").inc(n)
        self.sim.charge(self.cost.read_row_ms * n)

    def rows_written(self, n: int) -> None:
        if n <= 0:
            return
        self.sim.metrics.counter(f"{self.component}.rows_written").inc(n)
        self.sim.charge(self.cost.write_row_ms * n)

    def wal_append(self, count: int = 1) -> None:
        self.sim.metrics.counter(f"{self.component}.wal_append").inc(count)
        self.sim.charge(self.cost.wal_append_ms * count)

    def check_and_put(self, count: int = 1) -> None:
        self.sim.metrics.counter(f"{self.component}.check_and_put").inc(count)
        self.sim.charge((self.cost.rpc_base_ms + self.cost.check_and_put_ms) * count)

    def version_checks(self, n_cells: int) -> None:
        if n_cells <= 0:
            return
        self.sim.charge(self.cost.mvcc_version_check_ms * n_cells)

    def mark_rows(self, n: int) -> None:
        if n <= 0:
            return
        self.sim.charge((self.cost.mark_row_ms) * n)
