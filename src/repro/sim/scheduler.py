"""Deterministic cooperative multi-client scheduler.

N virtual clients run transactions as generator-based coroutines, with
no threads. Each client owns its own :class:`SimClock`; while a client
coroutine executes one segment (the code between two ``yield``
statements), the shared :class:`Simulation`'s clock is *swapped* to the
client's clock, so every cost charged anywhere in the engine lands on
the running client's timeline. The scheduler always resumes the
runnable client with the smallest virtual timestamp (ties broken by
client id), which makes every run fully reproducible from a seed and
gives conservative discrete-event semantics: when a client executes a
segment starting at virtual time t, every other client's clock is
already >= t, so no later-scheduled action can causally precede it.

Yield-point contract
--------------------
A client program is a generator. It must ``yield`` whenever virtual
time may pass — before each statement, and after each wait it charges —
so that the scheduler can re-evaluate which client is earliest. All
engine work between two yields forms one *cost-charge segment* billed
to the yielding client. Engine calls must complete within a segment
(they never suspend mid-call); contention between segments that overlap
in virtual time is mediated through the :class:`ConcurrencyContext`:

* hierarchical locks (``synergy.locks``) record their holds; an
  acquire of a lock another client's recorded hold has not yet
  released raises :class:`~repro.errors.LockWaitRequired` *before any
  lock-table state changes*, and :func:`run_transaction` charges the
  wait, yields, and retries the statement (blocking-and-retry). The
  blocking is conservative first-come-first-served in *execution*
  order: once a hold is recorded, later requests wait for its release
  even if their virtual clock is behind the acquisition time, because
  the owner's store mutations have already happened.
* serial resources (VoltDB's single-threaded partition executor) delay
  an operation that starts while the resource is busy until the
  resource frees up in virtual time.
* MVCC transactions genuinely overlap — begins and commits from
  different clients interleave — so Tephra's optimistic check detects
  real write-write conflicts; :func:`run_transaction` aborts, backs
  off, and retries the whole transaction.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.errors import LockWaitRequired, TransactionConflictError
from repro.sim.clock import SimClock, Simulation


@dataclass
class LockHold:
    """One recorded hold of a hierarchical lock (open-ended until the
    owner releases it)."""

    owner: int
    released_at: float | None = None


@dataclass
class ClientStats:
    """Per-client outcome counters and response times."""

    committed: int = 0
    aborted: int = 0
    failed: int = 0
    lock_waits: int = 0
    serial_waits: int = 0
    response_times: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "failed": self.failed,
            "lock_waits": self.lock_waits,
            "serial_waits": self.serial_waits,
            "response_times": list(self.response_times),
        }


class VirtualClient:
    """One simulated client: its own clock, coroutine and stats.

    A *daemon* client (``daemon=True``) is a background scheduler
    participant — e.g. a fault injector — that interleaves with the
    workload by the same min-virtual-timestamp rule but never keeps the
    run alive: the scheduler stops when every non-daemon client is done
    and closes any daemon generators still pending. Daemons are excluded
    from the makespan, so an injector whose next planned event lies past
    the end of the workload does not stretch the measured run."""

    def __init__(
        self, client_id: int, name: str, program, daemon: bool = False
    ) -> None:
        self.client_id = client_id
        self.name = name
        self.program = program
        self.daemon = daemon
        self.clock = SimClock()
        self.stats = ClientStats()
        self.gen: Generator | None = None
        self.done = False

    @property
    def now_ms(self) -> float:
        return self.clock.now_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClient({self.name}, now={self.clock.now_ms:.3f}ms)"


class ConcurrencyContext:
    """Shared contention state installed on a Simulation while a
    scheduler drives clients. Engine layers consult
    ``sim.concurrency`` and fall back to single-client behavior when it
    is None — which keeps every existing single-client code path (and
    its simulated latency) bit-identical."""

    def __init__(self) -> None:
        self.active: VirtualClient | None = None
        self._clients_by_id: dict[int, VirtualClient] = {}
        self._lock_holds: dict[Any, LockHold] = {}
        self._serial_busy_until: dict[Any, float] = {}
        self.lock_wait_count = 0
        self.serial_wait_count = 0
        self.conflict_abort_count = 0

    # -- hierarchical locks ---------------------------------------------------------
    def lock_check(self, key: Any, now_ms: float) -> None:
        """Raise :class:`LockWaitRequired` when another client's
        recorded hold of ``key`` is not yet released at ``now_ms``.
        Conservative FCFS in execution order: the owner's store
        mutations have already happened, so a later request must wait
        for the release even if its clock is behind the acquisition."""
        hold = self._lock_holds.get(key)
        if hold is None or self.active is None:
            return
        if hold.owner == self.active.client_id:
            return
        released = hold.released_at
        if released is None:
            # the owner still holds the lock across a yield: the earliest
            # it can possibly release is its current clock position
            released = max(now_ms, self._owner_clock(hold.owner)) + 1e-6
        if now_ms < released:
            self.lock_wait_count += 1
            self.active.stats.lock_waits += 1
            raise LockWaitRequired(key, wait_until_ms=released)

    def lock_record(self, key: Any) -> None:
        """Record a successful acquisition (hold is open-ended until
        :meth:`lock_release`)."""
        if self.active is None:
            return
        self._lock_holds[key] = LockHold(self.active.client_id)

    def lock_release(self, key: Any, now_ms: float) -> None:
        hold = self._lock_holds.get(key)
        if (
            hold is not None
            and self.active is not None
            and hold.owner == self.active.client_id
        ):
            hold.released_at = now_ms

    def _owner_clock(self, owner_id: int) -> float:
        client = self._clients_by_id.get(owner_id)
        return client.clock.now_ms if client is not None else 0.0

    # -- serial resources (single-threaded executors) -------------------------------
    def serial_delay_ms(self, resources: Iterable[Any], now_ms: float) -> float:
        """Virtual wait before an operation starting at ``now_ms`` may
        begin on ALL of the serially executed ``resources`` (e.g. the
        partition executor sites a VoltDB procedure occupies). Counts at
        most one wait event per delayed operation."""
        delay = 0.0
        for resource in resources:
            busy_until = self._serial_busy_until.get(resource, 0.0)
            if busy_until > now_ms:
                delay = max(delay, busy_until - now_ms)
        if delay > 0:
            self.serial_wait_count += 1
            if self.active is not None:
                self.active.stats.serial_waits += 1
        return delay

    def backlog_ms(self, resource: Any, now_ms: float) -> float:
        """Virtual backlog of one serial resource: how far its busy
        window extends past ``now_ms`` (0 when idle). This is the queue
        depth — in milliseconds of queued work — that admission control
        bounds."""
        busy_until = self._serial_busy_until.get(resource, 0.0)
        return busy_until - now_ms if busy_until > now_ms else 0.0

    def serial_occupy(self, resources: Iterable[Any], until_ms: float) -> None:
        for resource in resources:
            current = self._serial_busy_until.get(resource, 0.0)
            if until_ms > current:
                self._serial_busy_until[resource] = until_ms

    def serial_enter(
        self,
        resources: Iterable[Any],
        sim,
        metric: str = "hbase.queue_wait",
    ) -> None:
        """Queue the running client behind ``resources`` (advance its
        clock past any busy window) before it starts an operation on
        them. Pair with :meth:`serial_exit` when the operation's charges
        are done. This is how per-partition work routes to the owning
        region server: operations on regions hosted by different
        servers overlap in virtual time, operations on the same server
        serialize — so adding servers genuinely parallelizes."""
        clock = sim.clock
        delay = self.serial_delay_ms(resources, clock.now_ms)
        if delay > 0:
            # queueing delay, not work: bypass jitter, advance exactly
            clock.advance(delay)
            sim.metrics.timer(metric).record(delay)

    def serial_exit(self, resources: Iterable[Any], sim) -> None:
        """Mark ``resources`` busy until the running client's current
        virtual time (the end of the charges made since
        :meth:`serial_enter`)."""
        self.serial_occupy(resources, sim.clock.now_ms)


@dataclass
class SchedulerReport:
    """Outcome of one scheduled run (all values are deterministic)."""

    makespan_ms: float
    steps: int
    clients: dict[str, dict[str, Any]]
    lock_wait_count: int
    serial_wait_count: int
    conflict_abort_count: int

    @property
    def committed(self) -> int:
        return sum(c["committed"] for c in self.clients.values())

    @property
    def aborted(self) -> int:
        return sum(c["aborted"] for c in self.clients.values())

    @property
    def response_times(self) -> list[float]:
        out: list[float] = []
        for c in self.clients.values():
            out.extend(c["response_times"])
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "makespan_ms": self.makespan_ms,
            "steps": self.steps,
            "lock_wait_count": self.lock_wait_count,
            "serial_wait_count": self.serial_wait_count,
            "conflict_abort_count": self.conflict_abort_count,
            "clients": self.clients,
        }


class DeterministicScheduler:
    """Min-virtual-timestamp cooperative scheduler over one Simulation.

    The ready queue is a binary heap keyed ``(clock.now_ms, client_id)``
    — exactly the resume key the original linear scan minimized — so a
    10k-client serving run resumes the next client in O(log n) instead
    of O(n). A suspended client's clock only moves while it is the
    running client, so each client has exactly one live heap entry and
    heap order equals scan order, ties included; a lazy-refresh guard
    re-pushes any entry whose clock moved anyway, keeping the heap
    correct even for exotic programs that advance peer clocks.
    ``ready_queue="scan"`` retains the original O(n) loop as an
    executable specification for the equivalence property tests.
    """

    def __init__(
        self,
        sim: Simulation,
        max_steps: int = 10_000_000,
        ready_queue: str = "heap",
    ) -> None:
        if ready_queue not in ("heap", "scan"):
            raise ValueError(f"unknown ready_queue {ready_queue!r}")
        self.sim = sim
        self.max_steps = max_steps
        self.ready_queue = ready_queue
        self.clients: list[VirtualClient] = []
        self.trace: list[tuple[int, float]] = []
        """(client_id, clock at resume) per step — a deterministic
        fingerprint of the interleaving, used by reproducibility tests."""

    def add_client(
        self,
        name: str,
        program: Callable[[VirtualClient], Generator],
        daemon: bool = False,
    ) -> VirtualClient:
        """Register a client. ``program(client)`` must return a
        generator that yields at every cost-charge segment boundary.
        ``daemon=True`` registers a background participant (fault
        injector) that never keeps the run alive on its own."""
        client = VirtualClient(len(self.clients), name, program, daemon=daemon)
        self.clients.append(client)
        return client

    def run(self) -> SchedulerReport:
        if self.sim.concurrency is not None:
            raise RuntimeError("a scheduler is already driving this simulation")
        ctx = ConcurrencyContext()
        ctx._clients_by_id = {c.client_id: c for c in self.clients}
        self.sim.concurrency = ctx
        master_clock = self.sim.clock
        for client in self.clients:
            client.gen = client.program(client)
        try:
            if self.ready_queue == "heap":
                steps = self._drive_heap(ctx)
            else:
                steps = self._drive_scan(ctx)
        finally:
            self.sim.clock = master_clock
            self.sim.concurrency = None
        makespan = max(
            (c.clock.now_ms for c in self.clients if not c.daemon), default=0.0
        )
        if makespan > master_clock.now_ms:
            master_clock.advance(makespan - master_clock.now_ms)
        return SchedulerReport(
            makespan_ms=makespan,
            steps=steps,
            clients={c.name: c.stats.as_dict() for c in self.clients},
            lock_wait_count=ctx.lock_wait_count,
            serial_wait_count=ctx.serial_wait_count,
            conflict_abort_count=ctx.conflict_abort_count,
        )

    def _step(self, ctx: ConcurrencyContext, client: VirtualClient) -> None:
        """Resume ``client`` for one cost-charge segment."""
        self.trace.append((client.client_id, client.clock.now_ms))
        ctx.active = client
        self.sim.clock = client.clock
        try:
            next(client.gen)
        except StopIteration:
            client.done = True
        finally:
            ctx.active = None

    def _drive_heap(self, ctx: ConcurrencyContext) -> int:
        heap = [(c.clock.now_ms, c.client_id) for c in self.clients]
        heapq.heapify(heap)
        by_id = ctx._clients_by_id
        workers_left = sum(1 for c in self.clients if not c.daemon)
        steps = 0
        while workers_left > 0:
            entry_ms, client_id = heapq.heappop(heap)
            client = by_id[client_id]
            if client.clock.now_ms > entry_ms:
                # lazy refresh: the clock moved while suspended (no
                # engine path does this today, but stay correct if one
                # ever does) — re-queue at the real position
                heapq.heappush(heap, (client.clock.now_ms, client_id))
                continue
            self._step(ctx, client)
            if client.done:
                if not client.daemon:
                    workers_left -= 1
            else:
                heapq.heappush(heap, (client.clock.now_ms, client_id))
            steps += 1
            if steps > self.max_steps:
                raise RuntimeError(
                    f"scheduler exceeded {self.max_steps} steps "
                    "(livelocked client program?)"
                )
        # the workload is finished — wind down pending background
        # programs in registration order, exactly like the scan loop
        for c in self.clients:
            if not c.done:
                if c.gen is not None:
                    c.gen.close()
                c.done = True
        return steps

    def _drive_scan(self, ctx: ConcurrencyContext) -> int:
        steps = 0
        while True:
            runnable = [c for c in self.clients if not c.done]
            if not any(not c.daemon for c in runnable):
                # only daemons (or nothing) left: the workload is
                # finished — wind down pending background programs
                for c in runnable:
                    if c.gen is not None:
                        c.gen.close()
                    c.done = True
                break
            client = min(runnable, key=lambda c: (c.clock.now_ms, c.client_id))
            self._step(ctx, client)
            steps += 1
            if steps > self.max_steps:
                raise RuntimeError(
                    f"scheduler exceeded {self.max_steps} steps "
                    "(livelocked client program?)"
                )
        return steps


def run_transaction(
    client: VirtualClient,
    session,
    statements: Sequence[tuple[str, tuple]],
    max_attempts: int = 16,
    abort_backoff_ms: float = 2.0,
    on_commit: Callable[[], None] | None = None,
) -> Generator[str, None, bool]:
    """Drive one transaction through a system session, cooperatively.

    ``yield from`` this inside a client program. It executes the
    statements in order, yielding before each one and at every wait
    point; blocks-and-retries the current statement on
    :class:`LockWaitRequired`, and aborts/backs-off/retries the whole
    transaction on :class:`TransactionConflictError`. Returns True when
    the transaction committed; after ``max_attempts`` aborts it gives up
    and counts the transaction as failed.
    """
    started_at = client.clock.now_ms
    for attempt in range(1, max_attempts + 1):
        session.begin()
        try:
            for sql, params in statements:
                while True:
                    yield "op"
                    try:
                        session.execute(sql, params)
                        break
                    except LockWaitRequired as wait:
                        wait_ms = wait.wait_until_ms - client.clock.now_ms
                        if wait_ms > 0:
                            client.clock.advance(wait_ms)
                        yield "lock-wait"
            yield "commit"
            session.commit()
        except TransactionConflictError:
            client.stats.aborted += 1
            session.abort()
            client.clock.advance(abort_backoff_ms * attempt)
            yield "abort"
            continue
        except BaseException:
            session.abort()
            raise
        client.stats.committed += 1
        client.stats.response_times.append(client.clock.now_ms - started_at)
        if on_commit is not None:
            on_commit()
        return True
    client.stats.failed += 1
    return False


def percentile(samples: Iterable[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a sample set."""
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]
