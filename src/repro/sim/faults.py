"""Deterministic fault injection (chaos) for the simulated cluster.

The engine turns region-server failure from a hand-rolled unit-test
gesture into a first-class scheduler participant: a :class:`FaultInjector`
is registered on the :class:`~repro.sim.scheduler.DeterministicScheduler`
as a *daemon* virtual client whose program walks a precomputed
:func:`fault plan <build_fault_plan>` — ``crash(server)``, delayed
``recover(server)`` (master failover: regions reopened elsewhere, WAL
replayed) and ``restart(server)`` (the process rejoins empty) events at
virtual timestamps. Because the plan is a pure function of the shared
SimRNG seed stream and the scheduler resumes participants by minimum
virtual timestamp, every chaos run is byte-identical across reruns.

Workload side, the ``chaos_*`` generator helpers drive ordinary
:class:`~repro.hbase.client.HTable` operations with the cooperative
failover protocol: an operation that lands on a crashed/unrecovered
region raises :class:`~repro.errors.RegionUnavailableError`, the helper
charges a bounded backoff, yields to the scheduler (so the injector's
recovery event can run) and retries — paying the meta-retry path — up
to :attr:`FailoverPolicy.max_failover_retries` attempts before giving
up with a typed :class:`~repro.errors.RegionRetriesExhaustedError`.
Scans are consumed in chunks with a resume cursor, so an open scan
survives a mid-scan crash: it reopens at the next undelivered row on
whichever (recovered or relocated) region now owns it.

Everything observable is recorded in a :class:`ChaosHistory` — acked
writes in execution order, get/scan observations, fault events, retry
and stall counters — and :func:`check_invariants` replays that history
against the post-chaos cluster state:

* **durability** — no acknowledged write lost: replaying the acked
  writes serially in ack order (the PR-3 serial-replay oracle, applied
  to the storage layer) must reproduce the final scanned state exactly,
  with no phantom rows and no stale values;
* **scan consistency** — every chaos scan delivered strictly increasing
  row keys (no duplication), only values that were actually written,
  and every row acked before the scan started that falls inside its
  window (no loss across failover resumes);
* **read integrity** — every get observed a written value (never a
  deleted/phantom one).

``repro.bench --only faults`` sweeps crash-cycle count x client count
on top of :func:`run_chaos_cell` and reports throughput / p99 /
client-observed recovery stalls as byte-identical JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import ClusterConfig, ReplicationConfig
from repro.errors import (
    RegionRetriesExhaustedError,
    RegionUnavailableError,
    ServerRecoveryError,
)
from repro.hbase.client import HBaseClient, HTable
from repro.hbase.cluster import HBaseCluster
from repro.hbase.ops import Get, Put, Scan
from repro.hbase.replication import ReplicationShipper
from repro.sim.clock import Simulation
from repro.sim.rng import derive_rng
from repro.sim.scheduler import (
    DeterministicScheduler,
    SchedulerReport,
    VirtualClient,
)

FAMILY = b"cf"
QUALIFIER = b"v"


# ------------------------------------------------------------------ fault plan
@dataclass(frozen=True)
class FaultConfig:
    """Shape of one chaos schedule (all times are virtual ms)."""

    cycles: int = 2
    """Crash/recover/restart cycles to inject."""

    first_crash_ms: float = 30.0
    """Virtual time of the first crash."""

    crash_interval_ms: float = 60.0
    """Mean gap between consecutive crash events."""

    failover_delay_ms: float = 20.0
    """Crash -> master recovery (the unavailability window clients ride
    out with bounded backoff-and-retry)."""

    restart_delay_ms: float = 15.0
    """Recovery -> the crashed process rejoins the cluster empty."""

    interval_jitter: float = 0.5
    """Uniform +-fraction applied to each crash gap (seeded draws)."""

    recovery_replay_ms_per_entry: float = 0.0
    """Virtual cost per WAL/ship-log entry master failover must replay,
    charged on the injector's clock *before* the recover event fires —
    stretching the unavailability window by the amount of state to
    replay. This is the knob that makes replication measurable: a
    promoted follower replays only its un-shipped log suffix, an
    unreplicated region the crashed server's whole pending WAL. 0.0
    (the default) keeps recovery instantaneous and every pre-existing
    chaos run byte-identical."""

    label: str = "faults"
    """SimRNG stream label; also namespaces the per-client op streams."""


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault action against one named server."""

    at_ms: float
    kind: str  # "crash" | "recover" | "restart"
    server: str


def build_fault_plan(
    server_names: list[str],
    config: FaultConfig,
    rng,
) -> list[FaultEvent]:
    """Precompute the event list for one chaos run.

    Victims are drawn from the servers that are up at each crash
    instant, and a crash is only scheduled while at least two servers
    are up — master recovery always has a live host to reopen regions
    on. The plan is a pure function of ``(server_names, config, rng)``,
    so a given seed always injects the same faults at the same virtual
    timestamps.
    """
    if config.cycles < 0:
        raise ValueError(f"negative cycle count: {config.cycles}")
    events: list[tuple[float, int, str, str]] = []
    down_until: dict[str, float] = {}
    crash_counts: dict[str, int] = {}
    order = 0
    t = config.first_crash_ms
    for _ in range(config.cycles):
        candidates = [n for n in server_names if down_until.get(n, 0.0) <= t]
        if len(candidates) < 2:
            # wait for a restart: never take down the last live server
            pending = [u for u in down_until.values() if u > t]
            if not pending:
                # a cluster that can never spare a server (e.g. a single
                # region server) simply gets no faults injected
                break
            t = min(pending)
            candidates = [
                n for n in server_names if down_until.get(n, 0.0) <= t
            ]
        # spread victims: draw among the least-crashed candidates, so
        # repeated cycles hit servers that have had time to re-accrue
        # regions instead of re-killing the just-restarted empty one
        fewest = min(crash_counts.get(n, 0) for n in candidates)
        candidates = [
            n for n in candidates if crash_counts.get(n, 0) == fewest
        ]
        victim = candidates[int(rng.integers(len(candidates)))]
        crash_counts[victim] = crash_counts.get(victim, 0) + 1
        recover_at = t + config.failover_delay_ms
        restart_at = recover_at + config.restart_delay_ms
        events.append((t, order, "crash", victim))
        events.append((recover_at, order + 1, "recover", victim))
        events.append((restart_at, order + 2, "restart", victim))
        order += 3
        down_until[victim] = restart_at
        spread = config.interval_jitter * (2.0 * float(rng.random()) - 1.0)
        t += config.crash_interval_ms * (1.0 + spread)
    events.sort(key=lambda e: (e[0], e[1]))
    return [FaultEvent(at, kind, server) for at, _, kind, server in events]


# ------------------------------------------------------------------ history
@dataclass
class ScanObservation:
    """What one logical chaos scan delivered, bracketed by history seqs."""

    start_seq: int
    end_seq: int
    start_row: bytes
    stop_row: bytes | None
    rows: list[tuple[bytes, bytes]]

    max_entry_lag: int = 0
    """Largest applied-watermark lag of any follower that served one of
    this scan's region windows (0 when every window hit a primary)."""

    missing_rows: dict = field(default_factory=dict)
    """row -> acked-but-unapplied edit count on the serving follower at
    the moment its window opened. The staleness oracle permits a row to
    be absent from the scan only when *every* pre-scan edit to it was
    still unapplied — i.e. this count covers them all."""


class ChaosHistory:
    """Execution-order record of everything a chaos run observed.

    The sequence counter orders acked writes, gets and scan windows on
    one global timeline. The whole simulation is single-threaded, so
    ack order *is* execution order *is* HBase-timestamp order — which
    makes "replay the acked writes serially in ack order" a sound
    oracle for the final state.
    """

    def __init__(self) -> None:
        self._seq = 0
        self.acked: list[tuple[int, bytes, bytes]] = []
        self.gets: list[tuple[int, bytes, bytes | None]] = []
        self.follower_gets: list[tuple[int, bytes, bytes | None, int, int]] = []
        """Gets served by a region replica, with the staleness pinning:
        ``(seq, row, value, row_lag, entry_lag)`` — at read time the
        follower had not applied the last ``row_lag`` edits to ``row``
        (and lagged the ship log by ``entry_lag`` entries overall), so
        the oracle knows *exactly* which acked value the read must have
        returned, not merely that it was some past value."""
        self.scans: list[ScanObservation] = []
        self.events: list[dict[str, Any]] = []
        self.crash_count = 0
        self.recover_count = 0
        self.restart_count = 0
        self.regions_recovered = 0
        self.follower_scan_windows = 0
        """Scan region-windows served by a follower replica."""
        self.failover_retries = 0
        self.stalls_ms: list[float] = []
        """Client-observed failover stalls: first failed attempt of an
        op until the attempt that finally succeeded."""

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def record_ack(self, row: bytes, value: bytes) -> None:
        self.acked.append((self.next_seq(), row, value))

    def record_get(self, row: bytes, value: bytes | None) -> None:
        self.gets.append((self.next_seq(), row, value))

    def record_follower_get(
        self, row: bytes, value: bytes | None, row_lag: int, entry_lag: int
    ) -> None:
        self.follower_gets.append(
            (self.next_seq(), row, value, row_lag, entry_lag)
        )

    def record_event(
        self, at_ms: float, kind: str, server: str, regions: int
    ) -> None:
        self.events.append(
            {"at_ms": at_ms, "kind": kind, "server": server, "regions": regions}
        )


# ------------------------------------------------------------------ injector
class FaultInjector:
    """Daemon scheduler participant that applies a fault plan.

    Register with :meth:`install`; the injector advances its own virtual
    clock to each event's timestamp and yields, so the min-timestamp
    rule weaves crashes and recoveries between client segments exactly
    where their virtual times fall. Being a daemon, it neither keeps the
    run alive after the workload finishes nor stretches the makespan.
    """

    def __init__(
        self,
        cluster: HBaseCluster,
        config: FaultConfig,
        history: ChaosHistory,
        rng=None,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.history = history
        if rng is None:
            rng = derive_rng(cluster.config.seed, config.label)
        self.plan = build_fault_plan(
            [s.name for s in cluster.servers], config, rng
        )

    def install(self, scheduler: DeterministicScheduler) -> VirtualClient:
        return scheduler.add_client("fault-injector", self.program, daemon=True)

    def program(self, vc: VirtualClient):
        servers = {s.name: s for s in self.cluster.servers}
        replay_cost = self.config.recovery_replay_ms_per_entry
        for event in self.plan:
            gap = event.at_ms - vc.clock.now_ms
            if gap > 0:
                vc.clock.advance(gap)
            yield f"fault:{event.kind}"
            if replay_cost > 0.0 and event.kind == "recover":
                # replay takes time proportional to the state recovery
                # must re-apply — a promoted follower's log suffix, or
                # the whole pending WAL without replication — and the
                # region stays unavailable while it runs. Gated on the
                # cost being nonzero so default chaos runs keep their
                # exact pre-existing event interleaving.
                entries = self.cluster.recovery_replay_estimate(
                    servers[event.server]
                )
                if entries > 0:
                    vc.clock.advance(entries * replay_cost)
                    yield "fault:recovery-replay"
            self._apply(event, servers[event.server], vc)

    def _apply(self, event: FaultEvent, server, vc: VirtualClient) -> None:
        history = self.history
        if event.kind == "crash":
            hosted = len(server.regions)
            server.crash()
            history.crash_count += 1
            history.record_event(vc.clock.now_ms, "crash", server.name, hosted)
        elif event.kind == "recover":
            try:
                moved = self.cluster.recover_server(server)
            except ServerRecoveryError:
                # an orchestrated drain beat the injector to it
                # (recovery-then-drain): the regions are already hosted
                # elsewhere, so the master's work here is done. Nothing
                # but orchestration recovers mid-run, so pre-existing
                # chaos trajectories never take this branch.
                moved = 0
            history.recover_count += 1
            history.regions_recovered += moved
            history.record_event(vc.clock.now_ms, "recover", server.name, moved)
        elif event.kind == "restart":
            server.restart()
            history.restart_count += 1
            history.record_event(vc.clock.now_ms, "restart", server.name, 0)
        else:  # pragma: no cover - plans only emit the three kinds
            raise ValueError(f"unknown fault event kind: {event.kind}")


# ------------------------------------------------------------------ failover ops
@dataclass(frozen=True)
class FailoverPolicy:
    """How a chaos client rides out a region-unavailability window."""

    max_failover_retries: int = 12
    """Backoff-and-retry attempts before an op gives up with
    :class:`~repro.errors.RegionRetriesExhaustedError`."""

    retry_backoff_ms: float = 8.0
    """Base backoff; attempt ``k`` waits ``k * retry_backoff_ms``."""

    scan_chunk_rows: int = 32
    """Rows a chaos scan pulls per scheduler segment, so fault events
    can interleave with (and interrupt) a long-running scan."""


def _with_failover(
    vc: VirtualClient,
    history: ChaosHistory,
    policy: FailoverPolicy,
    attempt: Callable[[], Any],
    label: str,
):
    """Generator: run ``attempt()`` under the bounded failover protocol.

    On :class:`RegionUnavailableError` the running client charges an
    escalating backoff, yields to the scheduler (letting master
    recovery run) and retries; after the retry budget it raises the
    typed exhaustion error instead of looping on meta lookups forever.
    """
    first_failure_at: float | None = None
    for attempt_no in range(1, policy.max_failover_retries + 1):
        try:
            result = attempt()
        except RegionUnavailableError:
            if first_failure_at is None:
                first_failure_at = vc.clock.now_ms
            history.failover_retries += 1
            vc.clock.advance(policy.retry_backoff_ms * attempt_no)
            yield "failover-wait"
            continue
        if first_failure_at is not None:
            history.stalls_ms.append(vc.clock.now_ms - first_failure_at)
        return result
    raise RegionRetriesExhaustedError(
        f"{label} gave up after {policy.max_failover_retries} failover "
        "retries (region never came back)"
    )


def chaos_put(
    vc: VirtualClient,
    handle: HTable,
    row: bytes,
    value: bytes,
    history: ChaosHistory,
    policy: FailoverPolicy,
):
    """Put with failover retry; the write is acked (recorded) only when
    the cluster accepted it."""

    def attempt() -> None:
        p = Put(row)
        p.add(FAMILY, QUALIFIER, value)
        handle.put(p)
        history.record_ack(row, value)

    yield from _with_failover(vc, history, policy, attempt, f"put {row!r}")


def chaos_get(
    vc: VirtualClient,
    handle: HTable,
    row: bytes,
    history: ChaosHistory,
    policy: FailoverPolicy,
):
    """Get with failover retry; records the observed value."""

    def attempt() -> None:
        result = handle.get(Get(row))
        value = None if result is None else result.value(FAMILY, QUALIFIER)
        lag = handle.last_follower_lag if handle.follower_reads else None
        if lag is not None:
            history.record_follower_get(row, value, lag[0], lag[1])
        else:
            history.record_get(row, value)

    yield from _with_failover(vc, history, policy, attempt, f"get {row!r}")


def chaos_scan(
    vc: VirtualClient,
    handle: HTable,
    start_row: bytes,
    stop_row: bytes | None,
    history: ChaosHistory,
    policy: FailoverPolicy,
):
    """Range scan with mid-scan failover resume.

    Rows are pulled in chunks of :attr:`FailoverPolicy.scan_chunk_rows`
    with a scheduler yield between chunks, so crashes and recoveries
    interleave with the open scan. A crash mid-chunk kills the scan
    generator; the helper backs off, yields, and reopens at the next
    undelivered row (``last delivered + b"\\x00"``) — no duplication, no
    loss. A recovery that completes *between* chunks is absorbed inside
    :meth:`HTable.scan` itself (one meta round trip, cursor reopened on
    the recovered region) and is invisible here.
    """
    start_seq = history.next_seq()
    rows: list[tuple[bytes, bytes]] = []
    if handle.follower_reads:
        handle.follower_scan_lag = []  # this logical scan's windows only
    cursor = start_row
    failures = 0
    first_failure_at: float | None = None
    done = False
    while not done:
        stream = handle.scan(Scan(start_row=cursor, stop_row=stop_row))
        try:
            while True:
                exhausted = False
                for _ in range(policy.scan_chunk_rows):
                    try:
                        result = next(stream)
                    except StopIteration:
                        exhausted = True
                        break
                    rows.append((result.row, result.value(FAMILY, QUALIFIER)))
                    cursor = result.row + b"\x00"
                if first_failure_at is not None:
                    history.stalls_ms.append(vc.clock.now_ms - first_failure_at)
                    first_failure_at = None
                    failures = 0  # progress resumed: fresh budget per outage
                if exhausted:
                    done = True
                    break
                yield "scan-chunk"
        except RegionUnavailableError:
            failures += 1
            if failures > policy.max_failover_retries:
                raise RegionRetriesExhaustedError(
                    f"scan at {cursor!r} gave up after {failures - 1} "
                    "failover retries"
                ) from None
            if first_failure_at is None:
                first_failure_at = vc.clock.now_ms
            history.failover_retries += 1
            vc.clock.advance(policy.retry_backoff_ms * failures)
            yield "failover-wait"
    max_entry_lag = 0
    missing: dict[bytes, int] = {}
    if handle.follower_reads and handle.follower_scan_lag:
        history.follower_scan_windows += len(handle.follower_scan_lag)
        # merge the per-window staleness pinnings; a row served by two
        # windows (failover resume) keeps its largest unapplied count
        for entry_lag, window_missing in handle.follower_scan_lag:
            max_entry_lag = max(max_entry_lag, entry_lag)
            for missing_row, count in window_missing.items():
                if count > missing.get(missing_row, 0):
                    missing[missing_row] = count
        handle.follower_scan_lag = []
    history.scans.append(
        ScanObservation(
            start_seq,
            history.next_seq(),
            start_row,
            stop_row,
            rows,
            max_entry_lag,
            missing,
        )
    )


def chaos_client_program(
    vc: VirtualClient,
    handle: HTable,
    ops: list[tuple],
    history: ChaosHistory,
    policy: FailoverPolicy,
    tag: bytes,
):
    """One chaos client: a closed loop of put/get/scan ops, each driven
    through the failover protocol, with per-op response times recorded."""
    for opnum, op in enumerate(ops, start=1):
        yield "op"
        started = vc.clock.now_ms
        if op[0] == "put":
            value = b"%s-%04d" % (tag, opnum)
            yield from chaos_put(vc, handle, op[1], value, history, policy)
        elif op[0] == "get":
            yield from chaos_get(vc, handle, op[1], history, policy)
        else:
            yield from chaos_scan(vc, handle, op[1], op[2], history, policy)
        vc.stats.committed += 1
        vc.stats.response_times.append(vc.clock.now_ms - started)


def build_chaos_ops(
    rng, ops_per_client: int, key_space: int, scan_window: int
) -> list[tuple]:
    """One client's deterministic op mix: 55% puts, 30% point gets,
    15% short range scans, keys uniform over the preloaded space."""
    ops: list[tuple] = []
    for _ in range(ops_per_client):
        r = float(rng.random())
        k = int(rng.integers(0, key_space))
        row = b"%08d" % k
        if r < 0.55:
            ops.append(("put", row))
        elif r < 0.85:
            ops.append(("get", row))
        else:
            stop = b"%08d" % min(k + scan_window, key_space)
            ops.append(("scan", row, stop))
    return ops


# ------------------------------------------------------------------ invariants
def check_invariants(
    history: ChaosHistory,
    table: HTable,
    staleness_bound: int | None = None,
) -> list[str]:
    """Replay the recorded history against the post-chaos state and
    return every violated invariant (empty list = clean run).

    With replication active, ``staleness_bound`` adds the staleness
    axis: every follower-served observation must stay within the
    configured entry-lag bound, every follower get must have returned
    *exactly* the acked value its recorded row-lag pins it to (sound
    because the single-threaded simulator acks a write in the segment
    that applied it, so ship-log order per row equals ack order — a
    follower's view of a row is precisely its k-th-latest acked value),
    and a scan may miss a row only when its serving follower's recorded
    pinning shows every pre-scan edit to that row was still unapplied.
    """
    violations: list[str] = []

    # durability / serial-replay equivalence: applying the acked writes
    # in ack order to a dict model must reproduce the scanned state
    expected: dict[bytes, bytes] = {}
    for _seq, row, value in history.acked:
        expected[row] = value
    actual: dict[bytes, bytes] = {}
    for result in table.scan(Scan()):
        actual[result.row] = result.value(FAMILY, QUALIFIER)
    for row in sorted(set(expected) - set(actual)):
        violations.append(f"durability: acked row {row!r} lost")
    for row in sorted(set(actual) - set(expected)):
        violations.append(f"durability: phantom row {row!r} surfaced")
    for row in sorted(set(expected) & set(actual)):
        if expected[row] != actual[row]:
            violations.append(
                f"durability: row {row!r} holds {actual[row]!r}, serial "
                f"replay of acked writes expects {expected[row]!r}"
            )

    # the single-threaded simulator acks a write in the same segment
    # that applied it, so any value an observation saw must have been
    # acked strictly before the observation's own sequence number
    acked_by_row: dict[bytes, list[tuple[int, bytes]]] = {}
    for seq, row, value in history.acked:
        acked_by_row.setdefault(row, []).append((seq, value))

    def acked_before(row: bytes, bound: int, value: bytes) -> bool:
        return any(
            s < bound and v == value for s, v in acked_by_row.get(row, ())
        )

    # every get saw a value some write had acked by then
    for seq, row, value in history.gets:
        if value is None:
            if any(s < seq for s, _v in acked_by_row.get(row, ())):
                violations.append(
                    f"read: get({row!r}) at seq {seq} observed no value "
                    "despite an earlier acked write"
                )
        elif not acked_before(row, seq, value):
            violations.append(
                f"read: get({row!r}) observed {value!r}, never acked "
                "before the read"
            )

    # follower gets: pinned-prefix exactness. The recorded row_lag says
    # the serving follower had applied all but the last row_lag edits to
    # the row, so the read must have returned exactly the
    # (row_lag+1)-th-latest acked value — or nothing, when every edit
    # was still unapplied. Anything else is a staleness violation: a
    # never-acked value, a value newer than the watermark allows, or
    # one older than the pinning guarantees.
    for seq, row, value, row_lag, entry_lag in history.follower_gets:
        acks = [v for s, v in acked_by_row.get(row, ()) if s < seq]
        if len(acks) > row_lag:
            pinned = acks[-(row_lag + 1)]
            if value != pinned:
                violations.append(
                    f"staleness: follower get({row!r}) at seq {seq} "
                    f"observed {value!r}, watermark (row_lag={row_lag}) "
                    f"pins it to {pinned!r}"
                )
        elif value is not None:
            violations.append(
                f"staleness: follower get({row!r}) at seq {seq} observed "
                f"{value!r} though its watermark predates every acked "
                "write to the row"
            )
        if staleness_bound is not None and entry_lag > staleness_bound:
            violations.append(
                f"staleness: follower get({row!r}) at seq {seq} served "
                f"at entry lag {entry_lag} > bound {staleness_bound}"
            )

    # scans: sorted, no duplication, no phantom values, no loss of rows
    # acked before the scan started
    for i, scan in enumerate(history.scans):
        prev: bytes | None = None
        for row, value in scan.rows:
            if prev is not None and row <= prev:
                violations.append(
                    f"scan[{i}]: rows out of order / duplicated at {row!r}"
                )
            prev = row
            if not acked_before(row, scan.end_seq, value):
                violations.append(
                    f"scan[{i}]: row {row!r} delivered {value!r}, never "
                    "acked before the scan ended"
                )
        if staleness_bound is not None and scan.max_entry_lag > staleness_bound:
            violations.append(
                f"scan[{i}]: follower window served at entry lag "
                f"{scan.max_entry_lag} > bound {staleness_bound}"
            )
        seen = {row for row, _value in scan.rows}
        pre_start_acks: dict[bytes, int] = {}
        for seq, row, _value in history.acked:
            if seq >= scan.start_seq:
                break  # acked is in seq order
            pre_start_acks[row] = pre_start_acks.get(row, 0) + 1
        for row, count in pre_start_acks.items():
            in_window = scan.start_row <= row and (
                scan.stop_row in (None, b"") or row < scan.stop_row
            )
            if not in_window or row in seen:
                continue
            if scan.missing_rows.get(row, 0) >= count:
                # a follower window's recorded pinning shows every
                # pre-scan edit to this row was still unapplied: the
                # bounded-staleness contract allows the omission
                continue
            violations.append(
                f"scan[{i}]: row {row!r} (acked before the scan "
                "started) was not delivered"
            )
    return violations


# ------------------------------------------------------------------ harness
@dataclass
class ChaosRun:
    """Outcome of one chaos cell (everything is deterministic)."""

    report: SchedulerReport
    history: ChaosHistory
    violations: list[str]
    quiesce_recoveries: int = 0
    """Crashed-but-unrecovered servers the harness failed over after
    the workload finished (the injector daemon was wound down before
    its recover event fired)."""

    replication: dict[str, Any] | None = None
    """Replication counters (promotions, entries shipped, follower-read
    counts...) when the cell ran with ``replica_count >= 2``; None —
    and absent from :meth:`as_dict`, keeping unreplicated JSON
    byte-identical to pre-replication builds — otherwise."""

    def as_dict(self) -> dict[str, Any]:
        h = self.history
        out = {
            "makespan_ms": self.report.makespan_ms,
            "committed": self.report.committed,
            "crashes": h.crash_count,
            "recoveries": h.recover_count,
            "restarts": h.restart_count,
            "regions_recovered": h.regions_recovered,
            "failover_retries": h.failover_retries,
            "stalls": len(h.stalls_ms),
            "quiesce_recoveries": self.quiesce_recoveries,
            "violations": list(self.violations),
        }
        if self.replication is not None:
            out["replication"] = dict(self.replication)
        return out


@dataclass
class _ChaosCellSpec:
    """Internal bundle for :func:`run_chaos_cell` defaults."""

    num_servers: int = 3
    clients: int = 4
    ops_per_client: int = 32
    preload_rows: int = 240
    scan_window: int = 24
    value_bytes: int = 12
    fault_config: FaultConfig = field(default_factory=FaultConfig)
    policy: FailoverPolicy = field(default_factory=FailoverPolicy)
    seed: int = 20170904


def run_chaos_cell(
    num_servers: int = 3,
    clients: int = 4,
    ops_per_client: int = 32,
    preload_rows: int = 240,
    scan_window: int = 24,
    fault_config: FaultConfig | None = None,
    policy: FailoverPolicy | None = None,
    seed: int = 20170904,
    replication: ReplicationConfig | None = None,
) -> ChaosRun:
    """Build a cluster, preload it, and drive ``clients`` chaos clients
    against it while a :class:`FaultInjector` crashes and recovers
    region servers — then check every durability/consistency invariant.

    The table is pre-split so each server hosts part of the key range
    (every crash takes real data offline). All randomness flows through
    ``derive_rng(seed, ...)`` streams and all timing is virtual, so two
    runs with the same arguments are byte-identical.

    Pass a ``replication`` config with ``replica_count >= 2`` to run
    the replicated variant: regions get followers before the preload,
    a :class:`~repro.hbase.replication.ReplicationShipper` daemon
    drains the ship queues alongside the fault injector, chaos clients
    read with bounded-staleness follower reads, and
    :func:`check_invariants` additionally enforces the staleness axis.
    """
    spec = _ChaosCellSpec(
        num_servers=num_servers,
        clients=clients,
        ops_per_client=ops_per_client,
        preload_rows=preload_rows,
        scan_window=scan_window,
        fault_config=fault_config or FaultConfig(),
        policy=policy or FailoverPolicy(),
        seed=seed,
    )
    sim = Simulation(seed=spec.seed)
    cluster_config = ClusterConfig(
        num_region_servers=spec.num_servers, seed=spec.seed
    )
    if replication is not None:
        cluster_config = ClusterConfig(
            num_region_servers=spec.num_servers,
            seed=spec.seed,
            replication=replication,
        )
    cluster = HBaseCluster(sim, cluster_config)
    client = HBaseClient(cluster)
    key_space = spec.preload_rows
    num_regions = max(2 * spec.num_servers, 2)
    split_keys = [
        b"%08d" % (key_space * i // num_regions)
        for i in range(1, num_regions)
    ]
    table = client.create_table(
        "chaos", families=(FAMILY,), split_keys=split_keys
    )
    if cluster.replication is not None:
        # followers must exist before the first edit: the ship log is
        # the region's complete history
        cluster.replication.replicate_table("chaos")
    history = ChaosHistory()
    puts = []
    for i in range(key_space):
        row = b"%08d" % i
        value = b"seed-%06d" % i
        history.record_ack(row, value)
        p = Put(row)
        p.add(FAMILY, QUALIFIER, value)
        puts.append(p)
    table.put_batch(puts)
    sim.reset_clock()

    scheduler = DeterministicScheduler(sim)
    for i in range(spec.clients):
        rng = derive_rng(
            spec.seed, f"{spec.fault_config.label}/chaos-client-{i}"
        )
        ops = build_chaos_ops(
            rng, spec.ops_per_client, key_space, spec.scan_window
        )
        handle = HTable(
            cluster, "chaos", follower_reads=cluster.replication is not None
        )
        tag = (b"c%02d" % i)

        def program(vc, handle=handle, ops=ops, tag=tag):
            yield from chaos_client_program(
                vc, handle, ops, history, spec.policy, tag
            )

        scheduler.add_client(f"chaos-{i}", program)
    injector = FaultInjector(cluster, spec.fault_config, history)
    injector.install(scheduler)
    if cluster.replication is not None:
        ReplicationShipper(cluster.replication).install(scheduler)
    report = scheduler.run()

    # quiesce: if the workload finished inside a failover window the
    # daemon was wound down before recovering the victim — finish the
    # master's job so the invariant scan sees the whole key space
    quiesce = 0
    for server in cluster.servers:
        if not server.alive and not server.recovered:
            history.regions_recovered += cluster.recover_server(server)
            quiesce += 1
    staleness_bound = None
    replication_stats = None
    manager = cluster.replication
    if manager is not None:
        staleness_bound = manager.config.staleness_bound_entries
        replication_stats = {
            "replica_count": manager.config.replica_count,
            "ack_mode": manager.config.ack_mode,
            "promotions": manager.promotions,
            "followers_rebuilt": manager.followers_rebuilt,
            "entries_shipped": manager.entries_shipped,
            "follower_gets": len(history.follower_gets),
            "follower_scan_windows": history.follower_scan_windows,
        }
    violations = check_invariants(
        history, HTable(cluster, "chaos"), staleness_bound=staleness_bound
    )
    return ChaosRun(
        report,
        history,
        violations,
        quiesce_recoveries=quiesce,
        replication=replication_stats,
    )
