"""TPC-W five-system shoot-out — a small-scale rerun of the paper's
evaluation (Figs. 12/14, Tables II/III).

    python examples/tpcw_evaluation.py [--scale 100] [--reps 3]

For the full experiment suite (every table and figure) use
``python -m repro.bench``.
"""

import argparse
import sys

from repro.bench.experiments import run_fig12, run_fig14, run_table2, run_table3
from repro.bench.tpcw_lab import TpcwLab


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=int, default=100,
                        help="number of TPC-W customers (paper: 1,000,000)")
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args()

    lab = TpcwLab(num_customers=args.scale, repetitions=args.reps)
    progress = lambda m: print(f"  .. {m}", file=sys.stderr)

    for runner in (run_fig12, run_fig14, run_table2, run_table3):
        print(runner(lab, progress=progress).to_text())
        print()


if __name__ == "__main__":
    main()
