"""Quickstart: the paper's Company walkthrough, end to end.

Builds a Synergy deployment over the Company schema (paper Fig. 2) with
roots {Address, Department}, prints the rooted trees and selected views
(Figs. 4-6), loads data, and runs reads (rewritten over views) and
writes (through the single-lock transaction layer).

    python examples/quickstart.py
"""

from repro.relational.company import (
    COMPANY_ROOTS,
    company_schema,
    company_workload,
)
from repro.synergy import SynergySystem


def main() -> None:
    system = SynergySystem(company_schema(), company_workload(), COMPANY_ROOTS)

    print("=== Rooted trees & selected views (paper Figs. 4-6) ===")
    print(system.describe())

    print("\n=== Workload rewritten over views ===")
    for sid, sql in system.statements.items():
        print(f"  {sid}: {sql}")

    # -- load a small database (parents before children) --------------------
    for aid in range(1, 6):
        system.load_row("Address", {"AID": aid, "Street": f"{aid} Main St",
                                    "City": "Nashville", "Zip": "37201"})
    for dno in (1, 2):
        system.load_row("Department", {"DNo": dno, "DName": f"Dept{dno}"})
    for eid in range(1, 11):
        system.load_row("Employee", {"EID": eid, "EName": f"emp{eid}",
                                     "EHome_AID": (eid % 5) + 1,
                                     "EOffice_AID": 1, "E_DNo": (eid % 2) + 1})
    for pno in (1, 2, 3):
        system.load_row("Project", {"PNo": pno, "PName": f"proj{pno}",
                                    "P_DNo": (pno % 2) + 1})
    for eid in range(1, 11):
        for pno in (1, 2, 3):
            if (eid + pno) % 2 == 0:
                system.load_row("Works_On", {"WO_EID": eid, "WO_PNo": pno,
                                             "Hours": 10 * pno})
    system.finish_load()

    print("\n=== Reads (answered from materialized views) ===")
    for sid, params in (("W1", (3,)), ("W2", (1,)), ("W3", (30,))):
        rows, ms = system.timed(system.statements[sid], params)
        print(f"  {sid}: {len(rows)} rows in {ms:.2f} virtual ms; "
              f"first: {rows[0] if rows else None}")

    print("\n=== Writes (single hierarchical lock each) ===")
    _, ms = system.timed(
        "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
        (1, 2, 99),
    )
    print(f"  insert Works_On: {ms:.2f} virtual ms "
          "(locks employee 1's home-address root key)")
    _, ms = system.timed(
        "UPDATE Employee SET EName = ? WHERE EID = ?", ("renamed", 1)
    )
    print(f"  update Employee: {ms:.2f} virtual ms (6-step marked update)")

    rows = system.execute(
        "SELECT EName, Hours FROM MV_Employee__Works_On "
        "WHERE WO_EID = ? and WO_PNo = ?", (1, 2),
    )
    print(f"  view row after both writes: {rows[0]}")
    print(f"\nDatabase size: {system.db_size_bytes() / 1e3:.1f} KB "
          f"across base tables, views and view-indexes")


if __name__ == "__main__":
    main()
