"""Bring your own schema: Synergy on a blogging platform.

Shows what a downstream user does with the library: define relations and
foreign keys, pick roots, hand over a workload, and get materialized
views + single-lock transactions — plus the operational story (crash
recovery of the HBase layer and of the transaction layer).

    python examples/custom_schema.py
"""

from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, Index, Relation, Schema
from repro.relational.workload import Workload
from repro.synergy import SynergySystem

INT, VARCHAR = DataType.INT, DataType.VARCHAR


def blog_schema() -> Schema:
    user = Relation(
        "Users",
        [("u_id", INT), ("u_name", VARCHAR), ("u_email", VARCHAR)],
        primary_key=["u_id"],
    )
    post = Relation(
        "Posts",
        [("p_id", INT), ("p_u_id", INT), ("p_title", VARCHAR),
         ("p_body", VARCHAR)],
        primary_key=["p_id"],
        foreign_keys=[ForeignKey("post_author", ("p_u_id",), "Users")],
    )
    comment = Relation(
        "Comments",
        [("cm_id", INT), ("cm_p_id", INT), ("cm_text", VARCHAR),
         ("cm_score", INT)],
        primary_key=["cm_id"],
        foreign_keys=[ForeignKey("comment_post", ("cm_p_id",), "Posts")],
    )
    schema = Schema([user, post, comment])
    schema.add_index("Posts", Index("idx_p_u_id", ("p_u_id",),
                                    ("p_id", "p_title", "p_body")))
    schema.add_index("Comments", Index("idx_cm_p_id", ("cm_p_id",),
                                       ("cm_id", "cm_text", "cm_score")))
    return schema


def blog_workload() -> Workload:
    w = Workload()
    w.add("SELECT * FROM Users as u, Posts as p "
          "WHERE u.u_id = p.p_u_id and u.u_id = ?", statement_id="user_page")
    w.add("SELECT * FROM Posts as p, Comments as c "
          "WHERE p.p_id = c.cm_p_id and c.cm_score = ?",
          statement_id="hot_comments")
    w.add("INSERT INTO Comments (cm_id, cm_p_id, cm_text, cm_score) "
          "VALUES (?, ?, ?, ?)", statement_id="add_comment")
    w.add("UPDATE Posts SET p_title = ? WHERE p_id = ?",
          statement_id="edit_title")
    return w


def main() -> None:
    system = SynergySystem(blog_schema(), blog_workload(), roots=("Users",))
    print(system.describe())

    for u in range(1, 4):
        system.load_row("Users", {"u_id": u, "u_name": f"user{u}",
                                  "u_email": f"u{u}@example.com"})
    for p in range(1, 7):
        system.load_row("Posts", {"p_id": p, "p_u_id": (p % 3) + 1,
                                  "p_title": f"post {p}", "p_body": "..." * 20})
    for c in range(1, 19):
        system.load_row("Comments", {"cm_id": c, "cm_p_id": (c % 6) + 1,
                                     "cm_text": f"comment {c}",
                                     "cm_score": c % 5})
    system.finish_load()

    rows, ms = system.timed(system.statements["user_page"], (2,))
    print(f"\nuser_page(2): {len(rows)} rows in {ms:.2f} virtual ms")
    rows, ms = system.timed(system.statements["hot_comments"], (4,))
    print(f"hot_comments(4): {len(rows)} rows in {ms:.2f} virtual ms")

    _, ms = system.timed(system.statements["add_comment"], (100, 3, "new!", 5))
    print(f"add_comment: {ms:.2f} virtual ms (one lock on the post author)")
    _, ms = system.timed(system.statements["edit_title"], ("Edited", 3))
    print(f"edit_title: {ms:.2f} virtual ms "
          "(6-step marked update across view rows)")

    # --- operational story: region-server crash + WAL recovery ------------
    cluster = system.cluster
    victim = next(s for s in cluster.servers if s.regions)
    victim.crash()
    recovered = cluster.recover_server(victim)
    rows = system.execute(
        "SELECT * FROM MV_Posts__Comments WHERE cm_id = ?", (100,)
    )
    print(f"\nafter region-server crash: {recovered} regions recovered from "
          f"WAL; new comment still visible in view: {bool(rows)}")


if __name__ == "__main__":
    main()
