"""Fig. 10 micro-benchmark at your own scale: view scan vs join.

    python examples/microbenchmark.py [--scales 50,500,5000] [--reps 5]

The paper runs 500/5,000/50,000 customers and reports the view scan 6x
(Q1) and 11.7x (Q2) faster than the join algorithm at the top scale.
"""

import argparse

from repro.bench.experiments import run_fig10


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scales", type=str, default="20,100,500")
    parser.add_argument("--reps", type=int, default=5)
    args = parser.parse_args()
    scales = tuple(int(s) for s in args.scales.split(","))
    for result in run_fig10(scales=scales, repetitions=args.reps).values():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
