"""Region replication: WAL taps, follower placement and shipping,
bounded-staleness follower reads, promotion-on-crash, replica repair —
and the staleness axis of the chaos oracle (including its teeth)."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, ReplicationConfig
from repro.errors import RegionUnavailableError, ReplicationError
from repro.hbase import HBaseClient, HBaseCluster, Put
from repro.hbase.client import HTable
from repro.hbase.ops import Get
from repro.hbase.replication import ReplicationShipper
from repro.hbase.wal import WalEntry, WriteAheadLog
from repro.sim.clock import Simulation
from repro.sim.faults import (
    FAMILY,
    QUALIFIER,
    ChaosHistory,
    FaultConfig,
    ScanObservation,
    chaos_scan,
    check_invariants,
    run_chaos_cell,
    FailoverPolicy,
)
from repro.sim.scheduler import DeterministicScheduler


def entry(row: bytes, ts: int = 1) -> WalEntry:
    return WalEntry("r", "put", row, [(FAMILY, QUALIFIER, b"x", None)], ts)


class TestWalTap:
    def test_tap_feeds_appends_and_survives_flush_truncation(self):
        wal = WriteAheadLog()
        log: list[WalEntry] = []
        wal.install_tap("r", log.append)
        wal.append(entry(b"a"))
        assert [e.row for e in log] == [b"a"]
        wal.truncate("r")  # memstore flush discards the buffer...
        wal.append(entry(b"b"))  # ...but the fresh buffer is tapped again
        assert [e.row for e in log] == [b"a", b"b"]

    def test_install_on_existing_buffer_does_not_replay(self):
        wal = WriteAheadLog()
        wal.append(entry(b"a"))
        log: list[WalEntry] = []
        wal.install_tap("r", log.append)
        assert log == []  # catching up is the installer's job
        wal.append(entry(b"b"))
        assert [e.row for e in log] == [b"b"]
        # the pre-existing entry is still in the buffer, untouched
        assert [e.row for e in wal.entries_for("r")] == [b"a", b"b"]

    def test_truncate_range_keeps_tap_without_retapping_kept_entries(self):
        wal = WriteAheadLog()
        log: list[WalEntry] = []
        wal.install_tap("r", log.append)
        wal.append(entry(b"a"))
        wal.append(entry(b"m"))
        wal.truncate_range("r", b"a", b"b")  # drops only b"a"
        assert [e.row for e in wal.entries_for("r")] == [b"m"]
        assert [e.row for e in log] == [b"a", b"m"]  # no double-feed
        wal.append(entry(b"z"))
        assert [e.row for e in log] == [b"a", b"m", b"z"]

    def test_remove_tap_stops_the_feed(self):
        wal = WriteAheadLog()
        log: list[WalEntry] = []
        wal.install_tap("r", log.append)
        wal.append(entry(b"a"))
        wal.remove_tap("r")
        wal.append(entry(b"b"))
        assert [e.row for e in log] == [b"a"]

    def test_clear_drops_taps(self):
        """A restarted server hosts nothing: any tap left would feed a
        log owned by a region now living (and tapped) elsewhere."""
        wal = WriteAheadLog()
        log: list[WalEntry] = []
        wal.install_tap("r", log.append)
        wal.clear()
        wal.append(entry(b"a"))
        assert log == []


def build_replicated_fixture(
    num_servers=3,
    rows=60,
    split_at=(20, 40),
    replica_count=2,
    seed=11,
    **rep_overrides,
):
    """A replicated cluster with the key space spread over three regions
    and the preload already written (followers still at watermark 0)."""
    sim = Simulation(seed=seed)
    cluster = HBaseCluster(
        sim,
        ClusterConfig(
            num_region_servers=num_servers,
            seed=seed,
            replication=ReplicationConfig(
                replica_count=replica_count, **rep_overrides
            ),
        ),
    )
    client = HBaseClient(cluster)
    splits = [b"%08d" % k for k in split_at]
    table = client.create_table("c", families=(FAMILY,), split_keys=splits)
    cluster.replication.replicate_table("c")
    puts = []
    for i in range(rows):
        p = Put(b"%08d" % i)
        p.add(FAMILY, QUALIFIER, b"seed-%06d" % i)
        puts.append(p)
    table.put_batch(puts)
    sim.reset_clock()
    return sim, cluster


def value_at(cluster, row: bytes, table="c") -> bytes | None:
    result = HTable(cluster, table).get(Get(row))
    return None if result is None else result.value(FAMILY, QUALIFIER)


class TestPlacement:
    def test_default_config_creates_no_manager(self):
        sim = Simulation(seed=1)
        cluster = HBaseCluster(sim, ClusterConfig(seed=1))
        assert cluster.replication is None
        assert all(not s.follower_regions for s in cluster.servers)

    def test_followers_never_share_the_primary_host(self):
        _sim, cluster = build_replicated_fixture(replica_count=3)
        manager = cluster.replication
        for group in manager.groups.values():
            primary_host = cluster.server_for(group.primary)
            assert len(group.followers) == 2
            hosts = [f.server for f in group.followers]
            assert primary_host not in hosts
            assert len({s.name for s in hosts}) == 2  # distinct servers

    def test_replicating_a_nonempty_region_is_rejected(self):
        """The ship log must be the region's complete edit history."""
        sim = Simulation(seed=1)
        cluster = HBaseCluster(
            sim,
            ClusterConfig(
                seed=1, replication=ReplicationConfig(replica_count=2)
            ),
        )
        table = HBaseClient(cluster).create_table("c", families=(FAMILY,))
        p = Put(b"a")
        p.add(FAMILY, QUALIFIER, b"1")
        table.put(p)
        with pytest.raises(ReplicationError, match="not empty"):
            cluster.replication.replicate_table("c")

    def test_double_replication_is_rejected(self):
        _sim, cluster = build_replicated_fixture()
        with pytest.raises(ReplicationError, match="already replicated"):
            cluster.replication.replicate_table("c")

    def test_short_cluster_runs_under_strength(self):
        """replica_count=3 on two servers: one follower placed (the
        only non-primary host), not an error — repair() tops up later
        when capacity appears."""
        _sim, cluster = build_replicated_fixture(
            num_servers=2, replica_count=3
        )
        for group in cluster.replication.groups.values():
            assert len(group.followers) == 1

    def test_replicated_region_refuses_to_split(self):
        _sim, cluster = build_replicated_fixture()
        region = next(iter(cluster.tables["c"].regions))
        with pytest.raises(ReplicationError, match="cannot be split"):
            cluster.split_region(region)

    def test_move_respects_anti_affinity(self):
        _sim, cluster = build_replicated_fixture()
        manager = cluster.replication
        group = next(iter(manager.groups.values()))
        follower_host = group.followers[0].server
        with pytest.raises(ReplicationError, match="co-host"):
            cluster.move_region(group.primary, follower_host)

    def test_move_retaps_the_new_host_wal(self):
        _sim, cluster = build_replicated_fixture(num_servers=4)
        manager = cluster.replication
        group = next(iter(manager.groups.values()))
        follower_hosts = {f.server.name for f in group.followers}
        old_host = cluster.server_for(group.primary)
        target = next(
            s
            for s in cluster.servers
            if s is not old_host and s.name not in follower_hosts
        )
        before = len(group.log)
        assert cluster.move_region(group.primary, target)
        handle = HTable(cluster, "c")
        p = Put(group.primary.start_key or b"%08d" % 0)
        p.add(FAMILY, QUALIFIER, b"after-move")
        handle.put(p)
        assert len(group.log) == before + 1  # the tap followed the move


class TestShipping:
    def test_ship_pending_applies_the_log_prefix(self):
        _sim, cluster = build_replicated_fixture()
        manager = cluster.replication
        group = next(iter(manager.groups.values()))
        follower = group.followers[0]
        assert follower.applied == 0  # preload not shipped yet
        shipped = manager.ship_pending(batch_entries=5)
        assert shipped > 0
        assert follower.applied == 5  # one batch per drain round
        manager.ship_pending(batch_entries=10_000)
        assert follower.applied == len(group.log)
        # the follower region now holds exactly the primary's rows
        row = group.primary.start_key or b"%08d" % 0
        result = follower.region.read_row(row, None)
        assert result is not None

    def test_ack_mode_all_ships_synchronously_with_the_write(self):
        _sim, cluster = build_replicated_fixture(ack_mode="all")
        manager = cluster.replication
        manager.ship_pending(10_000)  # drain the preload backlog
        handle = HTable(cluster, "c")
        p = Put(b"%08d" % 5)
        p.add(FAMILY, QUALIFIER, b"sync")
        handle.put(p)
        for group in manager.groups.values():
            for follower in group.followers:
                assert follower.applied == len(group.log)

    def test_shipper_daemon_drains_during_a_scheduled_run(self):
        sim, cluster = build_replicated_fixture()
        manager = cluster.replication
        scheduler = DeterministicScheduler(sim)
        handle = HTable(cluster, "c")

        def writer(vc):
            for i in range(6):
                p = Put(b"%08d" % (10 + i))
                p.add(FAMILY, QUALIFIER, b"w%d" % i)
                handle.put(p)
                vc.clock.advance(20.0)
                yield "write"

        scheduler.add_client("writer", writer)
        ReplicationShipper(manager).install(scheduler)
        scheduler.run()
        assert manager.entries_shipped > 0
        # long gaps between writes gave the daemon time to fully drain
        for group in manager.groups.values():
            for follower in group.followers:
                assert follower.applied == len(group.log)


class TestFollowerReads:
    def test_get_serves_from_follower_within_bound(self):
        _sim, cluster = build_replicated_fixture()
        manager = cluster.replication
        manager.ship_pending(10_000)
        handle = HTable(cluster, "c", follower_reads=True)
        result = handle.get(Get(b"%08d" % 7))
        assert result.value(FAMILY, QUALIFIER) == b"seed-%06d" % 7
        assert handle.last_follower_lag == (0, 0)

    def test_out_of_bound_follower_falls_back_to_primary(self):
        _sim, cluster = build_replicated_fixture(staleness_bound_entries=3)
        # preload backlog (20 entries/region) far exceeds the bound of 3
        handle = HTable(cluster, "c", follower_reads=True)
        result = handle.get(Get(b"%08d" % 7))
        assert result.value(FAMILY, QUALIFIER) == b"seed-%06d" % 7
        assert handle.last_follower_lag is None  # primary served

    def test_follower_read_is_pinned_to_its_watermark(self):
        """A bounded-stale read returns the exact acked value its
        watermark pins — never a newer or never-acked one."""
        _sim, cluster = build_replicated_fixture(staleness_bound_entries=64)
        manager = cluster.replication
        manager.ship_pending(10_000)
        handle = HTable(cluster, "c", follower_reads=True)
        writer = HTable(cluster, "c")
        p = Put(b"%08d" % 7)
        p.add(FAMILY, QUALIFIER, b"v2")
        writer.put(p)  # un-shipped: followers still hold seed value
        result = handle.get(Get(b"%08d" % 7))
        assert result.value(FAMILY, QUALIFIER) == b"seed-%06d" % 7
        row_lag, entry_lag = handle.last_follower_lag
        assert row_lag == 1 and entry_lag == 1
        manager.ship_pending(10_000)
        result = handle.get(Get(b"%08d" % 7))
        assert result.value(FAMILY, QUALIFIER) == b"v2"
        assert handle.last_follower_lag == (0, 0)

    def test_follower_serves_through_a_primary_outage(self):
        """The robustness win: a crashed (un-recovered) primary does not
        block reads — a live in-bound follower answers them."""
        _sim, cluster = build_replicated_fixture()
        cluster.replication.ship_pending(10_000)
        row = b"%08d" % 30  # middle region
        region = cluster.tables["c"].region_for(row)
        cluster.server_for(region).crash()
        plain = HTable(cluster, "c")
        with pytest.raises(RegionUnavailableError):
            plain.get(Get(row))
        follower_handle = HTable(cluster, "c", follower_reads=True)
        result = follower_handle.get(Get(row))
        assert result.value(FAMILY, QUALIFIER) == b"seed-%06d" % 30

    def test_follower_scan_window_records_staleness_pinning(self):
        _sim, cluster = build_replicated_fixture()
        manager = cluster.replication
        manager.ship_pending(10_000)
        writer = HTable(cluster, "c")
        p = Put(b"%08d" % 3)
        p.add(FAMILY, QUALIFIER, b"v2")
        writer.put(p)  # one un-shipped edit in the first region
        handle = HTable(cluster, "c", follower_reads=True)
        rows = {r.row: r.value(FAMILY, QUALIFIER) for r in handle.scan()}
        assert len(rows) == 60
        assert rows[b"%08d" % 3] == b"seed-%06d" % 3  # pinned, not v2
        assert handle.follower_scan_lag  # windows recorded their lag
        merged = {}
        for _lag, missing in handle.follower_scan_lag:
            merged.update(missing)
        assert merged == {b"%08d" % 3: 1}


class TestPromotion:
    def test_crash_promotes_most_caught_up_follower(self):
        _sim, cluster = build_replicated_fixture()
        manager = cluster.replication
        manager.ship_pending(10_000)
        writer = HTable(cluster, "c")
        p = Put(b"%08d" % 30)
        p.add(FAMILY, QUALIFIER, b"unshipped")
        writer.put(p)  # suffix of exactly one entry
        row = b"%08d" % 30
        region = cluster.tables["c"].region_for(row)
        group = manager.groups[region.name]
        follower_names = {f.server.name for f in group.followers}
        victim = cluster.server_for(region)
        victim.crash()
        cluster.recover_server(victim)
        assert manager.promotions >= 1
        # the promoted region is the old follower object, now routed to
        promoted = cluster.tables["c"].region_for(row)
        assert promoted is group.primary
        assert cluster.server_for(promoted).name in follower_names
        # the un-shipped suffix was replayed: nothing acked was lost
        assert value_at(cluster, row) == b"unshipped"
        assert value_at(cluster, b"%08d" % 25) == b"seed-%06d" % 25

    def test_client_relocates_onto_the_promoted_replica(self):
        """A client handle that located the old primary before the
        crash must ride its cached-location invalidation onto the
        promoted replica — the standard _relocate dance."""
        _sim, cluster = build_replicated_fixture()
        cluster.replication.ship_pending(10_000)
        handle = HTable(cluster, "c")
        row = b"%08d" % 30
        assert handle.get(Get(row)) is not None  # location now cached
        victim = cluster.server_for(cluster.tables["c"].region_for(row))
        victim.crash()
        cluster.recover_server(victim)
        result = handle.get(Get(row))  # stale cache -> relocate -> follower
        assert result.value(FAMILY, QUALIFIER) == b"seed-%06d" % 30

    def test_promotion_tie_break_is_deterministic(self):
        """Two equally-caught-up followers: the winner comes from the
        manager's SimRNG stream, so identical clusters promote the
        identical server."""

        def promoted_server():
            _sim, cluster = build_replicated_fixture(
                num_servers=4, replica_count=3, seed=23
            )
            cluster.replication.ship_pending(10_000)  # both fully caught up
            row = b"%08d" % 30
            region = cluster.tables["c"].region_for(row)
            victim = cluster.server_for(region)
            victim.crash()
            cluster.recover_server(victim)
            return cluster.server_for(
                cluster.tables["c"].region_for(row)
            ).name

        assert promoted_server() == promoted_server()

    def test_all_followers_dead_falls_back_to_wal_replay(self):
        """No live follower: the fresh-region WAL-replay path recovers
        the data and the group re-keys onto the fresh incarnation."""
        _sim, cluster = build_replicated_fixture(num_servers=3)
        manager = cluster.replication
        manager.ship_pending(10_000)
        row = b"%08d" % 30
        region = cluster.tables["c"].region_for(row)
        group = manager.groups[region.name]
        primary_host = cluster.server_for(region)
        for follower in group.followers:
            follower.server.crash()
        primary_host.crash()
        moved = cluster.recover_server(primary_host)
        assert moved >= 1
        assert manager.promotions == 0
        fresh = cluster.tables["c"].region_for(row)
        assert fresh is not region
        assert manager.groups.get(fresh.name) is group  # re-keyed
        assert value_at(cluster, row) == b"seed-%06d" % 30

    def test_repair_rebuilds_lost_followers(self):
        _sim, cluster = build_replicated_fixture(num_servers=3)
        manager = cluster.replication
        manager.ship_pending(10_000)
        group = next(iter(manager.groups.values()))
        follower = group.followers[0]
        victim = follower.server
        victim.crash()
        # recover_server ends with a repair pass: the dead follower is
        # pruned and rebuilt on the remaining eligible live server
        cluster.recover_server(victim)
        assert manager.followers_rebuilt >= 1
        assert all(f.server is not victim
                   for g in manager.groups.values() for f in g.followers)
        victim.restart()
        assert manager.repair() == 0  # already at strength
        for g in manager.groups.values():
            assert len(g.followers) == 1
            for f in g.followers:
                assert f.is_live()
                assert f.applied == len(g.log)  # rebuilt = full replay

    def test_recovery_replay_estimate_shrinks_with_replication(self):
        """The quantity the chaos stall knob charges: a promotable
        region replays only its suffix, an unreplicated one the whole
        pending WAL."""
        _sim, plain = build_replicated_fixture(replica_count=2)
        sim2 = Simulation(seed=11)
        unrep = HBaseCluster(
            sim2, ClusterConfig(num_region_servers=3, seed=11)
        )
        client = HBaseClient(unrep)
        splits = [b"%08d" % k for k in (20, 40)]
        table = client.create_table("c", families=(FAMILY,), split_keys=splits)
        puts = []
        for i in range(60):
            p = Put(b"%08d" % i)
            p.add(FAMILY, QUALIFIER, b"seed-%06d" % i)
            puts.append(p)
        table.put_batch(puts)
        plain.replication.ship_pending(10_000)
        row = b"%08d" % 30
        rep_victim = plain.server_for(plain.tables["c"].region_for(row))
        unrep_victim = unrep.server_for(unrep.tables["c"].region_for(row))
        rep_victim.crash()
        unrep_victim.crash()
        rep_estimate = plain.recovery_replay_estimate(rep_victim)
        unrep_estimate = unrep.recovery_replay_estimate(unrep_victim)
        assert rep_estimate == 0  # fully shipped: empty suffix
        assert unrep_estimate >= 20  # the whole preloaded WAL


class TestCrashCycleEdges:
    """Multi-cycle crash/restart edges around promotion."""

    def test_back_to_back_crashes_of_the_same_server(self):
        """Crash -> promote -> restart -> crash again immediately: the
        second cycle must find a consistent world (the restarted server
        hosts nothing, its WAL and taps are gone, repair has rebuilt
        followers) and lose nothing."""
        _sim, cluster = build_replicated_fixture(num_servers=3)
        manager = cluster.replication
        manager.ship_pending(10_000)
        row = b"%08d" % 30
        victim = cluster.server_for(cluster.tables["c"].region_for(row))
        for _cycle in range(2):
            victim.crash()
            cluster.recover_server(victim)
            victim.restart()
            assert not victim.regions and not victim.follower_regions
            assert victim.wal.pending_count() == 0
            manager.ship_pending(10_000)
            # second cycle crashes the *same* server again: by now it
            # may host rebuilt followers but no primaries — both must
            # survive another crash/recover round
        for i in range(60):
            assert value_at(cluster, b"%08d" % i) == b"seed-%06d" % i
        for group in manager.groups.values():
            for follower in group.followers:
                assert follower.is_live()

    def test_promotion_races_an_open_scan_resume_cursor(self):
        """A chaos scan interrupted by a crash must resume — via its
        cursor — on the *promoted* replica, delivering every row
        exactly once across the promotion boundary."""
        sim, cluster = build_replicated_fixture(num_servers=3)
        manager = cluster.replication
        manager.ship_pending(10_000)
        history = ChaosHistory()
        for i in range(60):  # the preload is acked, so the oracle knows it
            history.record_ack(b"%08d" % i, b"seed-%06d" % i)
        policy = FailoverPolicy(scan_chunk_rows=8)
        handle = HTable(cluster, "c")  # primary-routed scan
        row = b"%08d" % 30
        victim = cluster.server_for(cluster.tables["c"].region_for(row))
        scheduler = DeterministicScheduler(sim)

        def scanner(vc):
            yield from chaos_scan(vc, handle, b"", None, history, policy)

        def faulter(vc):
            vc.clock.advance(1.0)
            yield "crash"
            victim.crash()
            vc.clock.advance(5.0)
            yield "recover"
            cluster.recover_server(victim)  # promotes the follower

        scheduler.add_client("scanner", scanner)
        scheduler.add_client("faulter", faulter, daemon=True)
        scheduler.run()
        assert manager.promotions >= 1
        rows = [r for r, _v in history.scans[0].rows]
        assert rows == [b"%08d" % i for i in range(60)]
        assert check_invariants(history, HTable(cluster, "c")) == []


class TestReplicatedChaosCell:
    def test_replicated_cell_is_clean_and_promotes(self):
        run = run_chaos_cell(
            num_servers=4,
            clients=6,
            ops_per_client=24,
            fault_config=FaultConfig(
                cycles=2, recovery_replay_ms_per_entry=0.1
            ),
            replication=ReplicationConfig(replica_count=2),
        )
        assert run.violations == []
        stats = run.replication
        assert stats is not None
        assert stats["promotions"] > 0
        assert stats["entries_shipped"] > 0
        assert stats["follower_gets"] > 0
        assert run.report.committed == 6 * 24

    def test_unreplicated_cell_reports_no_replication_block(self):
        run = run_chaos_cell(
            clients=2, ops_per_client=8, fault_config=FaultConfig(cycles=0)
        )
        assert run.replication is None
        assert "replication" not in run.as_dict()

    def test_replicated_rerun_is_byte_identical(self):
        def one():
            run = run_chaos_cell(
                num_servers=4,
                clients=4,
                ops_per_client=16,
                fault_config=FaultConfig(
                    cycles=2, recovery_replay_ms_per_entry=0.2
                ),
                replication=ReplicationConfig(replica_count=2),
            )
            return (
                run.as_dict(),
                run.report.as_dict(),
                run.history.acked,
                run.history.follower_gets,
                [s.rows for s in run.history.scans],
            )

        assert one() == one()

    def test_replay_cost_stretches_single_copy_stalls_more(self):
        """The headline: at the same crash rate and replay cost, the
        replicated cell's mean recovery stall is measurably below the
        single-copy baseline (promotion replays a short suffix, not the
        whole pending WAL)."""

        def mean_stall(replication):
            run = run_chaos_cell(
                num_servers=4,
                clients=6,
                ops_per_client=24,
                fault_config=FaultConfig(
                    cycles=2, recovery_replay_ms_per_entry=0.4
                ),
                replication=replication,
            )
            assert run.violations == []
            stalls = run.history.stalls_ms
            return sum(stalls) / len(stalls)

        single = mean_stall(None)
        replicated = mean_stall(ReplicationConfig(replica_count=2))
        assert replicated < single


class TestStalenessOracleHasTeeth:
    """The staleness axis must actually detect violations."""

    def fixture(self):
        sim = Simulation(seed=11)
        cluster = HBaseCluster(
            sim, ClusterConfig(num_region_servers=2, seed=11)
        )
        client = HBaseClient(cluster)
        table = client.create_table("c", families=(FAMILY,))
        history = ChaosHistory()
        puts = []
        for i in range(10):
            row, value = b"%08d" % i, b"seed-%06d" % i
            history.record_ack(row, value)
            p = Put(row)
            p.add(FAMILY, QUALIFIER, value)
            puts.append(p)
        table.put_batch(puts)
        return cluster, history

    def staleness(self, cluster, history, bound=32):
        return [
            v
            for v in check_invariants(
                history, HTable(cluster, "c"), staleness_bound=bound
            )
            if v.startswith(("staleness", "scan"))
        ]

    def test_correctly_pinned_follower_get_passes(self):
        cluster, history = self.fixture()
        history.record_follower_get(b"%08d" % 3, b"seed-%06d" % 3, 0, 0)
        assert self.staleness(cluster, history) == []

    def test_pinned_stale_value_passes_and_wrong_one_fails(self):
        cluster, history = self.fixture()
        row = b"%08d" % 3
        history.record_ack(row, b"v2")
        # row_lag=1: the follower had not applied the v2 edit -> the
        # read must return the previous acked value, which it did
        history.record_follower_get(row, b"seed-%06d" % 3, 1, 1)
        # row_lag=0 claims full application, so seeing the old value is
        # a violation: the watermark pins the read to v2
        history.record_follower_get(row, b"seed-%06d" % 3, 0, 0)
        violations = [
            v
            for v in check_invariants(
                history, HTable(cluster, "c"), staleness_bound=32
            )
            if v.startswith("staleness")
        ]
        assert len(violations) == 1
        assert "pins it to" in violations[0]

    def test_never_acked_follower_value_is_detected(self):
        cluster, history = self.fixture()
        history.record_follower_get(b"%08d" % 3, b"forged", 0, 0)
        assert any(
            "staleness" in v for v in self.staleness(cluster, history)
        )

    def test_value_with_watermark_before_any_ack_is_detected(self):
        cluster, history = self.fixture()
        # row_lag covers every ack to the row: the follower could not
        # have any value, yet one was observed
        history.record_follower_get(b"%08d" % 3, b"seed-%06d" % 3, 5, 5)
        assert any(
            "predates every acked write" in v
            for v in self.staleness(cluster, history)
        )

    def test_entry_lag_beyond_bound_is_detected(self):
        cluster, history = self.fixture()
        history.record_follower_get(b"%08d" % 3, b"seed-%06d" % 3, 0, 99)
        violations = self.staleness(cluster, history, bound=32)
        assert any("> bound 32" in v for v in violations)
        # without a bound the same observation is fine
        assert self.staleness(cluster, history, bound=None) == []

    def test_scan_window_lag_beyond_bound_is_detected(self):
        cluster, history = self.fixture()
        rows = [(b"%08d" % i, b"seed-%06d" % i) for i in range(10)]
        history.scans.append(
            ScanObservation(
                history.next_seq(),
                history.next_seq(),
                b"",
                None,
                rows,
                max_entry_lag=99,
            )
        )
        assert any(
            "> bound 32" in v for v in self.staleness(cluster, history)
        )

    def test_scan_loss_excused_only_by_a_covering_missing_count(self):
        cluster, history = self.fixture()
        rows = [
            (b"%08d" % i, b"seed-%06d" % i) for i in range(10) if i != 7
        ]
        # missing_rows says every (single) pre-scan edit to row 7 was
        # unapplied on the serving follower: the omission is legal
        history.scans.append(
            ScanObservation(
                history.next_seq(),
                history.next_seq(),
                b"",
                None,
                list(rows),
                0,
                {b"%08d" % 7: 1},
            )
        )
        assert self.staleness(cluster, history) == []
        # an insufficient count (0 < 1 ack) stays a loss violation
        history.scans.append(
            ScanObservation(
                history.next_seq(),
                history.next_seq(),
                b"",
                None,
                list(rows),
                0,
                {},
            )
        )
        assert any(
            "was not delivered" in v for v in self.staleness(cluster, history)
        )
