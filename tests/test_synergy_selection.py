"""Views selection + query rewriting (paper Sec. VI), including the
exact R1..R6 example of Fig. 6."""

import pytest

from repro.relational.company import COMPANY_ROOTS, company_schema, company_workload
from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, Relation, Schema
from repro.relational.workload import Workload
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql
from repro.synergy.graph import build_schema_graph
from repro.synergy.heuristics import JoinOverlapHeuristic
from repro.synergy.rewrite import rewrite_query
from repro.synergy.selection import select_views, select_views_for_query
from repro.synergy.trees import generate_rooted_trees
from repro.synergy.view_indexes import (
    ViewIndexPlan,
    recommend_maintenance_indexes,
    recommend_read_indexes,
)


def fig6_schema() -> Schema:
    """R1 -> R2 -> R3 -> R4 and R2 -> R5 -> R6 (paper Fig. 6(a))."""
    def rel(n, parent=None):
        attrs = [(f"pk{n}", DataType.INT)]
        fks = []
        if parent is not None:
            attrs.append((f"fk{n}", DataType.INT))
            fks = [ForeignKey(f"f{n}", (f"fk{n}",), f"R{parent}")]
        return Relation(f"R{n}", attrs, primary_key=[f"pk{n}"], foreign_keys=fks)

    return Schema([
        rel(1), rel(2, 1), rel(3, 2), rel(4, 3), rel(5, 2), rel(6, 5),
    ])


FIG6_QUERY = (
    "SELECT * FROM R2 as r2, R3 as r3, R4 as r4, R5 as r5, R6 as r6 "
    "WHERE r2.pk2 = r3.fk3 and r3.pk3 = r4.fk4 "
    "and r2.pk2 = r5.fk5 and r5.pk5 = r6.fk6"
)


class TestFig6Example:
    def setup_method(self):
        self.schema = fig6_schema()
        self.workload = Workload([FIG6_QUERY])
        self.heuristic = JoinOverlapHeuristic(self.schema, self.workload)
        graph = build_schema_graph(self.schema)
        self.trees, _ = generate_rooted_trees(graph, ("R1",), self.heuristic)

    def test_tree_shape(self):
        tree = self.trees["R1"]
        assert tree.children_of("R1") == ("R2",)
        assert set(tree.children_of("R2")) == {"R3", "R5"}

    def test_selected_views_match_paper(self):
        """Fig. 6(c): the algorithm selects R2-R3-R4 and R5-R6."""
        views = select_views_for_query(
            parse_statement(FIG6_QUERY), self.schema, self.trees, self.heuristic
        )
        assert {v.display_name for v in views} == {"R2-R3-R4", "R5-R6"}

    def test_rewrite_matches_paper(self):
        """Fig. 6(d): FROM R2-R3-R4, R5-R6 WHERE pk2 = fk5."""
        views = select_views_for_query(
            parse_statement(FIG6_QUERY), self.schema, self.trees, self.heuristic
        )
        ordered = sorted(views, key=lambda v: v.display_name)
        result = rewrite_query(parse_statement(FIG6_QUERY), self.schema, ordered)
        sql = to_sql(result.select)
        assert "MV_R2__R3__R4" in sql and "MV_R5__R6" in sql
        # exactly one join condition remains: pk2 = fk5
        assert len(result.select.where) == 1
        cond = result.select.where[0]
        assert {cond.left.name, cond.right.name} == {"pk2", "fk5"}

    def test_unmarking_prevents_overlap(self):
        """After R2-R3-R4 is taken, R2's outgoing edge to R5 is unmarked,
        so the second view starts at R5 — not at R2."""
        views = select_views_for_query(
            parse_statement(FIG6_QUERY), self.schema, self.trees, self.heuristic
        )
        for v in views:
            if "R5" in v.relations:
                assert v.first == "R5"


class TestCompanySelection:
    def setup_method(self):
        self.schema = company_schema()
        self.workload = company_workload()
        self.heuristic = JoinOverlapHeuristic(self.schema, self.workload)
        graph = build_schema_graph(self.schema)
        self.trees, _ = generate_rooted_trees(
            graph, COMPANY_ROOTS, self.heuristic
        )

    def test_per_query_selection(self):
        result = select_views(self.workload, self.schema, self.trees, self.heuristic)
        names = {
            sid: [v.display_name for v in views]
            for sid, views in result.per_query.items()
        }
        assert names["W1"] == ["Address-Employee"]
        assert names["W2"] == ["Employee-Works_On"]
        assert names["W3"] == ["Employee-Works_On"]

    def test_final_set_deduplicated(self):
        result = select_views(self.workload, self.schema, self.trees, self.heuristic)
        names = [v.display_name for v in result.final_views]
        assert names == ["Address-Employee", "Employee-Works_On"]

    def test_self_join_gets_no_views(self):
        q = parse_statement(
            "SELECT * FROM Employee as a, Employee as b, Address as x "
            "WHERE x.AID = a.EHome_AID and a.EID = b.EID"
        )
        assert select_views_for_query(q, self.schema, self.trees, self.heuristic) == []

    def test_non_join_query_gets_no_views(self):
        q = parse_statement("SELECT * FROM Employee WHERE EID = ?")
        assert select_views_for_query(q, self.schema, self.trees, self.heuristic) == []

    def test_non_fk_join_not_materialized(self):
        # joining on a non-key attribute marks no edges
        q = parse_statement(
            "SELECT * FROM Employee as e, Dependent as d "
            "WHERE e.EHome_AID = d.DPHome_AID"
        )
        assert select_views_for_query(q, self.schema, self.trees, self.heuristic) == []

    def test_rewrite_w2_keeps_external_join(self):
        """W2's D-E join cannot materialize (E belongs to Address's
        hierarchy); the rewritten query joins Department with the view."""
        result = select_views(self.workload, self.schema, self.trees, self.heuristic)
        w2 = parse_statement(self.workload.by_id("W2").sql)
        rewritten = rewrite_query(w2, self.schema, result.per_query["W2"])
        sql = to_sql(rewritten.select)
        assert "Department as d" in sql
        assert "MV_Employee__Works_On" in sql
        assert "d.DNo = v0.E_DNo" in sql


class TestViewIndexes:
    def setup_method(self):
        self.schema = company_schema()
        self.workload = company_workload()
        self.heuristic = JoinOverlapHeuristic(self.schema, self.workload)
        graph = build_schema_graph(self.schema)
        self.trees, _ = generate_rooted_trees(graph, COMPANY_ROOTS, self.heuristic)
        self.selection = select_views(
            self.workload, self.schema, self.trees, self.heuristic
        )
        self.rewritten = {}
        for stmt in self.workload:
            self.rewritten[stmt.statement_id] = rewrite_query(
                stmt.parsed, self.schema, self.selection.per_query[stmt.statement_id]
            )

    def test_read_index_on_uncovered_filter(self):
        """W3 filters the E-WO view on Hours, which is not the view key
        (WO_EID, WO_PNo) -> a view-index on Hours is recommended."""
        plan = ViewIndexPlan()
        recommend_read_indexes(self.schema, self.rewritten, plan)
        specs = {(s.view.display_name, s.indexed_on) for s in plan.specs}
        assert ("Employee-Works_On", ("Hours",)) in specs

    def test_key_covered_filter_needs_no_index(self):
        """W1 filters Address-Employee on EID = the view key."""
        plan = ViewIndexPlan()
        recommend_read_indexes(self.schema, self.rewritten, plan)
        assert not any(
            s.view.display_name == "Address-Employee" for s in plan.specs
        )

    def test_maintenance_index_for_mid_path_updates(self):
        writes = Workload(["UPDATE Employee SET EName = ? WHERE EID = ?"])
        plan = ViewIndexPlan()
        recommend_maintenance_indexes(
            self.schema, self.selection.final_views, writes, plan
        )
        specs = {(s.view.display_name, s.indexed_on, s.reason) for s in plan.specs}
        assert ("Employee-Works_On", ("EID",), "maintenance") in specs
        # Address-Employee is keyed by EID already -> no index needed
        assert not any(
            s.view.display_name == "Address-Employee" for s in plan.specs
        )

    def test_plan_deduplicates(self):
        plan = ViewIndexPlan()
        recommend_read_indexes(self.schema, self.rewritten, plan)
        n = len(plan.specs)
        recommend_read_indexes(self.schema, self.rewritten, plan)
        assert len(plan.specs) == n
