"""Differential property harness for the two execution engines.

A seeded generator produces random Company-schema queries (projections,
predicates, 2-3-way joins including self-joins, DISTINCT, GROUP BY
aggregates, ORDER BY + LIMIT) and runs every one through the legacy
materializing executor, the streaming operator pipeline, and the
streaming pipeline under the cost-based planner. All three must agree
row-for-row (as multisets) with a pure-Python relational reference
model evaluated over the same data.

LIMIT is only generated underneath an ORDER BY covering every projected
column, so the limited prefix is a well-defined multiset no matter
which engine (or plan) produced the row order. Aggregated attributes
are integers, so SUM/AVG are exact regardless of accumulation order.
"""

from __future__ import annotations

import random

import pytest

from repro.config import ClusterConfig
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.phoenix.ddl import create_baseline_schema
from repro.phoenix.executor import PhoenixConnection
from repro.relational.company import company_schema
from repro.sim.clock import Simulation

QUERIES_PER_SEED = 200
SEEDS = (171001792, 20170904)

ENGINE_MODES = (
    ("legacy", False),
    ("streaming", False),
    ("streaming", True),
)


# ------------------------------------------------------------ reference data
def company_rows() -> dict[str, list[dict]]:
    """The same deterministic Company database conftest loads, as plain
    dicts — the ground truth the reference model evaluates against."""
    rows: dict[str, list[dict]] = {t: [] for t in TABLES}
    for aid in range(1, 6):
        rows["Address"].append({"AID": aid, "Street": f"{aid} Main St",
                                "City": "Nashville", "Zip": "37201"})
    for dno in (1, 2):
        rows["Department"].append({"DNo": dno, "DName": f"Dept{dno}"})
    for eid in range(1, 11):
        rows["Employee"].append({"EID": eid, "EName": f"emp{eid}",
                                 "EHome_AID": (eid % 5) + 1,
                                 "EOffice_AID": 1, "E_DNo": (eid % 2) + 1})
    for pno in (1, 2, 3):
        rows["Project"].append({"PNo": pno, "PName": f"proj{pno}",
                                "P_DNo": (pno % 2) + 1})
    for eid in range(1, 11):
        for pno in (1, 2, 3):
            if (eid + pno) % 2 == 0:
                rows["Works_On"].append({"WO_EID": eid, "WO_PNo": pno,
                                         "Hours": 10 * pno})
    for eid in (1, 2):
        rows["Dependent"].append({"DP_EID": eid, "DPName": f"dep{eid}",
                                  "DPHome_AID": eid + 1})
    return rows


TABLES = {
    "Address": ("AID", "Street", "City", "Zip"),
    "Department": ("DNo", "DName"),
    "Employee": ("EID", "EName", "EHome_AID", "EOffice_AID", "E_DNo"),
    "Project": ("PNo", "PName", "P_DNo"),
    "Works_On": ("WO_EID", "WO_PNo", "Hours"),
    "Dependent": ("DP_EID", "DPName", "DPHome_AID"),
}
INT_ATTRS = {
    "Address": ("AID",),
    "Department": ("DNo",),
    "Employee": ("EID", "EHome_AID", "EOffice_AID", "E_DNo"),
    "Project": ("PNo", "P_DNo"),
    "Works_On": ("WO_EID", "WO_PNo", "Hours"),
    "Dependent": ("DP_EID", "DPHome_AID"),
}
#: (table_a, attr_a, table_b, attr_b) — equi-joinable attribute pairs,
#: including self-joins on a key and on an unindexed non-key attribute.
JOIN_EDGES = (
    ("Employee", "EHome_AID", "Address", "AID"),
    ("Employee", "EOffice_AID", "Address", "AID"),
    ("Employee", "E_DNo", "Department", "DNo"),
    ("Project", "P_DNo", "Department", "DNo"),
    ("Works_On", "WO_EID", "Employee", "EID"),
    ("Works_On", "WO_PNo", "Project", "PNo"),
    ("Dependent", "DP_EID", "Employee", "EID"),
    ("Dependent", "DPHome_AID", "Address", "AID"),
    ("Employee", "E_DNo", "Employee", "E_DNo"),
    ("Works_On", "Hours", "Works_On", "Hours"),
)
FILTER_OPS = ("=", "<", ">", "<=", ">=", "<>")


# ------------------------------------------------------------ query generator
class QuerySpec:
    def __init__(self) -> None:
        self.bindings: list[tuple[str, str]] = []  # (alias, table)
        self.joins: list[tuple[str, str, str, str]] = []  # a1, x, a2, y
        self.filters: list[tuple[str, str, str, int]] = []  # alias, attr, op, v
        self.columns: list[tuple[str, str]] = []  # (alias, attr) projections
        self.aggregates: list[tuple[str, str | None, str | None]] = []
        self.group_keys: list[tuple[str, str]] = []
        self.distinct = False
        self.order: list[tuple[int, bool]] = []  # (column index, desc)
        self.limit: int | None = None

    @property
    def sql(self) -> str:
        cols = []
        for alias, attr in self.columns:
            cols.append(f"{alias}.{attr}")
        for func, alias, attr in self.aggregates:
            cols.append(f"{func}(*)" if alias is None else f"{func}({alias}.{attr})")
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(cols))
        parts.append("FROM " + ", ".join(f"{t} as {a}" for a, t in self.bindings))
        conds = [f"{a1}.{x} = {a2}.{y}" for a1, x, a2, y in self.joins]
        conds += [f"{a}.{attr} {op} ?" for a, attr, op, _v in self.filters]
        if conds:
            parts.append("WHERE " + " and ".join(conds))
        if self.group_keys:
            parts.append(
                "GROUP BY " + ", ".join(f"{a}.{x}" for a, x in self.group_keys)
            )
        if self.order:
            parts.append("ORDER BY " + ", ".join(
                cols[i] + (" DESC" if desc else "") for i, desc in self.order
            ))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    @property
    def params(self) -> tuple[int, ...]:
        return tuple(v for _a, _attr, _op, v in self.filters)


def generate_query(rng: random.Random) -> QuerySpec:
    spec = QuerySpec()
    n_tables = rng.choice((1, 2, 2, 2, 3, 3))
    first = rng.choice(sorted(TABLES))
    spec.bindings.append(("t0", first))
    while len(spec.bindings) < n_tables:
        anchored = []
        for ta, xa, tb, yb in JOIN_EDGES:
            for a, t in spec.bindings:
                if t == ta:
                    anchored.append((a, xa, tb, yb))
                if t == tb:
                    anchored.append((a, yb, ta, xa))
        a, x, other, y = rng.choice(anchored)
        alias = f"t{len(spec.bindings)}"
        spec.bindings.append((alias, other))
        spec.joins.append((a, x, alias, y))
    for alias, table in spec.bindings:
        if rng.random() < 0.5:
            attr = rng.choice(INT_ATTRS[table])
            spec.filters.append(
                (alias, attr, rng.choice(FILTER_OPS), rng.randint(0, 12))
            )

    if rng.random() < 0.3:
        # aggregate query: group keys (0-2, distinct attr names since
        # the output dict is keyed by bare attr name) + 1-2 aggregates
        for _ in range(rng.randint(0, 2)):
            alias, table = rng.choice(spec.bindings)
            key = (alias, rng.choice(TABLES[table]))
            if all(key[1] != attr for _a, attr in spec.group_keys):
                spec.group_keys.append(key)
        spec.columns = list(spec.group_keys)
        for _ in range(rng.randint(1, 2)):
            func = rng.choice(("COUNT", "SUM", "MIN", "MAX", "AVG"))
            if func == "COUNT" and rng.random() < 0.5:
                agg = (func, None, None)
            else:
                alias, table = rng.choice(spec.bindings)
                agg = (func, alias, rng.choice(INT_ATTRS[table]))
            if agg not in spec.aggregates:
                spec.aggregates.append(agg)
    else:
        # plain projection over distinct output names (the row dicts the
        # connection returns are keyed by bare attr name)
        n_cols = rng.randint(1, 4)
        seen_names: set[str] = set()
        for _ in range(n_cols * 3):
            alias, table = rng.choice(spec.bindings)
            attr = rng.choice(TABLES[table])
            if attr in seen_names:
                continue
            seen_names.add(attr)
            spec.columns.append((alias, attr))
            if len(spec.columns) == n_cols:
                break
        spec.distinct = rng.random() < 0.25
        if rng.random() < 0.35:
            # total order over the projected tuple, so LIMIT selects a
            # well-defined multiset in every engine
            spec.order = [
                (i, rng.random() < 0.5) for i in range(len(spec.columns))
            ]
            spec.limit = rng.randint(1, 15)
    return spec


# ------------------------------------------------------------ reference model
def _cmp(op: str, left, right) -> bool:
    return {
        "=": left == right, "<>": left != right,
        "<": left < right, ">": left > right,
        "<=": left <= right, ">=": left >= right,
    }[op]


def _aggregate_ref(func: str, values: list):
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return sum(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    return sum(values) / len(values)  # AVG


def ref_execute(spec: QuerySpec, data: dict[str, list[dict]]) -> list[tuple]:
    """Evaluate the query spec with naive nested loops over plain dicts."""
    combos: list[dict[str, dict]] = [{}]
    for alias, table in spec.bindings:
        combos = [
            {**c, alias: row} for c in combos for row in data[table]
        ]
    kept = [
        c for c in combos
        if all(c[a1][x] == c[a2][y] for a1, x, a2, y in spec.joins)
        and all(_cmp(op, c[a][attr], v) for a, attr, op, v in spec.filters)
    ]

    if spec.aggregates:
        groups: dict[tuple, list[dict[str, dict]]] = {}
        for c in kept:
            key = tuple(c[a][x] for a, x in spec.group_keys)
            groups.setdefault(key, []).append(c)
        # NB: like both engines, a global aggregate over an empty input
        # yields no row (the repo's dialect, asserted differentially)
        out = []
        for key, members in groups.items():
            aggs = []
            for func, alias, attr in spec.aggregates:
                values = (
                    [1] * len(members) if alias is None
                    else [c[alias][attr] for c in members]
                )
                aggs.append(_aggregate_ref(func, values))
            out.append(key + tuple(aggs))
        return out

    rows = [tuple(c[a][x] for a, x in spec.columns) for c in kept]
    if spec.distinct:
        rows = list(set(rows))
    if spec.limit is not None:
        # stable multi-key sort: apply keys in reverse significance
        for i, desc in reversed(spec.order):
            rows.sort(key=lambda r: r[i], reverse=desc)
        rows = rows[: spec.limit]
    return rows


# ------------------------------------------------------------ the harness
@pytest.fixture(scope="module")
def prop_conn() -> PhoenixConnection:
    sim = Simulation(seed=7)
    client = HBaseClient(HBaseCluster(sim, ClusterConfig()))
    catalog = create_baseline_schema(client, company_schema())
    conn = PhoenixConnection(client, catalog)
    for table, rows in company_rows().items():
        for row in rows:
            conn.writer.insert_row(table, row)
    conn.analyze()
    return conn


def _engine_rows(conn: PhoenixConnection, spec: QuerySpec) -> list[tuple]:
    return [tuple(r.values()) for r in conn.execute_query(spec.sql, spec.params)]


@pytest.mark.parametrize("seed", SEEDS)
def test_random_queries_all_engines_match_reference(prop_conn, seed):
    rng = random.Random(seed)
    data = company_rows()
    checked = 0
    try:
        for i in range(QUERIES_PER_SEED):
            spec = generate_query(rng)
            expected = sorted(ref_execute(spec, data))
            for engine, cost_based in ENGINE_MODES:
                prop_conn.configure_engine(engine=engine, cost_based=cost_based)
                got = sorted(_engine_rows(prop_conn, spec))
                assert got == expected, (
                    f"query #{i} (seed {seed}, engine={engine}, "
                    f"cost_based={cost_based}) diverged:\n{spec.sql}\n"
                    f"params={spec.params}\nexpected={expected}\ngot={got}"
                )
            checked += 1
    finally:
        prop_conn.configure_engine(engine="legacy", cost_based=False)
    assert checked == QUERIES_PER_SEED


def test_generator_covers_the_required_shapes():
    """The random stream actually exercises joins, self-joins, DISTINCT,
    aggregates and LIMIT (guards against a generator regression quietly
    weakening the differential suite)."""
    rng = random.Random(SEEDS[0])
    specs = [generate_query(rng) for _ in range(QUERIES_PER_SEED)]
    assert any(len(s.bindings) == 3 for s in specs)
    assert any(
        len({t for _a, t in s.bindings}) < len(s.bindings) for s in specs
    ), "no self-join generated"
    assert any(s.distinct for s in specs)
    assert any(s.aggregates for s in specs)
    assert any(s.limit is not None for s in specs)
    assert any(s.filters for s in specs)
