"""Streaming-scanner equivalence: the RegionScanner must produce
byte-identical results to the *reference* per-row merge (the seed
implementation of ``merge_row`` applied to one ``_sources_for`` point
lookup per key) across randomized puts, deletes, flushes and
compactions — versions, row tombstones, column tombstones, time ranges
and column projections included."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hbase.region import Region
from repro.hbase.store import RowEntry


# --------------------------------------------------------------- reference
def reference_merge_row(sources, max_versions, time_range=None):
    """Verbatim port of the seed's merge_row (pre-streaming-engine):
    the semantic oracle the rewritten engine must match."""
    row_ts = max(
        (s.row_tombstone_ts for s in sources if s.row_tombstone_ts is not None),
        default=None,
    )
    col_ts = {}
    for s in sources:
        for key, ts in s.col_tombstones.items():
            if key not in col_ts or ts > col_ts[key]:
                col_ts[key] = ts

    merged = {}
    for s in sources:
        for key, versions in s.cells.items():
            merged.setdefault(key, []).extend(versions)

    visible = {}
    for key, versions in merged.items():
        kept = []
        for ts, value in sorted(versions, key=lambda tv: -tv[0]):
            if row_ts is not None and ts <= row_ts:
                continue
            if key in col_ts and ts <= col_ts[key]:
                continue
            if time_range is not None and not (time_range[0] <= ts < time_range[1]):
                continue
            kept.append((ts, value))
            if len(kept) >= max_versions:
                break
        if kept:
            visible[key] = kept
    return visible or None


def reference_scan(region, columns=None, max_versions=1, time_range=None):
    """Per-row point-merge scan: one _sources_for + merge per key, with
    client-side column filtering (exactly the seed read path)."""
    out = []
    for row in region.iter_keys(region.start_key, region.end_key):
        visible = reference_merge_row(
            region._sources_for(row), max(max_versions, 1), time_range
        )
        if visible is None:
            continue
        if columns is not None:
            visible = {k: v for k, v in visible.items() if k in columns}
            if not visible:
                continue
        out.append((row, visible))
    return out


def streaming_scan(region, columns=None, max_versions=1, time_range=None):
    wanted = frozenset(columns) if columns else None
    out = []
    for row, result in region.scan(
        columns=wanted, max_versions=max_versions, time_range=time_range
    ):
        if result is not None:
            out.append((row, result._cells))
    return out


# --------------------------------------------------------------- op machine
CF = b"cf"
FAMILIES = [b"cf", b"fx"]
QUALIFIERS = [b"a", b"b", b"c"]
ROWS = [b"r%d" % i for i in range(8)]

ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.sampled_from(ROWS),
            st.sampled_from(FAMILIES),
            st.sampled_from(QUALIFIERS),
            st.binary(min_size=0, max_size=3),
        ),
        st.tuples(st.just("delete_row"), st.sampled_from(ROWS)),
        st.tuples(
            st.just("delete_col"),
            st.sampled_from(ROWS),
            st.sampled_from(FAMILIES),
            st.sampled_from(QUALIFIERS),
        ),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
    ),
    min_size=1,
    max_size=60,
)


def apply_ops(region, ops):
    ts = 0
    for op in ops:
        ts += 1
        kind = op[0]
        if kind == "put":
            _, row, family, qualifier, value = op
            region.put_row(row, [(family, qualifier, value, None)], ts)
        elif kind == "delete_row":
            region.delete_row(op[1], None, ts)
        elif kind == "delete_col":
            _, row, family, qualifier = op
            region.delete_row(row, [(family, qualifier)], ts)
        elif kind == "flush":
            region.flush()
        else:
            region.major_compact()
    return ts


PROJECTIONS = [
    None,
    [(b"cf", b"a")],
    [(b"cf", b"a"), (b"fx", b"b"), (b"cf", b"c")],
]


class TestScannerMatchesReference:
    @given(ops=ops_strategy, max_versions=st.integers(1, 4))
    @settings(max_examples=120, deadline=None)
    def test_full_scan_equivalence(self, ops, max_versions):
        region = Region("t", b"", None, max_versions=4)
        apply_ops(region, ops)
        for columns in PROJECTIONS:
            assert streaming_scan(region, columns, max_versions) == \
                reference_scan(region, columns, max_versions)

    @given(
        ops=ops_strategy,
        lo=st.integers(0, 40),
        span=st.integers(0, 40),
    )
    @settings(max_examples=80, deadline=None)
    def test_time_range_equivalence(self, ops, lo, span):
        region = Region("t", b"", None, max_versions=4)
        apply_ops(region, ops)
        time_range = (lo, lo + span)
        assert streaming_scan(region, None, 3, time_range) == \
            reference_scan(region, None, 3, time_range)

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_compaction_preserves_visible_state(self, ops):
        region = Region("t", b"", None, max_versions=3)
        apply_ops(region, ops)
        before = streaming_scan(region, None, region.max_versions)
        region.major_compact()
        after = streaming_scan(region, None, region.max_versions)
        assert before == after
        assert after == reference_scan(region, None, region.max_versions)
        assert len(region.hfiles) <= 1
        assert len(region.memstore) == 0

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_point_reads_match_scan(self, ops):
        """read_row (point path with column pushdown) agrees with the
        streaming scan row by row."""
        region = Region("t", b"", None, max_versions=4)
        apply_ops(region, ops)
        for columns in PROJECTIONS:
            scanned = dict(streaming_scan(region, columns, 2))
            for row in ROWS:
                result = region.read_row(row, columns, max_versions=2)
                if result is None:
                    assert row not in scanned
                else:
                    assert scanned[row] == result._cells

    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_row_count_matches_reference(self, ops):
        region = Region("t", b"", None, max_versions=2)
        apply_ops(region, ops)
        assert region.row_count() == len(reference_scan(region, None, 1))


class TestScannerEdgeCases:
    def test_scan_respects_region_bounds(self):
        region = Region("t", b"b", b"d")
        region.put_row(b"b", [(CF, b"q", b"1", None)], 1)
        region.put_row(b"c", [(CF, b"q", b"2", None)], 2)
        rows = [r for r, res in region.scan() if res is not None]
        assert rows == [b"b", b"c"]
        # narrower window than the region
        rows = [r for r, res in region.scan(b"c", None) if res is not None]
        assert rows == [b"c"]

    def test_deleted_rows_are_yielded_as_none(self):
        """Examined-but-invisible rows surface as (key, None) so the
        server still charges the read, as the seed engine did."""
        region = Region("t", b"", None)
        region.put_row(b"a", [(CF, b"q", b"1", None)], 1)
        region.put_row(b"b", [(CF, b"q", b"2", None)], 2)
        region.delete_row(b"a", None, 3)
        pairs = list(region.scan())
        assert [row for row, _ in pairs] == [b"a", b"b"]
        assert pairs[0][1] is None
        assert pairs[1][1] is not None

    def test_flush_between_scan_creation_and_iteration(self):
        """A flush after the cursor is created but before it is consumed
        must not hide the flushed rows (components resolve lazily)."""
        region = Region("t", b"", None)
        region.put_row(b"a", [(CF, b"q", b"1", None)], 1)
        cursor = region.scan()
        region.flush()
        region.put_row(b"b", [(CF, b"q", b"2", None)], 2)
        rows = [row for row, result in cursor if result is not None]
        assert rows == [b"a", b"b"]

    def test_put_reused_after_batch_does_not_corrupt_wal_replay(self):
        """put_batch must deep-copy cells into the WAL: growing a Put
        afterwards must not leak into crash recovery."""
        from repro.hbase import HBaseClient, HBaseCluster, Get, Put
        from repro.sim.clock import Simulation

        client = HBaseClient(HBaseCluster(Simulation(seed=3)))
        t = client.create_table("w")
        p = Put(b"r")
        p.add(CF, b"a", b"1")
        t.put_batch([p])
        p.add(CF, b"b", b"2")  # mutation after submission
        cluster = client.cluster
        region = cluster.descriptor("w").regions[0]
        server = cluster.server_for(region)
        server.crash()
        cluster.recover_server(server)
        result = t.get(Get(b"r"))
        assert result.value(CF, b"a") == b"1"
        assert result.value(CF, b"b") is None  # no phantom replayed cell

    def test_scan_merges_across_flush_generations(self):
        region = Region("t", b"", None, max_versions=2)
        region.put_row(b"k", [(CF, b"q", b"old", None)], 1)
        region.flush()
        region.put_row(b"k", [(CF, b"q", b"new", None)], 2)
        [(row, result)] = list(region.scan(max_versions=2))
        assert result.versions(CF, b"q") == [(2, b"new"), (1, b"old")]

    def test_lazy_sort_preserves_newest_first(self):
        entry = RowEntry()
        for ts in (3, 1, 5, 2, 4):
            entry.put_cell(CF, b"q", ts, b"%d" % ts)
        assert [ts for ts, _ in entry.cells[(CF, b"q")]] == [5, 4, 3, 2, 1]

    def test_open_cursor_raises_when_region_goes_offline(self):
        """A crash while a scan cursor is open must raise, not keep
        yielding phantom rows from the snapshot (matches the seed's
        per-row read path)."""
        from repro.errors import RegionUnavailableError

        region = Region("t", b"", None)
        for i in range(4):
            region.put_row(b"r%d" % i, [(CF, b"q", b"v", None)], i + 1)
        cursor = iter(region.scan())
        next(cursor)
        region.online = False
        with pytest.raises(RegionUnavailableError):
            next(cursor)

    def test_column_tombstone_copy_on_write(self):
        """Entries share a class-level empty tombstone map until their
        first column delete; a delete must not leak into siblings."""
        a, b = RowEntry(), RowEntry()
        a.delete_column(CF, b"q", 7)
        assert a.col_tombstones == {(CF, b"q"): 7}
        assert b.col_tombstones == {}
        assert a.col_tombstones is not b.col_tombstones
