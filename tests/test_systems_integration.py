"""Cross-system integration: all five evaluated systems answer the TPC-W
queries identically (modulo X-ed VoltDB queries), writes take effect
everywhere, and the cost orderings the paper reports hold."""

import pytest

from repro.bench.tpcw_lab import TpcwLab
from repro.systems import (
    BaselineSystem,
    MvccASystem,
    MvccUASystem,
    SynergyEvaluatedSystem,
    VoltDBEvaluatedSystem,
)
from repro.tpcw import TPCW_ROOTS, TpcwDataGenerator, tpcw_schema, tpcw_workload
from repro.tpcw.queries import JOIN_QUERIES, VOLTDB_UNSUPPORTED
from repro.tpcw.writes import WRITE_STATEMENTS

SCALE = 30
SEED = 11


@pytest.fixture(scope="module")
def lab():
    return TpcwLab(num_customers=SCALE, repetitions=2, seed=SEED)


@pytest.fixture(scope="module")
def systems(lab):
    out = {}
    for name in ("Synergy", "MVCC-A", "MVCC-UA", "Baseline", "VoltDB"):
        system = lab.build_system(name)
        lab.populate(system)
        out[name] = system
    return out


def canonical(rows, keys):
    return sorted(
        tuple(r.get(k) for k in keys) for r in rows
    )


QUERY_KEYS = {
    "Q1": ("ol_o_id", "ol_id", "i_id"),
    "Q2": ("o_id", "c_id"),
    "Q3": ("c_id", "addr_id", "co_id"),
    "Q4": ("i_id", "a_id"),
    "Q5": ("i_id", "a_id"),
    "Q6": ("i_id", "a_id"),
    "Q7": ("o_id", "c_id"),
    "Q8": ("scl_sc_id", "scl_i_id", "i_id"),
    "Q9": ("i_id",),
    "Q10": ("i_id", "SUM(ol.ol_qty)"),
    "Q11": ("ol_i_id",),
}


class TestResultConsistency:
    @pytest.mark.parametrize("qid", list(JOIN_QUERIES))
    def test_all_systems_agree(self, systems, lab, qid):
        params = lab.generator.params_for_query(qid, 0)
        reference = None
        for name, system in systems.items():
            if not system.supports(qid):
                assert name == "VoltDB" and qid in VOLTDB_UNSUPPORTED
                continue
            rows = system.execute(system.statement(qid), params)
            keys = QUERY_KEYS[qid]
            if qid == "Q10" and name != "Baseline":
                # aggregate column naming differs after view rewriting
                keys = ("i_id",)
            got = canonical(rows, keys[:1]) if qid == "Q10" else canonical(rows, keys)
            if reference is None:
                reference = (got, name)
            else:
                assert got == reference[0], (
                    f"{name} disagrees with {reference[1]} on {qid}"
                )

    def test_write_visible_after_insert_everywhere(self, systems):
        for name, system in systems.items():
            system.execute(
                WRITE_STATEMENTS["W6"], (5000, 1.0)
            )
            rows = system.execute(
                "SELECT * FROM Shopping_cart WHERE sc_id = ?", (5000,)
            )
            assert len(rows) == 1, name


class TestCostOrderings:
    """The qualitative results the paper's figures rest on."""

    def test_synergy_writes_cheapest_among_hbase_systems(self, systems, lab):
        params = lab.generator.params_for_write("W1", 500)
        _, synergy = systems["Synergy"].timed_id("W1", params)
        params = lab.generator.params_for_write("W1", 501)
        _, baseline = systems["Baseline"].timed_id("W1", params)
        assert synergy * 3 < baseline

    def test_mvcc_overhead_dominates_write_cost(self, systems, lab):
        params = lab.generator.params_for_write("W6", 600)
        _, ms = systems["Baseline"].timed_id("W6", params)
        cost = systems["Baseline"].sim.cost
        assert ms > (cost.mvcc_begin_ms + cost.mvcc_commit_ms) * 0.8

    def test_view_backed_query_beats_baseline_join(self, systems, lab):
        params = lab.generator.params_for_query("Q4", 1)
        _, synergy = systems["Synergy"].timed_id("Q4", params)
        _, baseline = systems["Baseline"].timed_id("Q4", params)
        assert synergy < baseline

    def test_cheap_writes_for_viewless_relations(self, systems, lab):
        """W6/W11 (Shopping_cart) are Synergy's cheapest writes (Fig. 14)."""
        synergy = systems["Synergy"]
        _, w6 = synergy.timed_id("W6", lab.generator.params_for_write("W6", 700))
        _, w13 = synergy.timed_id("W13", lab.generator.params_for_write("W13", 700))
        assert w6 < w13

    def test_voltdb_fastest_on_writes(self, systems, lab):
        _, volt = systems["VoltDB"].timed_id(
            "W6", lab.generator.params_for_write("W6", 800)
        )
        _, synergy = systems["Synergy"].timed_id(
            "W6", lab.generator.params_for_write("W6", 801)
        )
        assert volt < synergy

    def test_db_size_ordering_matches_table3(self, systems):
        sizes = {name: s.db_size_bytes() for name, s in systems.items()}
        assert sizes["VoltDB"] < sizes["Baseline"]
        assert sizes["Baseline"] < sizes["MVCC-UA"]
        assert sizes["MVCC-UA"] < sizes["Synergy"]
        assert abs(sizes["Synergy"] - sizes["MVCC-A"]) / sizes["Synergy"] < 0.05


class TestAdvisorOutcome:
    def test_mvcc_ua_has_single_q10_view(self, systems):
        ua = systems["MVCC-UA"]
        assert len(ua.recommendations) == 1
        cand = ua.recommendations[0]
        assert cand.view.relations == ("Author", "Item", "Order_line")
        assert cand.source_queries == ("Q10",)
        assert "ADV_" in ua.statement("Q10")
        assert "ADV_" not in ua.statement("Q4")

    def test_advisor_view_projection_is_narrow(self, systems):
        ua = systems["MVCC-UA"]
        entry = ua.catalog.view(ua.recommendations[0].view.name)
        assert "i_desc" not in entry.attrs  # wide column not projected
        assert "ol_qty" in entry.attrs
