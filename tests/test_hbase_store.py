"""LSM internals: memstore, HFiles, tombstone merge semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hbase.store import HFile, MemStore, RowEntry, merge_row


class TestRowEntry:
    def test_versions_sorted_newest_first(self):
        e = RowEntry()
        e.put_cell(b"cf", b"q", 1, b"old")
        e.put_cell(b"cf", b"q", 3, b"new")
        e.put_cell(b"cf", b"q", 2, b"mid")
        assert e.cells[(b"cf", b"q")][0] == (3, b"new")

    def test_row_tombstone_keeps_max(self):
        e = RowEntry()
        e.delete_row(5)
        e.delete_row(3)
        assert e.row_tombstone_ts == 5

    def test_size_accounting(self):
        e = RowEntry()
        e.put_cell(b"cf", b"q", 1, b"value")
        assert e.size_bytes(b"rowkey", kv_overhead=24) == 6 + 2 + 1 + 5 + 24


class TestMemStore:
    def test_keys_sorted(self):
        m = MemStore()
        for k in (b"c", b"a", b"b"):
            m.entry(k, create=True)
        assert list(m.keys_in_range(b"", None)) == [b"a", b"b", b"c"]

    def test_range_bounds(self):
        m = MemStore()
        for k in (b"a", b"b", b"c", b"d"):
            m.entry(k, create=True)
        assert list(m.keys_in_range(b"b", b"d")) == [b"b", b"c"]

    def test_missing_entry_not_created_by_default(self):
        m = MemStore()
        assert m.entry(b"x") is None
        assert len(m) == 0


class TestMergeRow:
    def _entry(self, ts_values, tombstone=None):
        e = RowEntry()
        for ts, v in ts_values:
            e.put_cell(b"cf", b"q", ts, v)
        if tombstone is not None:
            e.delete_row(tombstone)
        return e

    def test_newest_version_wins(self):
        merged = merge_row([self._entry([(1, b"a"), (2, b"b")])], max_versions=1)
        assert merged[(b"cf", b"q")] == [(2, b"b")]

    def test_max_versions_respected(self):
        merged = merge_row(
            [self._entry([(1, b"a"), (2, b"b"), (3, b"c")])], max_versions=2
        )
        assert merged[(b"cf", b"q")] == [(3, b"c"), (2, b"b")]

    def test_row_tombstone_hides_older_cells(self):
        merged = merge_row(
            [self._entry([(1, b"a"), (5, b"b")], tombstone=3)], max_versions=5
        )
        assert merged[(b"cf", b"q")] == [(5, b"b")]

    def test_fully_deleted_row_is_none(self):
        merged = merge_row([self._entry([(1, b"a")], tombstone=9)], max_versions=1)
        assert merged is None

    def test_column_tombstone(self):
        e = self._entry([(1, b"a")])
        e.put_cell(b"cf", b"other", 1, b"x")
        e.delete_column(b"cf", b"q", 2)
        merged = merge_row([e], max_versions=1)
        assert (b"cf", b"q") not in merged
        assert (b"cf", b"other") in merged

    def test_tombstone_across_components(self):
        # delete in a newer component hides a cell in an older HFile
        newer = RowEntry()
        newer.delete_row(10)
        older = self._entry([(5, b"v")])
        assert merge_row([newer, older], max_versions=1) is None

    def test_time_range_filtering(self):
        merged = merge_row(
            [self._entry([(1, b"a"), (5, b"b"), (9, b"c")])],
            max_versions=3,
            time_range=(2, 9),
        )
        assert merged[(b"cf", b"q")] == [(5, b"b")]

    @given(st.lists(st.tuples(st.integers(1, 100), st.binary(max_size=4)),
                    min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_newest_visible_version_is_global_max(self, versions):
        e = RowEntry()
        seen = {}
        for ts, v in versions:
            e.put_cell(b"cf", b"q", ts, v)
            seen[ts] = v  # same-ts later put appends; max keeps first sorted
        merged = merge_row([e], max_versions=1)
        top_ts = merged[(b"cf", b"q")][0][0]
        assert top_ts == max(ts for ts, _ in versions)


class TestHFile:
    def test_immutable_lookup(self):
        e = RowEntry()
        e.put_cell(b"cf", b"q", 1, b"v")
        h = HFile({b"k": e})
        assert h.entry(b"k") is e
        assert h.entry(b"missing") is None
        assert list(h.keys_in_range(b"", None)) == [b"k"]

    def test_unique_file_ids(self):
        a, b = HFile({}), HFile({})
        assert a.file_id != b.file_id
