"""Tephra-style MVCC: snapshots, conflicts, abort semantics, charges."""

import pytest

from repro.errors import TransactionAbortedError, TransactionConflictError
from repro.mvcc.tephra import TephraServer, TransactionAwareExecutor
from repro.sim.clock import Simulation


@pytest.fixture
def server():
    return TephraServer(Simulation())


class TestTransactions:
    def test_begin_charges_write_tx(self, server):
        before = server.sim.clock.now_ms
        server.begin(read_only=False)
        assert server.sim.clock.now_ms - before >= server.sim.cost.mvcc_begin_ms * 0.5

    def test_read_snapshot_is_cheap(self, server):
        before = server.sim.clock.now_ms
        server.begin(read_only=True)
        cost = server.sim.clock.now_ms - before
        assert cost < server.sim.cost.mvcc_begin_ms / 10

    def test_commit_without_writes_skips_conflict_check(self, server):
        tx = server.begin()
        before = server.sim.clock.now_ms
        server.commit(tx)
        assert server.sim.clock.now_ms == before  # no commit round trip

    def test_write_commit_charges(self, server):
        tx = server.begin()
        tx.record_write("t", b"k")
        before = server.sim.clock.now_ms
        server.commit(tx)
        assert server.sim.clock.now_ms > before

    def test_conflict_detection(self, server):
        a = server.begin()
        b = server.begin()
        a.record_write("t", b"k")
        b.record_write("t", b"k")
        server.commit(a)
        with pytest.raises(TransactionConflictError):
            server.commit(b)
        assert b.state == "aborted"

    def test_disjoint_writes_both_commit(self, server):
        a = server.begin()
        b = server.begin()
        a.record_write("t", b"k1")
        b.record_write("t", b"k2")
        server.commit(a)
        server.commit(b)
        assert server.commit_count == 2

    def test_serial_writes_to_same_key_commit(self, server):
        a = server.begin()
        a.record_write("t", b"k")
        server.commit(a)
        b = server.begin()  # starts after a committed
        b.record_write("t", b"k")
        server.commit(b)

    def test_commit_after_abort_rejected(self, server):
        tx = server.begin()
        server.abort(tx)
        with pytest.raises(TransactionAbortedError):
            server.commit(tx)

    def test_aborted_writer_joins_invalid_set(self, server):
        tx = server.begin()
        tx.record_write("t", b"k")
        server.abort(tx)
        assert tx.tx_id in server.invalid

    def test_snapshot_visibility(self, server):
        a = server.begin()
        b = server.begin()
        # b cannot see a (in progress at b's snapshot)
        assert not b.visible(a.tx_id)
        server.commit(a)
        c = server.begin()
        assert c.visible(a.tx_id)

    def test_executor_wrappers(self, server):
        ex = TransactionAwareExecutor(server)
        assert ex.run_read(lambda: 42) == 42

        def write(tx):
            tx.record_write("t", b"x")
            return "done"

        assert ex.run_write(write) == "done"
        assert server.commit_count == 2

    def test_executor_aborts_on_exception(self, server):
        ex = TransactionAwareExecutor(server)
        with pytest.raises(RuntimeError):
            ex.run_read(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        assert server.abort_count == 1
